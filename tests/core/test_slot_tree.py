"""Unit tests for the 2-dimensional slot tree (Section 4.1)."""

import math
import random

import pytest

from repro.core.opcount import OpCounter
from repro.core.slot_tree import ALPHA, TwoDimTree
from repro.core.types import INF, IdlePeriod

from ..conftest import make_periods


def _subtree_periods(tree, node):
    """Every idle period stored at the leaves below kernel node id ``node``."""
    kernel = tree._kernel
    if kernel.left[node] == -1:  # leaf
        return [tree._by_uid[kernel.keys[node][1]]]
    return _subtree_periods(tree, kernel.left[node]) + _subtree_periods(
        tree, kernel.right[node]
    )


def naive_candidates(periods, sr):
    return [p for p in periods if p.st <= sr]


def naive_feasible(periods, sr, er):
    return [p for p in periods if p.st <= sr and p.et >= er]


class TestBasics:
    def test_empty_tree(self):
        tree = TwoDimTree()
        assert len(tree) == 0
        assert list(tree.periods()) == []
        tree.validate()

    def test_single_insert(self):
        tree = TwoDimTree()
        p = IdlePeriod(server=0, st=1.0, et=10.0)
        tree.insert(p)
        assert len(tree) == 1
        assert p in tree
        tree.validate()

    def test_insert_many_keeps_start_order(self):
        tree = TwoDimTree()
        periods = make_periods(50, seed=3)
        for p in periods:
            tree.insert(p)
        stored = list(tree.periods())
        assert [(p.st, p.uid) for p in stored] == sorted((p.st, p.uid) for p in periods)
        tree.validate()

    def test_remove_to_empty(self):
        tree = TwoDimTree()
        periods = make_periods(10, seed=1)
        for p in periods:
            tree.insert(p)
        for p in periods:
            tree.remove(p)
            tree.validate()
        assert len(tree) == 0

    def test_remove_missing_raises(self):
        tree = TwoDimTree()
        p, q = make_periods(2, seed=2)
        tree.insert(p)
        with pytest.raises(KeyError):
            tree.remove(q)

    def test_contains_distinguishes_equal_intervals(self):
        tree = TwoDimTree()
        a = IdlePeriod(server=0, st=1.0, et=5.0)
        b = IdlePeriod(server=1, st=1.0, et=5.0)
        tree.insert(a)
        assert a in tree
        assert b not in tree

    def test_duplicate_start_times(self):
        tree = TwoDimTree()
        periods = [IdlePeriod(server=i, st=5.0, et=10.0 + i) for i in range(20)]
        for p in periods:
            tree.insert(p)
        tree.validate()
        assert len(tree) == 20
        for p in periods:
            tree.remove(p)
        assert len(tree) == 0

    def test_infinite_end_times(self):
        tree = TwoDimTree()
        periods = [IdlePeriod(server=i, st=float(i), et=INF) for i in range(8)]
        for p in periods:
            tree.insert(p)
        tree.validate()
        found = tree.find_feasible(7.0, 1e15, 8)
        assert found is not None and len(found) == 8


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        periods = make_periods(37, seed=5)
        a, b = TwoDimTree(), TwoDimTree()
        a.bulk_load(periods)
        for p in periods:
            b.insert(p)
        a.validate()
        assert [p.uid for p in a.periods()] == [p.uid for p in b.periods()]

    def test_bulk_load_empty(self):
        tree = TwoDimTree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_replaces_contents(self):
        tree = TwoDimTree()
        tree.insert(IdlePeriod(server=0, st=0.0, et=1.0))
        fresh = make_periods(5, seed=6)
        tree.bulk_load(fresh)
        assert len(tree) == 5
        assert {p.uid for p in tree.periods()} == {p.uid for p in fresh}


class TestPhase1:
    def test_candidate_count_matches_naive(self):
        periods = make_periods(60, seed=7)
        tree = TwoDimTree()
        tree.bulk_load(periods)
        for sr in [0.0, 25.0, 50.0, 75.0, 100.0, 150.0]:
            count, _ = tree.phase1(sr)
            assert count == len(naive_candidates(periods, sr))

    def test_candidates_cover_exact_prefix(self):
        periods = make_periods(40, seed=8)
        tree = TwoDimTree()
        tree.bulk_load(periods)
        sr = 50.0
        _, marks = tree.phase1(sr)
        marked = [p for node in marks for p in _subtree_periods(tree, node)]
        assert sorted(p.uid for p in marked) == sorted(
            p.uid for p in naive_candidates(periods, sr)
        )

    def test_marks_bounded_by_log(self):
        periods = make_periods(256, seed=9)
        tree = TwoDimTree()
        tree.bulk_load(periods)
        _, marks = tree.phase1(50.0)
        # canonical decomposition of a prefix: at most ceil(log2 n) + 1 subtrees
        assert len(marks) <= math.ceil(math.log2(256)) + 1

    def test_boundary_start_time_inclusive(self):
        # candidate rule is st <= sr (inclusive)
        p = IdlePeriod(server=0, st=10.0, et=20.0)
        tree = TwoDimTree()
        tree.insert(p)
        assert tree.count_candidates(10.0) == 1
        assert tree.count_candidates(9.999) == 0

    def test_empty_tree_phase1(self):
        tree = TwoDimTree()
        count, marks = tree.phase1(10.0)
        assert count == 0 and marks == []


class TestPhase2:
    def test_finds_exactly_feasible(self):
        periods = make_periods(60, seed=10)
        tree = TwoDimTree()
        tree.bulk_load(periods)
        sr, er = 50.0, 150.0
        found = tree.find_feasible(sr, er, 1)
        naive = naive_feasible(periods, sr, er)
        if naive:
            assert found is not None
            assert all(p.is_feasible(sr, er) for p in found)
        else:
            assert found is None

    def test_returns_requested_count(self):
        periods = [IdlePeriod(server=i, st=0.0, et=100.0) for i in range(16)]
        tree = TwoDimTree()
        tree.bulk_load(periods)
        found = tree.find_feasible(10.0, 50.0, 5)
        assert found is not None and len(found) == 5
        assert len({p.uid for p in found}) == 5  # distinct periods

    def test_insufficient_feasible_returns_none(self):
        periods = [IdlePeriod(server=i, st=0.0, et=40.0) for i in range(3)]
        periods.append(IdlePeriod(server=3, st=0.0, et=100.0))
        tree = TwoDimTree()
        tree.bulk_load(periods)
        # only one period survives the et >= 50 test
        assert tree.find_feasible(10.0, 50.0, 2) is None
        found = tree.find_feasible(10.0, 50.0, 1)
        assert found is not None and found[0].et == 100.0

    def test_partial_mode_returns_shortfall(self):
        periods = [IdlePeriod(server=i, st=0.0, et=40.0 + 20.0 * i) for i in range(3)]
        tree = TwoDimTree()
        tree.bulk_load(periods)
        count, marks = tree.phase1(10.0)
        assert count == 3
        got = tree.phase2(marks, 50.0, 5, partial=True)
        assert got is not None
        assert sorted(p.et for p in got) == [60.0, 80.0]

    def test_boundary_end_time_inclusive(self):
        # feasibility rule is et >= er (inclusive)
        p = IdlePeriod(server=0, st=0.0, et=50.0)
        tree = TwoDimTree()
        tree.insert(p)
        assert tree.find_feasible(0.0, 50.0, 1) is not None
        assert tree.find_feasible(0.0, 50.001, 1) is None

    def test_prefers_globally_earliest_ending(self):
        # canonical selection: among every feasible candidate the
        # earliest-ending periods win (best fit — long periods stay free
        # for long requests), regardless of how phase 1 happened to
        # partition the candidates into marked subtrees
        periods = [IdlePeriod(server=i, st=0.0, et=60.0 + i * 10.0) for i in range(8)]
        tree = TwoDimTree()
        tree.bulk_load(periods)
        found = tree.find_feasible(0.0, 55.0, 3)
        assert found is not None
        assert [p.et for p in found] == [60.0, 70.0, 80.0]

    def test_equal_endings_tie_break_on_uid(self):
        # ... and ties on ending time fall back to uid (creation order),
        # the persisted tie-break that makes a snapshot-restored calendar
        # choose byte-identical servers
        early = IdlePeriod(server=0, st=0.0, et=100.0)
        late = IdlePeriod(server=1, st=40.0, et=100.0)
        tree = TwoDimTree()
        tree.insert(early)
        tree.insert(late)
        found = tree.find_feasible(50.0, 90.0, 1)
        assert found is not None and found[0].uid == early.uid

    def test_selection_is_independent_of_tree_shape(self):
        # the load-bearing property behind the service's kill/restart
        # checksum identity: a tree grown by interleaved inserts/removes
        # and a bulk-loaded tree over the same periods choose the same
        # servers, even though their internal partitions differ
        periods = [
            IdlePeriod(server=i, st=float(i % 5), et=50.0 + 7.0 * ((i * 3) % 11))
            for i in range(40)
        ]
        evolved = TwoDimTree()
        for p in periods:
            evolved.insert(p)
        for p in periods[::3]:
            evolved.remove(p)
        survivors = [p for i, p in enumerate(periods) if i % 3 != 0]
        rebuilt = TwoDimTree()
        rebuilt.bulk_load(sorted(survivors, key=lambda p: (p.st, p.uid)))
        for sr, er, nr in [(4.0, 60.0, 3), (2.0, 90.0, 5), (4.0, 110.0, 2)]:
            a = evolved.find_feasible(sr, er, nr)
            b = rebuilt.find_feasible(sr, er, nr)
            assert a is not None and b is not None
            assert [p.uid for p in a] == [p.uid for p in b]


class TestRangeSearch:
    def test_range_search_returns_all_covering(self):
        periods = make_periods(50, seed=11)
        tree = TwoDimTree()
        tree.bulk_load(periods)
        ta, tb = 60.0, 140.0
        found = tree.range_search(ta, tb)
        assert sorted(p.uid for p in found) == sorted(
            p.uid for p in naive_feasible(periods, ta, tb)
        )

    def test_range_search_empty_result(self):
        tree = TwoDimTree()
        tree.insert(IdlePeriod(server=0, st=10.0, et=20.0))
        assert tree.range_search(0.0, 5.0) == []


class TestBalanceAndCounting:
    def test_sorted_insertion_stays_balanced(self):
        # monotone keys are the scapegoat worst case; validate() checks ALPHA
        tree = TwoDimTree()
        for i in range(200):
            tree.insert(IdlePeriod(server=0, st=float(i), et=1000.0 + i))
        tree.validate()

    def test_reverse_sorted_insertion_stays_balanced(self):
        tree = TwoDimTree()
        for i in reversed(range(200)):
            tree.insert(IdlePeriod(server=0, st=float(i), et=1000.0 + i))
        tree.validate()

    def test_alpha_is_sane(self):
        assert 0.5 < ALPHA < 1.0

    def test_counter_records_operations(self):
        counter = OpCounter()
        tree = TwoDimTree(counter)
        for p in make_periods(20, seed=12):
            tree.insert(p)
        tree.find_feasible(50.0, 150.0, 2)
        assert counter.get("insert") == 20
        assert counter.get("node_visit") > 0

    def test_churn_preserves_invariants(self):
        rng = random.Random(99)
        tree = TwoDimTree()
        live = []
        for step in range(500):
            if live and rng.random() < 0.45:
                tree.remove(live.pop(rng.randrange(len(live))))
            else:
                p = IdlePeriod(
                    server=rng.randrange(16),
                    st=rng.uniform(0, 100),
                    et=rng.uniform(100, 200),
                )
                tree.insert(p)
                live.append(p)
            if step % 50 == 0:
                tree.validate()
        tree.validate()
        assert len(tree) == len(live)
