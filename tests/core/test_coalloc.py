"""Unit tests for the online co-allocation algorithm (Section 4.2)."""

import pytest

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.opcount import OpCounter
from repro.core.types import RangeQuery, Request


def make_allocator(n=4, tau=10.0, q=12, delta_t=10.0, r_max=6, start=0.0):
    counter = OpCounter()
    cal = AvailabilityCalendar(n, tau, q, start_time=start, counter=counter)
    return OnlineCoAllocator(cal, delta_t=delta_t, r_max=r_max, counter=counter), cal


class TestScheduleImmediate:
    def test_succeeds_first_attempt_when_free(self):
        alloc, _ = make_allocator()
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=30.0, nr=3, rid=1))
        assert a is not None
        assert a.start == 0.0 and a.end == 30.0
        assert a.attempts == 1 and a.delay == 0.0
        assert a.nr == 3 and len(set(a.servers)) == 3

    def test_reservations_match_window(self):
        alloc, _ = make_allocator()
        a = alloc.schedule(Request(qr=5.0, sr=5.0, lr=20.0, nr=2, rid=2))
        for res in a.reservations:
            assert res.start == 5.0 and res.end == 25.0 and res.rid == 2

    def test_oversized_request_fails_every_attempt(self):
        alloc, _ = make_allocator(n=4, r_max=3)
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=5, rid=3))
        assert a is None

    def test_commitments_are_respected(self):
        alloc, cal = make_allocator(n=2)
        first = alloc.schedule(Request(qr=0.0, sr=0.0, lr=40.0, nr=2, rid=1))
        assert first is not None
        second = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert second is not None
        assert second.start >= 40.0  # had to wait for the first job
        cal.validate()


class TestRetryLoop:
    def test_delay_is_multiple_of_delta_t(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=25.0, nr=1, rid=1))
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert a is not None
        assert a.start == 30.0  # first multiple of 10 at/after 25
        assert a.attempts == 4
        assert a.delay == 30.0

    def test_r_max_bounds_attempts(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0, r_max=2)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=45.0, nr=1, rid=1))
        # would need to wait until t=50: attempts at 0 and 10 both fail
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert a is None

    def test_bounded_delay_guarantee(self):
        # R_max * delta_t is an upper bound on scheduler-added delay
        alloc, _ = make_allocator(n=2, tau=10.0, q=12, delta_t=10.0, r_max=6)
        for rid in range(8):
            a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=15.0, nr=1, rid=rid))
            if a is not None:
                assert a.delay <= 6 * 10.0

    def test_attempts_counted_in_ops(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0)
        counter = alloc.counter
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=25.0, nr=1, rid=1))
        before = counter.get("attempt")
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert counter.get("attempt") - before == 4


class TestAdvanceReservations:
    def test_future_start_honoured(self):
        alloc, _ = make_allocator()
        a = alloc.schedule(Request(qr=0.0, sr=50.0, lr=20.0, nr=2, rid=1))
        assert a is not None
        assert a.start == 50.0
        assert a.delay == 0.0

    def test_two_reservations_same_window_different_servers(self):
        alloc, cal = make_allocator(n=4)
        a = alloc.schedule(Request(qr=0.0, sr=50.0, lr=20.0, nr=2, rid=1))
        b = alloc.schedule(Request(qr=0.0, sr=50.0, lr=20.0, nr=2, rid=2))
        assert a is not None and b is not None
        assert set(a.servers).isdisjoint(set(b.servers))
        cal.validate()

    def test_past_start_scheduled_from_now(self):
        alloc, cal = make_allocator(start=100.0)
        cal.advance(130.0)
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=1))
        assert a is not None
        assert a.start == 130.0

    def test_beyond_horizon_fails(self):
        alloc, _ = make_allocator(tau=10.0, q=12)  # horizon [0, 120)
        a = alloc.schedule(Request(qr=0.0, sr=130.0, lr=10.0, nr=1, rid=1))
        assert a is None


class TestDeadlines:
    def test_deadline_met_when_feasible(self):
        alloc, _ = make_allocator()
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=20.0, nr=1, rid=1, deadline=40.0))
        assert a is not None and a.end <= 40.0

    def test_deadline_stops_retries(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0, r_max=6)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=35.0, nr=1, rid=1))
        # earliest feasible start is 40, but deadline forces start <= 20
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2, deadline=30.0))
        assert a is None

    def test_deadline_allows_exact_fit(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0, r_max=6)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=20.0, nr=1, rid=1))
        a = alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2, deadline=30.0))
        assert a is not None and a.start == 20.0


class TestScheduleOutcome:
    """``schedule_detailed`` reports the *actual* attempt count on failure."""

    def test_success_reports_attempts_and_no_reason(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=25.0, nr=1, rid=1))
        outcome = alloc.schedule_detailed(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert outcome.allocation is not None
        assert outcome.reason is None
        assert outcome.attempts == 4 == outcome.allocation.attempts

    def test_deadline_exit_counts_only_real_attempts(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0, r_max=6)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=35.0, nr=1, rid=1))
        # latest admissible start is 20: starts 0, 10, 20 are attempted
        # (server busy until 35), the fourth candidate (30) misses the
        # deadline — 3 attempts, not R_max = 6
        outcome = alloc.schedule_detailed(
            Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2, deadline=30.0)
        )
        assert outcome.allocation is None
        assert outcome.reason == "deadline"
        assert outcome.attempts == 3

    def test_horizon_exit_before_first_attempt(self):
        alloc, _ = make_allocator(tau=10.0, q=12)  # horizon [0, 120)
        outcome = alloc.schedule_detailed(Request(qr=0.0, sr=130.0, lr=10.0, nr=1, rid=1))
        assert outcome.allocation is None
        assert outcome.reason == "horizon"
        assert outcome.attempts == 0

    def test_exhausted_reports_r_max(self):
        alloc, _ = make_allocator(n=1, delta_t=10.0, r_max=2)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=45.0, nr=1, rid=1))
        outcome = alloc.schedule_detailed(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert outcome.allocation is None
        assert outcome.reason == "exhausted"
        assert outcome.attempts == 2

    def test_schedule_matches_detailed_allocation(self):
        alloc, _ = make_allocator()
        req = Request(qr=0.0, sr=0.0, lr=30.0, nr=2, rid=7)
        assert alloc.schedule(req) is not None
        assert alloc.schedule_detailed(
            Request(qr=0.0, sr=200.0, lr=10.0, nr=1, rid=8)
        ).allocation is None


class TestRangeSearchAndCommit:
    def test_range_search_then_commit(self):
        alloc, cal = make_allocator(n=4)
        found = alloc.range_search(RangeQuery(ta=10.0, tb=30.0))
        assert len(found) == 4
        chosen = found[:2]
        a = alloc.commit(chosen, 10.0, 30.0, rid=9)
        assert a.nr == 2
        cal.validate()
        # committed servers are gone from a repeat search
        again = alloc.range_search(RangeQuery(ta=10.0, tb=30.0))
        assert len(again) == 2

    def test_commit_stale_period_raises(self):
        alloc, _ = make_allocator(n=1)
        found = alloc.range_search(RangeQuery(ta=10.0, tb=30.0))
        alloc.commit(found, 10.0, 30.0, rid=1)
        with pytest.raises(ValueError):
            alloc.commit(found, 10.0, 30.0, rid=2)


class TestValidation:
    def test_rejects_bad_delta_t(self):
        _, cal = make_allocator()
        with pytest.raises(ValueError, match="increment"):
            OnlineCoAllocator(cal, delta_t=0.0, r_max=3)

    def test_rejects_bad_r_max(self):
        _, cal = make_allocator()
        with pytest.raises(ValueError, match="attempt"):
            OnlineCoAllocator(cal, delta_t=1.0, r_max=0)
