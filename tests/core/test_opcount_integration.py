"""Operation accounting across the data-structure stack.

Figure 7(b) depends on these counts being meaningful: searches must cost
O(log) visits, updates must record their work, and the counter totals
must be reproducible run to run.
"""

import math

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.opcount import OpCounter
from repro.core.slot_tree import TwoDimTree
from repro.core.types import IdlePeriod, Request


class TestTreeCounting:
    def test_search_visits_are_logarithmic(self):
        counter = OpCounter()
        tree = TwoDimTree(counter)
        tree.bulk_load(
            [IdlePeriod(server=i, st=float(i), et=1000.0 + i) for i in range(256)]
        )
        counter.reset()
        tree.phase1(128.0)
        # a single root-to-leaf walk: well under 2·log2(256) visits
        assert counter.get("node_visit") <= 2 * math.log2(256)

    def test_phase1_marks_counted(self):
        counter = OpCounter()
        tree = TwoDimTree(counter)
        tree.bulk_load([IdlePeriod(server=i, st=float(i), et=1e6) for i in range(64)])
        counter.reset()
        _, marks = tree.phase1(63.0)
        assert counter.get("mark") == len(marks)

    def test_updates_counted(self):
        counter = OpCounter()
        tree = TwoDimTree(counter)
        p = IdlePeriod(server=0, st=1.0, et=2.0)
        tree.insert(p)
        tree.remove(p)
        assert counter.get("insert") == 1
        assert counter.get("remove") == 1


class TestSchedulerCounting:
    def _run(self, seed_requests):
        counter = OpCounter()
        cal = AvailabilityCalendar(16, 10.0, 24, counter=counter)
        alloc = OnlineCoAllocator(cal, delta_t=10.0, r_max=8, counter=counter)
        for req in seed_requests:
            cal.advance(req.qr)
            alloc.schedule(req)
        return counter

    def test_counts_are_deterministic(self):
        requests = [
            Request(qr=float(i), sr=float(i), lr=25.0, nr=(i % 4) + 1, rid=i)
            for i in range(30)
        ]
        a = self._run(requests)
        b = self._run(requests)
        assert a.snapshot() == b.snapshot()

    def test_attempts_counted_per_retry(self):
        counter = OpCounter()
        cal = AvailabilityCalendar(1, 10.0, 24, counter=counter)
        alloc = OnlineCoAllocator(cal, delta_t=10.0, r_max=8, counter=counter)
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=25.0, nr=1, rid=1))
        base = counter.get("attempt")
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert counter.get("attempt") - base == 4  # retried to t=30

    def test_failed_attempts_cheaper_than_successes(self):
        """Failures never pay the O(n_r·Q·log²N) update, so a rejected
        request costs fewer retrieve/insert operations than an accepted
        one of the same shape."""
        counter = OpCounter()
        cal = AvailabilityCalendar(4, 10.0, 12, counter=counter)
        alloc = OnlineCoAllocator(cal, delta_t=10.0, r_max=2, counter=counter)
        before = counter.snapshot()
        alloc.schedule(Request(qr=0.0, sr=0.0, lr=30.0, nr=4, rid=1))
        success_inserts = counter.get("insert") - before.get("insert", 0)
        mid = counter.snapshot()
        # machine is fully busy until t=30; r_max=2 cannot reach it
        assert alloc.schedule(Request(qr=0.0, sr=0.0, lr=30.0, nr=4, rid=2)) is None
        failure_inserts = counter.get("insert") - mid.get("insert", 0)
        assert failure_inserts == 0
        assert success_inserts > 0
