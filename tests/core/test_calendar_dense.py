"""Unit tests for the dense (paper-literal) calendar indexing mode."""

import pytest

from repro.core.calendar import AvailabilityCalendar
from repro.core.types import INF


def make(n=4, tau=10.0, q=12):
    return AvailabilityCalendar(n_servers=n, tau=tau, q_slots=q, indexing="dense")


class TestDenseMode:
    def test_flag(self):
        assert make().dense
        assert not AvailabilityCalendar(2, 10.0, 4).dense

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="indexing"):
            AvailabilityCalendar(2, 10.0, 4, indexing="sparse")

    def test_trailing_periods_live_in_every_tree(self):
        cal = make(n=3, q=12)
        for q in range(12):
            tree = cal.tree_for(q * 10.0)
            assert len(tree) == 3  # one trailing period per server
        cal.validate()

    def test_allocation_updates_all_trees(self):
        cal = make(n=2, q=12)
        periods = cal.find_feasible(20.0, 40.0, 1)
        cal.allocate(periods, 20.0, 40.0)
        cal.validate()
        server = periods[0].server
        # the bounded remnant [0, 20) appears only in slots 0 and 1;
        # the trailing remnant (40, inf) appears in slots 4..11
        assert any(p.st == 40.0 and p.et == INF for p in cal.tree_for(50.0).periods())
        assert any(p.et == 20.0 for p in cal.tree_for(0.0).periods())
        assert not any(p.server == server for p in cal.tree_for(25.0).periods())

    def test_rollover_seeds_trailing_periods(self):
        cal = make(n=2, q=12)
        cal.allocate(cal.find_feasible(0.0, 30.0, 2), 0.0, 30.0)
        cal.advance(25.0)  # new slot [120, 130) created
        cal.validate()
        new_tree = cal.tree_for(125.0)
        assert len(new_tree) == 2  # both trailing periods reached the new slot

    def test_find_feasible_without_tail_index(self):
        cal = make(n=4)
        found = cal.find_feasible(10.0, 200.0, 4)
        assert found is not None and len(found) == 4
        assert all(p.et == INF for p in found)

    def test_range_search_no_duplicates(self):
        cal = make(n=3)
        found = cal.range_search(10.0, 30.0)
        assert len(found) == 3
        assert len({p.uid for p in found}) == 3

    def test_release_merges_in_dense_mode(self):
        cal = make(n=1)
        periods = cal.find_feasible(20.0, 40.0, 1)
        cal.allocate(periods, 20.0, 40.0)
        cal.release(0, 20.0, 40.0)
        cal.validate()
        assert [(p.st, p.et) for p in cal.idle_periods(0)] == [(0.0, INF)]
