"""Unit tests for the core value types."""

import math

import pytest

from repro.core.types import INF, Allocation, IdlePeriod, RangeQuery, Request, Reservation


class TestRequest:
    def test_basic_fields(self):
        r = Request(qr=10.0, sr=20.0, lr=5.0, nr=3, rid=7)
        assert r.qr == 10.0
        assert r.sr == 20.0
        assert r.lr == 5.0
        assert r.nr == 3
        assert r.rid == 7

    def test_ending_time(self):
        r = Request(qr=0.0, sr=20.0, lr=5.0, nr=1)
        assert r.er == 25.0

    def test_on_demand_request_is_not_advance(self):
        r = Request(qr=5.0, sr=5.0, lr=1.0, nr=1)
        assert not r.is_advance()

    def test_future_start_is_advance(self):
        r = Request(qr=5.0, sr=6.0, lr=1.0, nr=1)
        assert r.is_advance()

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Request(qr=0.0, sr=0.0, lr=0.0, nr=1)
        with pytest.raises(ValueError, match="duration"):
            Request(qr=0.0, sr=0.0, lr=-5.0, nr=1)

    def test_rejects_nonpositive_spatial_size(self):
        with pytest.raises(ValueError, match="spatial"):
            Request(qr=0.0, sr=0.0, lr=1.0, nr=0)

    def test_rejects_start_before_submission(self):
        with pytest.raises(ValueError, match="precedes submission"):
            Request(qr=10.0, sr=9.0, lr=1.0, nr=1)

    def test_latest_start_without_deadline_is_inf(self):
        r = Request(qr=0.0, sr=0.0, lr=1.0, nr=1)
        assert r.latest_start == INF

    def test_latest_start_with_deadline(self):
        r = Request(qr=0.0, sr=0.0, lr=10.0, nr=1, deadline=30.0)
        assert r.latest_start == 20.0

    def test_rejects_infeasible_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            Request(qr=0.0, sr=10.0, lr=10.0, nr=1, deadline=15.0)

    def test_deadline_equal_to_earliest_completion_is_allowed(self):
        r = Request(qr=0.0, sr=10.0, lr=10.0, nr=1, deadline=20.0)
        assert r.latest_start == 10.0

    def test_frozen(self):
        r = Request(qr=0.0, sr=0.0, lr=1.0, nr=1)
        with pytest.raises(AttributeError):
            r.lr = 2.0  # type: ignore[misc]


class TestIdlePeriod:
    def test_unique_uids(self):
        a = IdlePeriod(server=0, st=0.0, et=1.0)
        b = IdlePeriod(server=0, st=0.0, et=1.0)
        assert a.uid != b.uid

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError, match="empty"):
            IdlePeriod(server=0, st=5.0, et=5.0)
        with pytest.raises(ValueError, match="empty"):
            IdlePeriod(server=0, st=5.0, et=4.0)

    def test_candidate_rule_matches_paper(self):
        # candidate iff st <= s_r
        p = IdlePeriod(server=0, st=10.0, et=50.0)
        assert p.is_candidate(10.0)
        assert p.is_candidate(15.0)
        assert not p.is_candidate(9.0)

    def test_feasible_rule_matches_paper(self):
        # feasible iff st <= s_r and et >= e_r
        p = IdlePeriod(server=0, st=10.0, et=50.0)
        assert p.is_feasible(10.0, 50.0)
        assert p.is_feasible(20.0, 40.0)
        assert not p.is_feasible(5.0, 40.0)
        assert not p.is_feasible(20.0, 51.0)

    def test_infinite_period_feasible_for_any_end(self):
        p = IdlePeriod(server=0, st=10.0, et=INF)
        assert p.is_feasible(10.0, 1e12)

    def test_overlaps_half_open(self):
        p = IdlePeriod(server=0, st=10.0, et=20.0)
        assert p.overlaps(0.0, 11.0)
        assert p.overlaps(19.0, 30.0)
        assert not p.overlaps(20.0, 30.0)  # et is open
        assert not p.overlaps(0.0, 10.0)  # st is closed but window end is open

    def test_identity_equality(self):
        p = IdlePeriod(server=0, st=0.0, et=1.0)
        q = IdlePeriod(server=0, st=0.0, et=1.0)
        assert p == p
        assert p != q


class TestReservation:
    def test_duration(self):
        res = Reservation(rid=1, server=2, start=10.0, end=25.0)
        assert res.duration == 15.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            Reservation(rid=1, server=2, start=10.0, end=10.0)


class TestAllocation:
    def _alloc(self) -> Allocation:
        reservations = tuple(
            Reservation(rid=9, server=s, start=5.0, end=15.0) for s in (3, 1, 4)
        )
        return Allocation(
            rid=9, start=5.0, end=15.0, reservations=reservations, attempts=2, delay=5.0
        )

    def test_servers(self):
        assert self._alloc().servers == (3, 1, 4)

    def test_nr(self):
        assert self._alloc().nr == 3


class TestRangeQuery:
    def test_valid_window(self):
        q = RangeQuery(ta=1.0, tb=2.0)
        assert q.ta == 1.0 and q.tb == 2.0

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty"):
            RangeQuery(ta=2.0, tb=2.0)
