"""The paper's worked example, end to end (Figures 1-2, Section 4.2).

Setup: a 4-server system with horizon H = 42 and slot size τ = 10.
After the jobs of Figure 1 are committed, the idle periods of Figure 2(a)
exist:

* X = (4, 25)  on server 1   (between jobs A and B)
* Y = (16, 33) on server 2
* Z = (7, 33)  on server 3
* V = (1, 18)  on server 4

The request walked through in Section 4.2 is
``r = (q_r=17, s_r=17, l_r=12, n_r=2)`` (so ``e_r = 29``):

* Phase 1 in slot q=1 (interval [10, 20)) finds **4 candidates** —
  X, Y, Z, V all start at or before 17;
* Phase 2 finds exactly **Y and Z** feasible (the only periods with
  ``et >= 29``) and returns them, in that order (latest-starting
  candidates first).
"""

import pytest

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.slot_tree import TwoDimTree
from repro.core.types import IdlePeriod, Request

# Figure 2(a): (name, server, st, et)
PAPER_PERIODS = [
    ("X", 1, 4.0, 25.0),
    ("Y", 2, 16.0, 33.0),
    ("Z", 3, 7.0, 33.0),
    ("V", 4, 1.0, 18.0),
]


@pytest.fixture
def slot_tree():
    """The 2-D tree for slot q covering [10, 20), holding X, Y, Z, V."""
    tree = TwoDimTree()
    for _, server, st, et in PAPER_PERIODS:
        tree.insert(IdlePeriod(server=server, st=st, et=et))
    return tree


class TestFigure2:
    def test_all_four_periods_overlap_slot_one(self, slot_tree):
        # "Since all four idle periods overlap (at least partially) with
        # this slot, the primary tree stores all four in its leaves"
        assert len(slot_tree) == 4

    def test_phase1_finds_four_candidates(self, slot_tree):
        count, _ = slot_tree.phase1(17.0)
        assert count == 4  # "the algorithm has found 4 > nr = 2 candidates"

    def test_phase2_returns_y_then_z(self, slot_tree):
        found = slot_tree.find_feasible(17.0, 29.0, 2)
        assert found is not None
        # "the algorithm searches node Y first, and confirms that it is a
        #  feasible idle period; it then repeats the process with node Z"
        assert [(p.server, p.st, p.et) for p in found] == [
            (2, 16.0, 33.0),  # Y
            (3, 7.0, 33.0),  # Z
        ]

    def test_x_and_v_are_candidates_but_not_feasible(self, slot_tree):
        # X ends at 25 < 29, V ends at 18 < 29
        for server, st, et in [(1, 4.0, 25.0), (4, 1.0, 18.0)]:
            p = IdlePeriod(server=server, st=st, et=et)
            assert p.is_candidate(17.0)
            assert not p.is_feasible(17.0, 29.0)

    def test_three_servers_would_fail(self, slot_tree):
        # only two feasible periods exist; nr=3 must fail Phase 2
        assert slot_tree.find_feasible(17.0, 29.0, 3) is None


class TestFigure1Schedule:
    """Rebuild Figure 1's whole schedule through the public API."""

    def make_calendar(self) -> AvailabilityCalendar:
        cal = AvailabilityCalendar(n_servers=5, tau=10.0, q_slots=5)  # H=50; server 0 unused
        # Figure 1's committed jobs (read off the chart):
        #   server 1: job A [0, 4), job B [25, 34)
        #   server 2: jobs ending at 16 and starting at 33
        #   server 3: jobs ending at 7 and starting at 33
        #   server 4: job ending at 1 and job starting at 18
        for server, windows in {
            1: [(0.0, 4.0), (25.0, 34.0)],
            2: [(0.0, 16.0), (33.0, 42.0)],
            3: [(0.0, 7.0), (33.0, 42.0)],
            4: [(0.0, 1.0), (18.0, 42.0)],
        }.items():
            for start, end in windows:
                periods = [
                    p for p in cal.idle_periods(server) if p.is_feasible(start, end)
                ]
                cal.allocate(periods[:1], start, end)
        cal.validate()
        return cal

    def test_idle_periods_match_figure_2a(self):
        cal = self.make_calendar()
        got = {
            (p.server, p.st, p.et)
            for server in range(1, 5)
            for p in cal.idle_periods(server)
            if p.et <= 42.0  # ignore the trailing idle beyond the chart
        }
        expected = {(s, st, et) for _, s, st, et in PAPER_PERIODS}
        assert expected <= got

    def test_section_42_request_schedules_on_y_and_z(self):
        cal = self.make_calendar()
        alloc = OnlineCoAllocator(cal, delta_t=10.0, r_max=2).schedule(
            Request(qr=17.0, sr=17.0, lr=12.0, nr=2, rid=1)
        )
        assert alloc is not None
        assert alloc.start == 17.0 and alloc.end == 29.0 and alloc.attempts == 1
        assert set(alloc.servers) == {2, 3}  # Y's and Z's servers
        cal.validate()
