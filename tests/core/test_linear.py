"""Unit tests for the linear-scan baseline allocator."""

import pytest

from repro.core.linear import LinearScanAllocator
from repro.core.types import Request


def make(n=4, delta_t=10.0, r_max=6, horizon=120.0):
    return LinearScanAllocator(n, delta_t=delta_t, r_max=r_max, horizon=horizon)


class TestSchedule:
    def test_immediate_success(self):
        lin = make()
        a = lin.schedule(Request(qr=0.0, sr=0.0, lr=30.0, nr=3, rid=1))
        assert a is not None and a.start == 0.0 and a.attempts == 1
        assert len(set(a.servers)) == 3

    def test_retry_semantics_match_online(self):
        lin = make(n=1)
        lin.schedule(Request(qr=0.0, sr=0.0, lr=25.0, nr=1, rid=1))
        a = lin.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2))
        assert a is not None and a.start == 30.0 and a.attempts == 4

    def test_r_max_exhaustion(self):
        lin = make(n=1, r_max=2)
        lin.schedule(Request(qr=0.0, sr=0.0, lr=45.0, nr=1, rid=1))
        assert lin.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2)) is None

    def test_horizon_limits_attempts(self):
        lin = make(horizon=50.0, r_max=100)
        a = lin.schedule(Request(qr=0.0, sr=60.0, lr=10.0, nr=1, rid=1))
        assert a is None

    def test_deadline_respected(self):
        lin = make(n=1)
        lin.schedule(Request(qr=0.0, sr=0.0, lr=35.0, nr=1, rid=1))
        a = lin.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2, deadline=30.0))
        assert a is None

    def test_no_double_booking(self):
        lin = make(n=2)
        a = lin.schedule(Request(qr=0.0, sr=0.0, lr=50.0, nr=2, rid=1))
        b = lin.schedule(Request(qr=0.0, sr=20.0, lr=10.0, nr=1, rid=2))
        assert a is not None and b is not None
        assert b.start >= 50.0


class TestAdvance:
    def test_advance_drops_finished(self):
        lin = make(n=1)
        lin.schedule(Request(qr=0.0, sr=0.0, lr=30.0, nr=1, rid=1))
        lin.advance(40.0)
        assert lin.free_servers(40.0, 50.0) == [0]

    def test_advance_backwards_raises(self):
        lin = make()
        lin.advance(5.0)
        with pytest.raises(ValueError, match="backwards"):
            lin.advance(4.0)

    def test_horizon_end_tracks_clock(self):
        lin = make(horizon=100.0)
        lin.advance(50.0)
        assert lin.horizon_end == 150.0


class TestFreeServers:
    def test_initially_all_free(self):
        lin = make(n=4)
        assert lin.free_servers(0.0, 100.0) == [0, 1, 2, 3]

    def test_partial_occupation(self):
        lin = make(n=4)
        lin.schedule(Request(qr=0.0, sr=10.0, lr=20.0, nr=2, rid=1))
        free = lin.free_servers(15.0, 25.0)
        assert len(free) == 2
