"""Unit tests for operation counting."""

from repro.core.opcount import NULL_COUNTER, OpCounter


class TestOpCounter:
    def test_starts_empty(self):
        c = OpCounter()
        assert c.total() == 0
        assert c.get("node_visit") == 0

    def test_add_accumulates(self):
        c = OpCounter()
        c.add("node_visit")
        c.add("node_visit", 4)
        assert c.get("node_visit") == 5
        assert c.total() == 5

    def test_total_spans_categories(self):
        c = OpCounter()
        c.add("a", 2)
        c.add("b", 3)
        assert c.total() == 5

    def test_reset(self):
        c = OpCounter()
        c.add("a", 2)
        c.reset()
        assert c.total() == 0

    def test_snapshot_is_independent(self):
        c = OpCounter()
        c.add("a", 2)
        snap = c.snapshot()
        c.add("a", 1)
        assert snap == {"a": 2}
        assert c.get("a") == 3

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_null_counter_discards(self):
        NULL_COUNTER.add("anything", 1000)
        assert NULL_COUNTER.total() == 0
