"""Unit tests for the availability calendar."""

import pytest

from repro.core.calendar import AvailabilityCalendar
from repro.core.types import INF, IdlePeriod


def make_calendar(n=4, tau=10.0, q=12, start=0.0) -> AvailabilityCalendar:
    return AvailabilityCalendar(n_servers=n, tau=tau, q_slots=q, start_time=start)


class TestConstruction:
    def test_initially_all_idle(self):
        cal = make_calendar()
        for s in range(4):
            periods = cal.idle_periods(s)
            assert len(periods) == 1
            assert periods[0].st == 0.0 and periods[0].et == INF
        cal.validate()

    def test_geometry(self):
        cal = make_calendar(tau=10.0, q=12)
        assert cal.horizon_start == 0.0
        assert cal.horizon_end == 120.0
        assert cal.slot_of(0.0) == 0
        assert cal.slot_of(9.999) == 0
        assert cal.slot_of(10.0) == 1
        assert cal.in_horizon(119.0)
        assert not cal.in_horizon(120.0)

    def test_nonzero_start_time(self):
        cal = make_calendar(start=35.0)
        assert cal.horizon_start == 30.0  # slot-aligned
        assert cal.in_horizon(35.0)
        cal.validate()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="server"):
            AvailabilityCalendar(0, 10.0, 12)
        with pytest.raises(ValueError, match="slot length"):
            AvailabilityCalendar(4, 0.0, 12)
        with pytest.raises(ValueError, match="slot"):
            AvailabilityCalendar(4, 10.0, 0)


class TestFindFeasible:
    def test_fresh_system_fully_feasible(self):
        cal = make_calendar()
        found = cal.find_feasible(0.0, 1000.0, 4)
        assert found is not None and len(found) == 4
        assert len({p.server for p in found}) == 4

    def test_too_many_servers_fails(self):
        cal = make_calendar(n=4)
        assert cal.find_feasible(0.0, 10.0, 5) is None

    def test_outside_horizon_fails(self):
        cal = make_calendar(tau=10.0, q=12)
        assert cal.find_feasible(120.0, 130.0, 1) is None

    def test_query_does_not_commit(self):
        cal = make_calendar()
        cal.find_feasible(0.0, 50.0, 4)
        found = cal.find_feasible(0.0, 50.0, 4)
        assert found is not None and len(found) == 4


class TestAllocate:
    def test_allocation_splits_period(self):
        cal = make_calendar()
        periods = cal.find_feasible(20.0, 40.0, 1)
        res = cal.allocate(periods, 20.0, 40.0, rid=7)
        assert len(res) == 1 and res[0].rid == 7
        server = res[0].server
        remaining = cal.idle_periods(server)
        assert [(p.st, p.et) for p in remaining] == [(0.0, 20.0), (40.0, INF)]
        cal.validate()

    def test_allocation_at_period_start_leaves_one_remnant(self):
        cal = make_calendar()
        periods = cal.find_feasible(0.0, 30.0, 2)
        cal.allocate(periods, 0.0, 30.0)
        for res_period in periods:
            remaining = cal.idle_periods(res_period.server)
            assert [(p.st, p.et) for p in remaining] == [(30.0, INF)]
        cal.validate()

    def test_allocated_window_no_longer_feasible(self):
        cal = make_calendar(n=1)
        periods = cal.find_feasible(10.0, 50.0, 1)
        cal.allocate(periods, 10.0, 50.0)
        assert cal.find_feasible(30.0, 40.0, 1) is None
        # but the leading gap still is
        assert cal.find_feasible(0.0, 10.0, 1) is not None
        cal.validate()

    def test_allocate_infeasible_period_raises(self):
        cal = make_calendar()
        p = cal.idle_periods(0)[0]
        cal.allocate([p], 10.0, 20.0)
        stale = cal.idle_periods(0)[0]  # (0, 10)
        with pytest.raises(ValueError, match="cannot host"):
            cal.allocate([stale], 5.0, 15.0)

    def test_gap_fill_between_reservations(self):
        cal = make_calendar(n=1)
        cal.allocate(cal.find_feasible(0.0, 20.0, 1), 0.0, 20.0)
        cal.allocate(cal.find_feasible(50.0, 80.0, 1), 50.0, 80.0)
        gap = cal.find_feasible(20.0, 50.0, 1)
        assert gap is not None
        assert gap[0].st == 20.0 and gap[0].et == 50.0
        cal.allocate(gap, 20.0, 50.0)
        assert cal.idle_periods(0)[-1].st == 80.0
        cal.validate()

    def test_prefers_bounded_over_trailing_periods(self):
        # best-fit: a gap that exactly fits should be chosen before
        # cutting into a server's unbounded trailing idle time
        cal = make_calendar(n=2)
        # server gets a reservation [40, 60) creating a bounded gap [0, 40)
        first = cal.find_feasible(40.0, 60.0, 1)
        cal.allocate(first, 40.0, 60.0)
        busy_server = first[0].server
        found = cal.find_feasible(0.0, 30.0, 1)
        assert found is not None
        assert found[0].server == busy_server  # the bounded gap wins
        cal.validate()

    def test_reservation_beyond_horizon_end(self):
        cal = make_calendar(tau=10.0, q=12)  # horizon [0, 120)
        periods = cal.find_feasible(110.0, 500.0, 2)
        assert periods is not None
        cal.allocate(periods, 110.0, 500.0)
        cal.validate()
        # the trailing remnants start at 500, far beyond the horizon
        servers = {p.server for p in periods}
        for s in servers:
            assert cal.idle_periods(s)[-1].st == 500.0


class TestAdvanceAndRollover:
    def test_advance_moves_clock(self):
        cal = make_calendar()
        cal.advance(25.0)
        assert cal.now == 25.0
        assert cal.horizon_start == 20.0
        assert cal.horizon_end == 140.0
        cal.validate()

    def test_advance_backwards_raises(self):
        cal = make_calendar()
        cal.advance(5.0)
        with pytest.raises(ValueError, match="backwards"):
            cal.advance(4.0)

    def test_rollover_extends_search_window(self):
        cal = make_calendar(tau=10.0, q=12)
        assert cal.find_feasible(125.0, 130.0, 1) is None
        cal.advance(15.0)  # horizon now [10, 130)
        assert cal.find_feasible(125.0, 130.0, 1) is not None

    def test_pending_periods_enter_new_slots(self):
        cal = make_calendar(n=2, tau=10.0, q=12)
        # reservation [10, 115) leaves bounded remnant [0, 10) and trailing (115, inf)
        periods = cal.find_feasible(10.0, 115.0, 1)
        cal.allocate(periods, 10.0, 115.0)
        server = periods[0].server
        # second reservation (125, 150) on same server bounds the gap (115, 125)
        gap = [p for p in cal.idle_periods(server) if p.st == 115.0]
        cal.allocate(gap, 125.0, 150.0)
        # the bounded remnant (115, 125) extends beyond horizon_end=120
        cal.validate()
        cal.advance(21.0)  # horizon [20, 140): slot for (115,125) fully visible
        cal.validate()
        found = cal.find_feasible(116.0, 124.0, 1)
        assert found is not None and found[0].server == server

    def test_long_jump_advance(self):
        cal = make_calendar(tau=10.0, q=12)
        cal.allocate(cal.find_feasible(5.0, 25.0, 2), 5.0, 25.0)
        cal.advance(500.0)  # jump far past everything
        cal.validate()
        found = cal.find_feasible(505.0, 550.0, 4)
        assert found is not None and len(found) == 4

    def test_history_trimmed(self):
        cal = make_calendar(n=2, tau=10.0, q=12)
        cal.allocate(cal.find_feasible(0.0, 10.0, 2), 0.0, 10.0)
        cal.advance(200.0)
        for s in range(2):
            periods = cal.idle_periods(s)
            assert len(periods) == 1  # the finished gap history is gone
            assert periods[0].et == INF


class TestRelease:
    def test_release_merges_with_both_neighbours(self):
        cal = make_calendar(n=1)
        periods = cal.find_feasible(20.0, 40.0, 1)
        cal.allocate(periods, 20.0, 40.0)
        cal.release(0, 20.0, 40.0)
        merged = cal.idle_periods(0)
        assert [(p.st, p.et) for p in merged] == [(0.0, INF)]
        cal.validate()

    def test_partial_release_merges_tail_only(self):
        cal = make_calendar(n=1)
        cal.allocate(cal.find_feasible(20.0, 40.0, 1), 20.0, 40.0)
        cal.release(0, 30.0, 40.0)  # early completion at t=30
        assert [(p.st, p.et) for p in cal.idle_periods(0)] == [(0.0, 20.0), (30.0, INF)]
        cal.validate()

    def test_release_overlapping_idle_raises(self):
        cal = make_calendar(n=1)
        with pytest.raises(ValueError, match="overlaps"):
            cal.release(0, 10.0, 20.0)

    def test_release_empty_window_raises(self):
        cal = make_calendar(n=1)
        with pytest.raises(ValueError, match="empty"):
            cal.release(0, 10.0, 10.0)


class TestFractionalTauBoundaries:
    """Slot boundaries with a fractional ``tau`` (regression).

    Float modulo is the wrong boundary test: ``0.5 % 0.1`` is not 0, so
    an end time sitting exactly on a slot edge used to be treated as
    reaching *into* the next slot, indexing the period into a tree it
    does not overlap.  The calendar now derives the last overlapping
    slot from ``slot_of`` arithmetic alone.
    """

    def test_allocate_release_on_boundary_validates(self):
        cal = make_calendar(n=2, tau=0.1, q=12)
        found = cal.find_feasible(0.2, 0.5, 1)
        assert found is not None
        reservations = cal.allocate(found, 0.2, 0.5, rid=1)
        cal.validate()
        (res,) = reservations
        cal.release(res.server, res.start, res.end)
        cal.validate()

    def test_boundary_end_stays_out_of_next_slot(self):
        cal = make_calendar(n=1, tau=0.1, q=12)
        cal.allocate(cal.find_feasible(0.0, 0.5, 1), 0.0, 0.5, rid=1)
        cal.validate()
        # the busy window [0, 0.5) must not shadow slot 5: the idle
        # remnant starting at 0.5 covers [0.5, 0.9)
        assert cal.find_feasible(0.5, 0.9, 1) is not None

    def test_repeated_boundary_cycles_stay_consistent(self):
        cal = make_calendar(n=2, tau=0.1, q=24)
        for k in range(1, 8):
            start, end = round(k * 0.1, 10), round((k + 2) * 0.1, 10)
            found = cal.find_feasible(start, end, 2)
            assert found is not None
            reservations = cal.allocate(found, start, end, rid=k)
            cal.validate()
            for res in reservations:
                cal.release(res.server, res.start, res.end)
            cal.validate()


class TestRangeSearch:
    def test_fresh_system_range_search(self):
        cal = make_calendar(n=4)
        found = cal.range_search(30.0, 60.0)
        assert len(found) == 4

    def test_range_search_excludes_busy(self):
        cal = make_calendar(n=4)
        periods = cal.find_feasible(30.0, 60.0, 2)
        cal.allocate(periods, 30.0, 60.0)
        found = cal.range_search(35.0, 55.0)
        assert len(found) == 2
        assert {p.server for p in found}.isdisjoint({p.server for p in periods})

    def test_range_search_outside_horizon(self):
        cal = make_calendar(tau=10.0, q=12)
        assert cal.range_search(500.0, 600.0) == []

    def test_range_search_includes_bounded_gaps(self):
        cal = make_calendar(n=1)
        cal.allocate(cal.find_feasible(50.0, 80.0, 1), 50.0, 80.0)
        found = cal.range_search(10.0, 40.0)
        assert len(found) == 1 and found[0].et == 50.0
