"""Differential fuzz smoke: short streams from every profile must run
lock-step against the reference scheduler with zero divergences.

The CI fuzz job runs the long campaigns; this in-suite smoke keeps the
oracle, generator and differ wired together on every test run.
"""

from __future__ import annotations

import pytest

from repro.verify.differ import run_stream
from repro.verify.genstream import PROFILES, generate_stream

SMOKE_OPS = 250
SMOKE_SEEDS = (0, 1)


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_profile_stream_has_no_divergence(profile: str, seed: int) -> None:
    stream = generate_stream(profile, seed, SMOKE_OPS)
    result = run_stream(stream, state_stride=25)
    assert result.divergence is None, result.divergence.describe()
    assert result.ops_run == SMOKE_OPS


def test_generation_is_deterministic() -> None:
    a = generate_stream("dense", 3, 80)
    b = generate_stream("dense", 3, 80)
    assert a.ops == b.ops
    assert a.config == b.config


def test_streams_exercise_every_op_kind() -> None:
    kinds = {op["kind"] for op in generate_stream("dense", 0, 400).ops}
    assert kinds == {"reserve", "probe", "cancel", "restore"}


def test_run_tallies_add_up() -> None:
    stream = generate_stream("sparse", 2, 300)
    result = run_stream(stream, state_stride=50)
    assert result.divergence is None
    reserves = sum(1 for op in stream.ops if op["kind"] == "reserve")
    assert result.accepted + result.rejected == reserves
    assert result.probes == sum(1 for op in stream.ops if op["kind"] == "probe")
    assert result.restores == sum(1 for op in stream.ops if op["kind"] == "restore")


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_scale_event_stream_has_no_divergence(profile: str, seed: int) -> None:
    stream = generate_stream(profile, seed, SMOKE_OPS, scale_events=True)
    assert stream.meta == {"scale_events": True}
    result = run_stream(stream, state_stride=25)
    assert result.divergence is None, result.divergence.describe()
    assert result.scale_ops > 0


def test_scale_events_off_is_bit_identical_to_before() -> None:
    """The flag must not perturb historic streams: every (profile, seed,
    ops) triple generated without scale events is the exact stream the
    corpus and the long-running CI campaigns were built on."""
    assert generate_stream("dense", 3, 80).ops == generate_stream(
        "dense", 3, 80, scale_events=False
    ).ops


def test_scale_event_generation_is_deterministic() -> None:
    a = generate_stream("sparse", 5, 300, scale_events=True)
    b = generate_stream("sparse", 5, 300, scale_events=True)
    assert a.ops == b.ops
    kinds = {op["kind"] for op in a.ops}
    assert {"add_servers", "drain", "remove", "pool_status"} <= kinds


def test_scale_event_streams_exercise_refusals() -> None:
    """The generator must deliberately produce malformed counts and
    out-of-range servers — refusal verdicts are compared against the
    oracle like any other decision, so they need traffic."""
    ops = generate_stream("dense", 0, 1500, scale_events=True).ops
    adds = [op for op in ops if op["kind"] == "add_servers"]
    drains = [op for op in ops if op["kind"] == "drain"]
    assert any(op["count"] <= 0 for op in adds)
    assert any(op["count"] > 0 for op in adds)
    assert drains


@pytest.mark.slow
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_long_stream_has_no_divergence(profile: str) -> None:
    stream = generate_stream(profile, 0, 3000)
    result = run_stream(stream, state_stride=200)
    assert result.divergence is None, result.divergence.describe()


@pytest.mark.slow
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_long_scale_event_stream_has_no_divergence(profile: str) -> None:
    stream = generate_stream(profile, 0, 3000, scale_events=True)
    result = run_stream(stream, state_stride=200)
    assert result.divergence is None, result.divergence.describe()
