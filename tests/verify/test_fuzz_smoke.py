"""Differential fuzz smoke: short streams from every profile must run
lock-step against the reference scheduler with zero divergences.

The CI fuzz job runs the long campaigns; this in-suite smoke keeps the
oracle, generator and differ wired together on every test run.
"""

from __future__ import annotations

import pytest

from repro.verify.differ import run_stream
from repro.verify.genstream import PROFILES, generate_stream

SMOKE_OPS = 250
SMOKE_SEEDS = (0, 1)


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_profile_stream_has_no_divergence(profile: str, seed: int) -> None:
    stream = generate_stream(profile, seed, SMOKE_OPS)
    result = run_stream(stream, state_stride=25)
    assert result.divergence is None, result.divergence.describe()
    assert result.ops_run == SMOKE_OPS


def test_generation_is_deterministic() -> None:
    a = generate_stream("dense", 3, 80)
    b = generate_stream("dense", 3, 80)
    assert a.ops == b.ops
    assert a.config == b.config


def test_streams_exercise_every_op_kind() -> None:
    kinds = {op["kind"] for op in generate_stream("dense", 0, 400).ops}
    assert kinds == {"reserve", "probe", "cancel", "restore"}


def test_run_tallies_add_up() -> None:
    stream = generate_stream("sparse", 2, 300)
    result = run_stream(stream, state_stride=50)
    assert result.divergence is None
    reserves = sum(1 for op in stream.ops if op["kind"] == "reserve")
    assert result.accepted + result.rejected == reserves
    assert result.probes == sum(1 for op in stream.ops if op["kind"] == "probe")
    assert result.restores == sum(1 for op in stream.ops if op["kind"] == "restore")


@pytest.mark.slow
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_long_stream_has_no_divergence(profile: str) -> None:
    stream = generate_stream(profile, 0, 3000)
    result = run_stream(stream, state_stride=200)
    assert result.divergence is None, result.divergence.describe()
