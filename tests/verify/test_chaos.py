"""Chaos smoke: one real service subprocess per plan, faults injected,
ledger/oracle/snapshot all required to agree.

Marked slow+service: each test boots (and for kill-restart, SIGKILLs and
reboots) an actual ``repro serve`` process.  CI runs these in the fuzz
job; tier-1 skips them.
"""

from __future__ import annotations

import pytest

from repro.verify.chaos import ChaosPlan, run_chaos
from repro.verify.genstream import generate_stream

pytestmark = [pytest.mark.slow, pytest.mark.service]


def _assert_passed(report: dict) -> None:
    assert report["ledger_violations"] == []
    assert report["verdict_divergences_total"] == 0
    assert report["replay_mismatches"] == []
    assert report["duplicate_mismatches"] == []
    assert report["state_equal"]
    assert len(set(report["checksums"].values())) == 1
    assert report["passed"]


def test_kill_restart_preserves_decisions(tmp_path) -> None:
    stream = generate_stream("dense", 11, 120)
    plan = ChaosPlan(kind="kill-restart")
    report = run_chaos(stream, plan, work_dir=str(tmp_path))
    assert report["restarts"] == 1
    _assert_passed(report)


def test_duplicate_sends_replay_recorded_verdicts(tmp_path) -> None:
    stream = generate_stream("dense", 12, 120)
    plan = ChaosPlan(kind="duplicate", duplicate_every=3)
    report = run_chaos(stream, plan, work_dir=str(tmp_path))
    assert report["duplicate_checks"] > 0
    _assert_passed(report)


def test_reordered_stream_still_matches_oracle(tmp_path) -> None:
    stream = generate_stream("sparse", 13, 120)
    plan = ChaosPlan(kind="reorder", reorder_window=5, seed=13)
    report = run_chaos(stream, plan, work_dir=str(tmp_path))
    _assert_passed(report)


def test_kill_one_shard_crash_stops_then_restart_preserves_decisions(tmp_path) -> None:
    """SIGKILL one calendar-shard worker mid-stream: the service must
    crash-stop (INTERNAL + nonzero exit, snapshot untouched), and the
    coordinated restart must re-decide the lost window identically —
    same accepted checksum as the uninterrupted oracle replay."""
    stream = generate_stream("dense", 14, 120)
    plan = ChaosPlan(kind="kill-shard")
    report = run_chaos(stream, plan, work_dir=str(tmp_path), shards=4)
    assert report["restarts"] == 1
    assert report["shard_kills"] == 1
    assert report["crash_stop_ok"]
    _assert_passed(report)


def test_kill_shard_plan_requires_a_sharded_service() -> None:
    stream = generate_stream("dense", 14, 20)
    with pytest.raises(ValueError, match="sharded"):
        run_chaos(stream, ChaosPlan(kind="kill-shard"), shards=1)


def test_scale_events_sigkill_mid_drain_restores_pool_and_verdicts(tmp_path) -> None:
    """SIGKILL lands right after the first drain past the snapshot; the
    restart must re-decide the lost window identically AND land on the
    exact pool membership the kill interrupted.  Every pool mutation is
    also sent twice — the duplicate must answer ``replayed: true`` from
    the aid-keyed exactly-once table."""
    stream = generate_stream("dense", 21, 150, scale_events=True)
    assert any(op["kind"] == "drain" for op in stream.ops)
    report = run_chaos(stream, ChaosPlan(kind="scale-events"), work_dir=str(tmp_path))
    assert report["restarts"] == 1
    assert report["scale_ops"] > 0
    assert report["duplicate_checks"] > 0
    assert report["pool_restore_mismatch"] is None
    assert report["pool_equal"]
    _assert_passed(report)


def test_scale_events_sharded_pool_rebalance_survives_kill(tmp_path) -> None:
    """The same plan against a sharded service: pool mutations run the
    coordinated export -> mutate -> shard-map rebalance -> reload path,
    and the kill/restart must still reproduce the uninterrupted
    checksum."""
    stream = generate_stream("sparse", 22, 120, scale_events=True)
    assert any(op["kind"] in ("add_servers", "drain", "remove") for op in stream.ops)
    report = run_chaos(
        stream, ChaosPlan(kind="scale-events"), work_dir=str(tmp_path), shards=3
    )
    assert report["restarts"] == 1
    assert report["pool_equal"]
    _assert_passed(report)
