"""Property tests: indexed range queries equal a plain linear scan.

``range_search``/``probe`` answers come from the slot-tree and tail
indexes; ``export_state`` exposes the same calendar as flat per-server
sorted period lists.  For any reachable scheduler state and any query
window, scanning the flat lists for periods *covering* ``[ta, tb)``
(``st <= ta`` and ``et >= tb``) must yield exactly the indexed answer —
the whole point of the index is to be a faster spelling of that scan.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Request
from repro.facade import CoAllocationScheduler

TAUS = (0.3, 1.0, 7.5)


def _op_strategy() -> st.SearchStrategy:
    reserve = st.fixed_dictionaries(
        {
            "kind": st.just("reserve"),
            "sr_tau": st.integers(min_value=0, max_value=12),
            "lr_tau": st.integers(min_value=1, max_value=6),
            "nr": st.integers(min_value=1, max_value=5),
        }
    )
    cancel = st.fixed_dictionaries(
        {"kind": st.just("cancel"), "which": st.integers(min_value=0, max_value=30)}
    )
    advance = st.fixed_dictionaries(
        {"kind": st.just("advance"), "by_tau": st.integers(min_value=0, max_value=4)}
    )
    return st.lists(st.one_of(reserve, cancel, advance), max_size=25)


@given(
    tau=st.sampled_from(TAUS),
    n_servers=st.integers(min_value=1, max_value=4),
    q_slots=st.integers(min_value=4, max_value=12),
    ops=_op_strategy(),
    ta_tau=st.integers(min_value=0, max_value=18),
    span_tau=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=120, deadline=None)
def test_range_search_equals_linear_scan(
    tau: float,
    n_servers: int,
    q_slots: int,
    ops: list[dict],
    ta_tau: int,
    span_tau: int,
) -> None:
    scheduler = CoAllocationScheduler(n_servers=n_servers, tau=tau, q_slots=q_slots)
    issued: list[int] = []
    rid = 0
    for op in ops:
        if op["kind"] == "reserve":
            sr = (scheduler.calendar.slot_of(scheduler.calendar.now) + op["sr_tau"]) * tau
            sr = max(sr, scheduler.calendar.now)
            scheduler.schedule_detailed(
                Request(
                    rid=rid,
                    qr=scheduler.calendar.now,
                    sr=sr,
                    lr=op["lr_tau"] * tau,
                    nr=op["nr"],
                )
            )
            issued.append(rid)
            rid += 1
        elif op["kind"] == "cancel":
            if issued:
                try:
                    scheduler.cancel(issued[op["which"] % len(issued)])
                except KeyError:
                    pass  # unknown/already-cancelled rid: not under test here
        else:
            scheduler.calendar.advance(scheduler.calendar.now + op["by_tau"] * tau)

    base = scheduler.calendar.slot_of(scheduler.calendar.now)
    ta = (base + ta_tau) * tau
    tb = ta + span_tau * tau
    horizon_end = scheduler.calendar.horizon_end
    ta, tb = min(ta, horizon_end - tau), min(tb, horizon_end)
    if not ta < tb:
        return

    indexed = {
        (p.server, p.st, p.et) for p in scheduler.range_search(ta, tb)
    }
    flat = scheduler.export_state()["calendar"]["periods"]
    scanned = {
        (server, st_, math.inf if et is None else et)
        for server, periods in enumerate(flat)
        for st_, et, _uid in periods
        if st_ <= ta and (et is None or et >= tb)
    }
    assert indexed == scanned


@given(
    tau=st.sampled_from(TAUS),
    k=st.integers(min_value=0, max_value=10_000),
    nudge=st.sampled_from((-1, 0, 1)),
)
@settings(max_examples=200, deadline=None)
def test_slot_of_brackets_its_argument(tau: float, k: int, nudge: int) -> None:
    """slot_of(t) must satisfy q*tau <= t < (q+1)*tau under the exact
    float products the calendar compares against — including at and one
    ulp around every k*tau boundary, where naive floor division drifts."""
    calendar = CoAllocationScheduler(n_servers=1, tau=tau, q_slots=4).calendar
    t = k * tau
    if nudge:
        t = math.nextafter(t, math.inf if nudge > 0 else -math.inf)
    if t < 0:
        return
    q = calendar.slot_of(t)
    assert q * tau <= t < (q + 1) * tau
