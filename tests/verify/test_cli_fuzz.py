"""`repro fuzz` CLI contract: flag parsing, report shape, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.errors import ErrorCode


def test_clean_run_exits_zero_and_writes_report(tmp_path: Path, capsys) -> None:
    out = tmp_path / "report.json"
    code = main(
        [
            "fuzz",
            "--ops",
            "150",
            "--seed",
            "0,1",
            "--profile",
            "dense,ties",
            "--out",
            str(out),
        ]
    )
    assert code == int(ErrorCode.OK)
    report = json.loads(out.read_text())
    assert report["mode"] == "differential"
    assert report["divergences"] == 0
    assert len(report["runs"]) == 4  # 2 profiles x 2 seeds
    assert "no divergence" in capsys.readouterr().out


def test_injection_self_test_exits_zero_when_caught(tmp_path: Path, capsys) -> None:
    test_file = tmp_path / "repro_test.py"
    code = main(
        [
            "fuzz",
            "--ops",
            "300",
            "--seed",
            "0",
            "--profile",
            "ties",
            "--inject",
            "reverse-tiebreak",
            "--shrink",
            "--emit-test",
            str(test_file),
        ]
    )
    assert code == int(ErrorCode.OK)
    captured = capsys.readouterr().out
    assert "DIVERGENCE" in captured
    assert "caught in every run" in captured
    assert "def test_" in test_file.read_text()


def test_bad_seed_list_is_malformed() -> None:
    assert main(["fuzz", "--seed", "zero"]) == int(ErrorCode.MALFORMED)


def test_unknown_profile_is_malformed() -> None:
    assert main(["fuzz", "--profile", "nope"]) == int(ErrorCode.MALFORMED)


def test_trace_replay_runs_corpus_file(capsys) -> None:
    corpus = Path(__file__).parent / "corpus" / "equal_end_ties.json"
    assert main(["fuzz", "--trace", str(corpus)]) == int(ErrorCode.OK)
    assert "no divergence" in capsys.readouterr().out
