"""Replay the minimized trace corpus against the differential oracle.

Every trace in ``tests/verify/corpus/`` is a shrunk or hand-minimized
stream that once exposed (or was designed to expose) a real divergence
class: fractional-τ slot boundaries, equal-end-key ties, snapshot/restore
identity, unbounded tail top-up, cancel-release merging, horizon
rollover.  Replaying them lock-step against the reference scheduler must
stay divergence-free forever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.differ import load_trace, run_stream

CORPUS = Path(__file__).parent / "corpus"
TRACES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_seeded() -> None:
    assert len(TRACES) >= 5, "the minimized corpus must hold at least five traces"


@pytest.mark.parametrize("path", TRACES, ids=lambda p: p.stem)
def test_corpus_trace_replays_clean(path: Path) -> None:
    stream = load_trace(str(path))
    result = run_stream(stream, state_stride=1)
    assert result.divergence is None, result.divergence.describe()
    assert result.ops_run == len(stream.ops)


@pytest.mark.parametrize("path", TRACES, ids=lambda p: p.stem)
def test_corpus_trace_replays_clean_sharded(path: Path) -> None:
    """The same traces through the sharded scheduler (K=4, clamped to the
    trace's server count): the scatter/merge path must stay lock-step
    with the reference too."""
    stream = load_trace(str(path))
    shards = min(4, int(stream.config["n_servers"]))
    result = run_stream(stream, state_stride=1, shards=shards)
    assert result.divergence is None, result.divergence.describe()
    assert result.ops_run == len(stream.ops)


def test_equal_end_ties_trace_catches_reverse_tiebreak() -> None:
    """The ties trace is a live tripwire, not a fixture: breaking the
    canonical (end, uid) selection order must flip it to a divergence."""
    stream = load_trace(str(CORPUS / "equal_end_ties.json"))
    result = run_stream(stream, inject="reverse-tiebreak")
    assert result.divergence is not None
    assert len(stream.ops) <= 10


def test_restore_slot_boundary_trace_crosses_a_float_boundary() -> None:
    """The regression trace must actually sit on a point where naive
    floor division and the robust ``slot_of`` disagree — otherwise it
    guards nothing."""
    import math

    stream = load_trace(str(CORPUS / "restore_slot_boundary.json"))
    tau = stream.config["tau"]
    reserve = next(op for op in stream.ops if op["kind"] == "reserve")
    t = reserve["sr"]
    q = int(t // tau)
    while (q + 1) * tau <= t:
        q += 1
    while q * tau > t:
        q -= 1
    assert int(math.floor(t / tau)) != q
