"""Fault-injection self-test: the differ must catch seeded selection
bugs and shrink them to tiny repros.

A fuzzer that never fails proves nothing.  These tests patch the slot
tree's Phase-2 selection with two known-wrong orders and require the
lock-step comparison to (a) notice, (b) delta-debug the stream down to a
handful of operations, and (c) emit a self-contained failing pytest.
"""

from __future__ import annotations

import pytest

from repro.verify.differ import (
    INJECTIONS,
    emit_pytest,
    inject_bug,
    run_stream,
    shrink_stream,
)
from repro.verify.genstream import generate_stream


@pytest.mark.parametrize("kind", sorted(INJECTIONS))
def test_injected_selection_bug_is_caught(kind: str) -> None:
    stream = generate_stream("ties", 0, 400)
    result = run_stream(stream, inject=kind)
    assert result.divergence is not None, f"injection {kind!r} went unnoticed"


def test_clean_run_stays_clean_after_injection_context() -> None:
    """The phase2 patch must not leak out of the context manager."""
    stream = generate_stream("ties", 0, 200)
    assert run_stream(stream, inject="reverse-tiebreak").divergence is not None
    assert run_stream(stream).divergence is None


@pytest.mark.parametrize("kind", sorted(INJECTIONS))
def test_shrink_reaches_a_tiny_repro(kind: str) -> None:
    stream = generate_stream("ties", 0, 400)
    shrunk = shrink_stream(stream, inject=kind)
    assert shrunk is not None
    assert len(shrunk.stream.ops) <= 10
    # the minimized stream still reproduces
    assert run_stream(shrunk.stream, inject=kind).divergence is not None
    # and is 1-minimal: dropping any single op loses the divergence
    for index in range(len(shrunk.stream.ops)):
        pruned = type(shrunk.stream)(
            config=dict(shrunk.stream.config),
            ops=[op for i, op in enumerate(shrunk.stream.ops) if i != index],
            profile=shrunk.stream.profile,
            seed=shrunk.stream.seed,
        )
        assert run_stream(pruned, inject=kind).divergence is None


def test_emitted_pytest_is_self_contained(tmp_path) -> None:
    stream = generate_stream("ties", 0, 300)
    shrunk = shrink_stream(stream, inject="reverse-tiebreak")
    assert shrunk is not None
    source = emit_pytest(shrunk, name="reverse_tiebreak_repro")
    assert "def test_reverse_tiebreak_repro" in source
    assert "TRACE" in source
    # run the emitted file for real: on correct code the trace replays
    # clean, and with the seeded bug active the same test must fail —
    # exactly the red/green cycle the generated repro promises
    namespace: dict[str, object] = {}
    exec(compile(source, "emitted_repro.py", "exec"), namespace)
    test = namespace["test_reverse_tiebreak_repro"]
    test()
    with inject_bug("reverse-tiebreak"), pytest.raises(AssertionError):
        test()
