"""The auto-scaler: pure policies, the message-planning driver, dry-run,
and the live service loop applying mutations through the actor."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.autoscale import (
    POLICIES,
    AutoScaleConfig,
    AutoScaler,
    build_policy,
)

from .harness import SMALL, rpc, start_service


def _telemetry(delay: float = 0.0, shed_rate: float = 0.0) -> dict:
    return {"queue_delay_ewma": delay, "shed_rate": shed_rate}


def _pool(active: int, draining: int = 0, removed: int = 0, drained=()) -> dict:
    servers = (
        ["active"] * active + ["draining"] * draining + ["removed"] * removed
    )
    return {
        "active": active,
        "draining": draining,
        "removed": removed,
        "total": len(servers),
        "servers": servers,
        "drain_progress": [
            {"server": s, "drained": s in drained}
            for s in range(active, active + draining)
        ],
    }


CONFIG = AutoScaleConfig(
    policy="step", min_servers=1, max_servers=8, step=2,
    high_delay=0.5, low_delay=0.05, high_shed_rate=0.05,
)


class TestStepPolicy:
    def test_scales_out_on_delay_breach(self):
        decision = build_policy(CONFIG).decide(_telemetry(delay=1.0), _pool(4))
        assert (decision.direction, decision.count) == ("up", 2)

    def test_scales_out_on_shed_breach_alone(self):
        decision = build_policy(CONFIG).decide(
            _telemetry(delay=0.0, shed_rate=0.5), _pool(4)
        )
        assert decision.direction == "up"

    def test_scale_out_capped_at_max_servers(self):
        decision = build_policy(CONFIG).decide(_telemetry(delay=1.0), _pool(7))
        assert (decision.direction, decision.count) == ("up", 1)
        hold = build_policy(CONFIG).decide(_telemetry(delay=1.0), _pool(8))
        assert hold.direction == "hold"

    def test_scales_in_when_idle(self):
        decision = build_policy(CONFIG).decide(_telemetry(delay=0.01), _pool(4))
        assert (decision.direction, decision.count) == ("down", 1)

    def test_never_drains_below_min_servers(self):
        decision = build_policy(CONFIG).decide(_telemetry(delay=0.0), _pool(1))
        assert decision.direction == "hold"

    def test_holds_while_a_drain_is_in_progress(self):
        decision = build_policy(CONFIG).decide(
            _telemetry(delay=1.0), _pool(4, draining=1)
        )
        assert decision.direction == "hold"

    def test_in_band_signals_hold(self):
        decision = build_policy(CONFIG).decide(_telemetry(delay=0.2), _pool(4))
        assert decision.direction == "hold"


class TestTargetPolicy:
    def test_proportional_target_capped_by_step(self):
        config = AutoScaleConfig(policy="target", step=2, max_servers=64,
                                 high_delay=0.5, low_delay=0.1)
        # setpoint 0.3s, delay 1.2s -> target 4 * 4 = 16, capped to +2
        decision = build_policy(config).decide(_telemetry(delay=1.2), _pool(4))
        assert (decision.direction, decision.count) == ("up", 2)

    def test_scale_in_toward_target(self):
        config = AutoScaleConfig(policy="target", step=3, max_servers=64,
                                 high_delay=0.5, low_delay=0.1)
        # delay 0.03s: target = round(8 * 0.03 / 0.3) = 1, capped to -3
        decision = build_policy(config).decide(_telemetry(delay=0.03), _pool(8))
        assert (decision.direction, decision.count) == ("down", 3)

    def test_shed_breach_counts_as_full_band_breach(self):
        config = AutoScaleConfig(policy="target", step=2, max_servers=64)
        decision = build_policy(config).decide(
            _telemetry(delay=0.2, shed_rate=0.5), _pool(4)
        )
        assert decision.direction == "up"


class TestHysteresisPolicy:
    def test_acts_only_after_patience_consecutive_breaches(self):
        config = AutoScaleConfig(policy="hysteresis", patience=3, max_servers=8)
        policy = build_policy(config)
        assert policy.decide(_telemetry(delay=1.0), _pool(4)).direction == "hold"
        assert policy.decide(_telemetry(delay=1.0), _pool(4)).direction == "hold"
        assert policy.decide(_telemetry(delay=1.0), _pool(4)).direction == "up"

    def test_one_calm_tick_resets_the_counter(self):
        config = AutoScaleConfig(policy="hysteresis", patience=2, max_servers=8)
        policy = build_policy(config)
        assert policy.decide(_telemetry(delay=1.0), _pool(4)).direction == "hold"
        assert policy.decide(_telemetry(delay=0.2), _pool(4)).direction == "hold"
        assert policy.decide(_telemetry(delay=1.0), _pool(4)).direction == "hold"

    def test_acting_resets_both_counters(self):
        config = AutoScaleConfig(policy="hysteresis", patience=2, max_servers=8)
        policy = build_policy(config)
        policy.decide(_telemetry(delay=1.0), _pool(4))
        assert policy.decide(_telemetry(delay=1.0), _pool(4)).direction == "up"
        # fresh evidence needed before the next action
        assert policy.decide(_telemetry(delay=1.0), _pool(6)).direction == "hold"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "nope"},
            {"interval": 0.0},
            {"min_servers": 0},
            {"min_servers": 5, "max_servers": 4},
            {"step": 0},
            {"low_delay": 0.5, "high_delay": 0.5},
            {"high_shed_rate": 0.0},
            {"patience": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoScaleConfig(**kwargs).validate()

    def test_every_policy_is_buildable(self):
        for name in POLICIES:
            build_policy(AutoScaleConfig(policy=name))


class TestDriver:
    def test_scale_out_plans_one_add_servers(self):
        scaler = AutoScaler(AutoScaleConfig(policy="step", step=2, max_servers=8))
        decision, messages = scaler.plan(_telemetry(delay=1.0), _pool(4))
        assert decision.direction == "up"
        assert messages == [{"op": "add_servers", "count": 2, "aid": "autoscale-add-1"}]

    def test_scale_in_drains_the_highest_active_server(self):
        scaler = AutoScaler(AutoScaleConfig(policy="step", min_servers=1))
        decision, messages = scaler.plan(_telemetry(delay=0.0), _pool(4))
        assert decision.direction == "down"
        assert [m["op"] for m in messages] == ["drain"]
        assert messages[0]["server"] == 3

    def test_drained_servers_are_removed_regardless_of_decision(self):
        scaler = AutoScaler(AutoScaleConfig(policy="step"))
        pool = _pool(4, draining=1, drained={4})
        decision, messages = scaler.plan(_telemetry(delay=0.2), pool)
        assert decision.direction == "hold"  # drain in progress
        assert messages == [{"op": "remove", "server": 4, "aid": "autoscale-remove-4"}]

    def test_dry_run_records_history_but_applies_nothing(self):
        scaler = AutoScaler(
            AutoScaleConfig(policy="step", step=1, max_servers=8, dry_run=True)
        )
        decision, messages = scaler.plan(_telemetry(delay=1.0), _pool(4))
        assert decision.direction == "up"
        assert messages == []
        assert scaler.history[-1]["dry_run"]
        assert scaler.summary()["dry_run"]


def test_autoscale_loop_grows_a_live_pool():
    """End to end: shed pressure -> the service's autoscale loop plans an
    add_servers and applies it through the actor queue."""

    async def scenario():
        service = await start_service(
            **SMALL,
            autoscale=AutoScaleConfig(
                policy="step", interval=0.05, max_servers=4, step=2,
                high_delay=0.5, low_delay=1e-6, high_shed_rate=0.01,
            ),
        )
        try:
            # manufacture overload signals directly: the loop reads the
            # admission telemetry, so a poisoned EWMA is indistinguishable
            # from real queue pressure
            service.admission.queue_delay_ewma = 2.0
            service.admission.shed_rate = 0.5
            for _ in range(80):
                await asyncio.sleep(0.05)
                pool = await rpc(service.port, {"op": "pool_status"})
                if pool["total"] == 4:
                    break
            assert pool["total"] == 4, pool
            status = await rpc(service.port, {"op": "status"})
            assert status["autoscale"]["actions"] >= 1
        finally:
            await service.stop()

    asyncio.run(scenario())
