"""In-process client/server helpers shared by the service tests.

The tests run real asyncio TCP servers on ephemeral loopback ports, but
everything lives in one process and one event loop (`asyncio.run` per
test) — no subprocesses, no sleeps, no port races.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.server import ReservationService, ServiceConfig

__all__ = ["start_service", "rpc_all", "rpc", "reserve_msg", "SMALL"]

#: a calendar small enough to fill deterministically: N=2 servers,
#: horizon = tau * q_slots = 40 time units, r_max = q_slots // 2 = 2
SMALL = dict(n_servers=2, tau=10.0, q_slots=4)


async def start_service(**overrides: Any) -> ReservationService:
    """Boot a service on an ephemeral port; caller must stop it."""
    service = ReservationService.create(ServiceConfig(**overrides))
    await service.start()
    return service


async def rpc_all(port: int, *messages: dict | bytes) -> list[dict]:
    """Open one connection, pipeline all messages, read all responses."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for message in messages:
        if isinstance(message, bytes):
            writer.write(message)
        else:
            writer.write((json.dumps(message) + "\n").encode())
    await writer.drain()
    responses = []
    for _ in messages:
        raw = await reader.readline()
        assert raw, "server closed the connection mid-conversation"
        responses.append(json.loads(raw))
    writer.close()
    return responses


async def rpc(port: int, message: dict | bytes) -> dict:
    """One request, one response."""
    (response,) = await rpc_all(port, message)
    return response


def reserve_msg(rid: int, sr: float, lr: float, nr: int, **extra: Any) -> dict:
    return {"op": "reserve", "rid": rid, "sr": sr, "lr": lr, "nr": nr, **extra}
