"""Wire-protocol validation: framing, field checks, request mapping."""

import json
import math

import pytest

from repro.core.types import Request
from repro.errors import MalformedRequestError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    decode_line,
    encode,
    request_from_payload,
)


def line(message: dict) -> bytes:
    return (json.dumps(message) + "\n").encode()


class TestDecodeLine:
    def test_valid_reserve_round_trips(self):
        message = {"op": "reserve", "rid": 7, "sr": 0.0, "lr": 3600, "nr": 4}
        assert decode_line(line(message)) == message

    def test_every_op_is_decodable(self):
        minimal = {
            "reserve": {"rid": 1, "sr": 0, "lr": 1, "nr": 1},
            "probe": {"ta": 0, "tb": 1},
            "cancel": {"rid": 1},
            "status": {},
            "snapshot": {},
            "shutdown": {},
            "log_tail": {"cursor": 0},
            "add_servers": {"count": 1},
            "drain": {"server": 0},
            "remove": {"server": 0},
            "pool_status": {},
        }
        for op in OPS:
            assert decode_line(line({"op": op, **minimal[op]}))["op"] == op

    @pytest.mark.parametrize(
        "raw",
        [
            b"not json\n",
            b"[1, 2, 3]\n",
            b'"reserve"\n',
            b"\xff\xfe\n",
        ],
    )
    def test_non_object_lines_rejected(self, raw):
        with pytest.raises(ProtocolError):
            decode_line(raw)

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_line(line({"op": "frobnicate"}))

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required field 'nr'"):
            decode_line(line({"op": "reserve", "rid": 1, "sr": 0, "lr": 1}))

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="'rid' must be int"):
            decode_line(line({"op": "reserve", "rid": "x", "sr": 0, "lr": 1, "nr": 1}))

    def test_bool_is_not_a_number(self):
        # bool is a subclass of int; the protocol must not accept it
        with pytest.raises(ProtocolError):
            decode_line(line({"op": "reserve", "rid": True, "sr": 0, "lr": 1, "nr": 1}))

    def test_optional_field_type_checked(self):
        with pytest.raises(ProtocolError, match="'deadline'"):
            decode_line(
                line({"op": "reserve", "rid": 1, "sr": 0, "lr": 1, "nr": 1, "deadline": "soon"})
            )

    def test_optional_field_null_is_absent(self):
        message = {"op": "reserve", "rid": 1, "sr": 0, "lr": 1, "nr": 1, "deadline": None}
        assert decode_line(line(message))["deadline"] is None

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(b" " * (MAX_LINE_BYTES + 1))


class TestEncode:
    def test_one_line_utf8_sorted(self):
        raw = encode({"op": "status", "a": 1})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert raw.index(b'"a"') < raw.index(b'"op"')
        assert decode_line(raw) == {"op": "status", "a": 1}

    def test_nan_refused(self):
        with pytest.raises(ValueError):
            encode({"op": "status", "x": math.nan})


class TestRequestFromPayload:
    def test_qr_defaults_to_sr(self):
        request = request_from_payload({"rid": 1, "sr": 50.0, "lr": 10, "nr": 2})
        assert isinstance(request, Request)
        assert request.qr == request.sr == 50.0

    def test_explicit_qr_makes_advance_reservation(self):
        request = request_from_payload({"rid": 1, "qr": 0, "sr": 100, "lr": 10, "nr": 2})
        assert request.is_advance()

    @pytest.mark.parametrize(
        "payload",
        [
            {"rid": 1, "sr": 0, "lr": -5, "nr": 2},  # non-positive duration
            {"rid": 1, "sr": 0, "lr": 10, "nr": 0},  # non-positive width
            {"rid": 1, "qr": 10, "sr": 0, "lr": 10, "nr": 1},  # starts before submit
            {"rid": 1, "sr": 0, "lr": 10, "nr": 1, "deadline": 5},  # infeasible deadline
        ],
    )
    def test_domain_invalid_maps_to_malformed(self, payload):
        with pytest.raises(MalformedRequestError):
            request_from_payload(payload)
