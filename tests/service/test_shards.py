"""Sharded calendar actors: shard map arithmetic, exactly-once commits,
and the load-bearing property — a K-sharded scheduler and the single
calendar make bit-identical decisions.

The equivalence is exactly ``phase2(merge(shard_candidates)) ==
phase2(single_calendar_candidates)``: each shard runs Phase 1 + the
per-shard Phase-2 prefix over its own servers, the coordinator k-way
merges the per-shard candidate streams with
:func:`repro.core.merge.merge_earliest`, and canonical Phase-2 selection
over the merged stream must pick the same windows and the same servers
as one calendar holding all N servers.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_earliest
from repro.core.types import Request
from repro.facade import CoAllocationScheduler
from repro.service.coordinator import ShardedScheduler
from repro.service.shards import ShardMap, ShardState, fresh_calendar_state


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------


class TestShardMap:
    def test_contiguous_cover_without_overlap(self):
        m = ShardMap(n_servers=10, shards=3)
        assert m.bounds == [(0, 4), (4, 7), (7, 10)]  # first n%k get one extra
        assert sum(m.count(s) for s in range(3)) == 10

    def test_shard_of_matches_bounds(self):
        for n, k in [(1, 1), (5, 2), (10, 3), (16, 4), (7, 7), (64, 5)]:
            m = ShardMap(n, k)
            for server in range(n):
                shard = m.shard_of(server)
                lo, hi = m.bounds[shard]
                assert lo <= server < hi
                assert m.lo(shard) == lo

    def test_out_of_range_server_rejected(self):
        m = ShardMap(4, 2)
        with pytest.raises(ValueError):
            m.shard_of(4)
        with pytest.raises(ValueError):
            m.shard_of(-1)

    def test_more_shards_than_servers_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(n_servers=2, shards=3)
        with pytest.raises(ValueError):
            ShardMap(n_servers=2, shards=0)


# ----------------------------------------------------------------------
# ShardState protocol discipline
# ----------------------------------------------------------------------


def _load(state: ShardState, n: int = 2) -> None:
    response = state.apply(
        {
            "op": "shard_load",
            "lo": 0,
            "state": fresh_calendar_state(0, n, tau=10.0, q_slots=8),
            "hwm": 0,
        }
    )
    assert response["ok"], response


class TestShardState:
    def test_unknown_op_is_an_error_not_a_crash(self):
        state = ShardState()
        response = state.apply({"op": "shard_frobnicate"})
        assert response["ok"] is False

    def test_ops_before_load_are_errors(self):
        state = ShardState()
        response = state.apply({"op": "shard_ladder", "now": 0.0, "nr": 1,
                                "attempts": [[0.0, 10.0]], "hwm": 1})
        assert response["ok"] is False

    def test_commit_is_rid_idempotent(self):
        state = ShardState()
        _load(state)
        commit = {
            "op": "shard_commit",
            "rid": 7,
            "now": 0.0,
            "start": 0.0,
            "end": 10.0,
            "picks": [[0, 0.0]],
            "remnant_uids": [100],
            "hwm": 1,
        }
        first = state.apply(dict(commit))
        assert first["ok"], first
        assert first["committed"] == 1
        replay = state.apply(dict(commit))
        assert replay["ok"]
        assert replay.get("replayed") is True
        # the window was booked exactly once: server 0's idle list is the
        # single remnant [10, inf) under the coordinator-assigned uid
        export = state.apply({"op": "shard_export"})
        assert export["ok"]
        assert export["state"]["periods"][0] == [[10.0, None, 100]]


# ----------------------------------------------------------------------
# merge_earliest: k-way merge over random partitions
# ----------------------------------------------------------------------


@given(
    keys=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=60,
        unique=True,
    ),
    cuts=st.lists(st.integers(min_value=0, max_value=59), max_size=6),
    need=st.integers(min_value=0, max_value=70),
)
@settings(max_examples=150, deadline=None)
def test_merge_earliest_equals_global_sort_for_any_partition(keys, cuts, need):
    """Partition an arbitrary (et, uid) key set into contiguous sorted
    runs at arbitrary cut points: merging the runs must yield exactly
    the ``need``-smallest keys of the whole set, in order."""
    ordered = sorted(keys)
    bounds = sorted({0, len(ordered), *[c for c in cuts if c <= len(ordered)]})
    runs = [
        (ordered[lo:hi], 0)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    merged = merge_earliest(runs, need)
    assert merged == ordered[: min(need, len(ordered))]


# ----------------------------------------------------------------------
# sharded == single-calendar decisions (the tentpole property)
# ----------------------------------------------------------------------


def _ops_strategy() -> st.SearchStrategy:
    reserve = st.fixed_dictionaries(
        {
            "kind": st.just("reserve"),
            "sr_tau": st.integers(min_value=0, max_value=10),
            "lr_tau": st.integers(min_value=1, max_value=5),
            "nr": st.integers(min_value=1, max_value=6),
            "deadline_tau": st.one_of(
                st.none(), st.integers(min_value=1, max_value=14)
            ),
        }
    )
    cancel = st.fixed_dictionaries(
        {"kind": st.just("cancel"), "which": st.integers(min_value=0, max_value=30)}
    )
    advance = st.fixed_dictionaries(
        {"kind": st.just("advance"), "by_tau": st.integers(min_value=0, max_value=3)}
    )
    return st.lists(st.one_of(reserve, cancel, advance), max_size=20)


def _outcome_key(outcome):
    if outcome.allocation is not None:
        a = outcome.allocation
        return (
            "ok",
            a.start,
            a.end,
            a.attempts,
            a.delay,
            tuple(sorted(a.servers)),
        )
    return ("reject", outcome.attempts, outcome.reason)


@given(
    tau=st.sampled_from((0.3, 1.0, 10.0)),
    n_servers=st.integers(min_value=4, max_value=9),
    shards=st.integers(min_value=2, max_value=4),
    ops=_ops_strategy(),
)
@settings(max_examples=60, deadline=None)
def test_sharded_decisions_equal_single_calendar(tau, n_servers, shards, ops):
    q_slots = 12
    single = CoAllocationScheduler(n_servers=n_servers, tau=tau, q_slots=q_slots)
    sharded = ShardedScheduler(
        n_servers=n_servers, tau=tau, q_slots=q_slots, shards=min(shards, n_servers)
    )
    issued: list[int] = []
    rid = 0
    for op in ops:
        if op["kind"] == "reserve":
            now = single.calendar.now
            sr = max(now, (single.calendar.slot_of(now) + op["sr_tau"]) * tau)
            lr = op["lr_tau"] * tau
            deadline = (
                None
                if op["deadline_tau"] is None
                else sr + lr + (op["deadline_tau"] - 1) * tau  # may be tight
            )
            request = Request(
                rid=rid, qr=now, sr=sr, lr=lr, nr=op["nr"], deadline=deadline
            )
            a = single.schedule_detailed(request)
            b = sharded.schedule_detailed(request)
            assert _outcome_key(a) == _outcome_key(b)
            if a.allocation is not None:
                issued.append(rid)
            rid += 1
        elif op["kind"] == "cancel" and issued:
            victim = issued.pop(op["which"] % len(issued))
            single.cancel(victim)
            sharded.cancel(victim)
        elif op["kind"] == "advance":
            to = single.calendar.now + op["by_tau"] * tau
            single.advance(to)
            sharded.advance(to)
        assert sharded.now == single.calendar.now
    # the final calendars answer range queries identically
    ta = single.calendar.now
    tb = ta + 2 * tau
    lhs = [(p.server, p.st, p.et) for p in single.range_search(ta, tb)]
    rhs = [(p.server, p.st, p.et) for p in sharded.range_search(ta, tb)]
    assert lhs == rhs


# ----------------------------------------------------------------------
# corpus replay through the real K=4 sharded TCP service
# ----------------------------------------------------------------------

_CORPUS = Path(__file__).parents[1] / "verify" / "corpus"


def _k4_traces() -> list[Path]:
    # K=4 needs at least 4 servers to shard
    return [
        path
        for path in sorted(_CORPUS.glob("*.json"))
        if json.loads(path.read_text())["config"]["n_servers"] >= 4
    ]


@pytest.mark.slow
@pytest.mark.parametrize("path", _k4_traces(), ids=lambda p: p.stem)
def test_corpus_replays_through_k4_sharded_service(path: Path) -> None:
    """Every minimized divergence-regression trace, replayed over TCP
    against a ``--shards 4`` service, must get the same verdict on every
    op as the in-process reference scheduler."""
    from repro.verify.chaos import _normalize, _oracle_verdict, _wire
    from repro.verify.differ import load_trace
    from repro.verify.oracle import ReferenceScheduler

    from .harness import start_service, rpc

    stream = load_trace(str(path))
    ops = [op for op in stream.ops if op["kind"] != "restore"]

    async def scenario():
        service = await start_service(shards=4, **stream.config)
        verdicts = []
        for op in ops:
            verdicts.append(_normalize(op, await rpc(service.port, _wire(op))))
        status = await rpc(service.port, {"op": "status"})
        await service.stop()
        return verdicts, status

    verdicts, status = asyncio.run(scenario())
    assert status["shards"]["count"] == 4
    oracle = ReferenceScheduler(**stream.config)
    for op, verdict in zip(ops, verdicts):
        assert _oracle_verdict(oracle, op) == verdict, op
