"""Loadgen: shadow-ledger validation and an in-process end-to-end replay."""

import asyncio

import pytest

from repro.service.loadgen import (
    LoadgenConfig,
    OpenLoopPacer,
    ShadowLedger,
    request_source,
    run_loadgen,
)
from repro.service.server import accepted_checksum

from .harness import start_service


class TestShadowLedger:
    def test_clean_bookings_pass(self):
        ledger = ShadowLedger()
        ledger.record(1, 0.0, 0.0, 10.0, [0, 1])
        ledger.record(2, 0.0, 10.0, 20.0, [0, 1])  # back-to-back is legal
        ledger.record(3, 0.0, 0.0, 10.0, [2])
        assert ledger.violations == []

    def test_double_booking_detected(self):
        ledger = ShadowLedger()
        ledger.record(1, 0.0, 0.0, 10.0, [0])
        ledger.record(2, 0.0, 5.0, 15.0, [0])
        assert [v["kind"] for v in ledger.violations] == ["double_booking"]
        assert "rid 1" in ledger.violations[0]["detail"]

    def test_overlap_on_any_server_is_flagged(self):
        ledger = ShadowLedger()
        ledger.record(1, 0.0, 0.0, 10.0, [0, 3])
        ledger.record(2, 0.0, 2.0, 4.0, [1, 3])  # clashes only on server 3
        assert [v["kind"] for v in ledger.violations] == ["double_booking"]

    def test_early_start_detected(self):
        ledger = ShadowLedger()
        ledger.record(1, sr=50.0, start=40.0, end=60.0, servers=[0])
        assert [v["kind"] for v in ledger.violations] == ["early_start"]

    def test_duplicate_accept_detected(self):
        ledger = ShadowLedger()
        ledger.record(1, 0.0, 0.0, 10.0, [0])
        ledger.record(1, 0.0, 20.0, 30.0, [1])
        assert [v["kind"] for v in ledger.violations] == ["duplicate_accept"]

    def test_checksum_matches_server_side_format(self):
        ledger = ShadowLedger()
        ledger.record(3, 0.0, 0.0, 10.0, [2, 0])
        ledger.record(1, 5.0, 5.0, 8.0, [1])
        decided = {
            1: {"ok": True, "start": 5.0, "end": 8.0, "servers": [1]},
            2: {"ok": False, "error": {"code": "REJECTED"}},  # rejects don't count
            3: {"ok": True, "start": 0.0, "end": 10.0, "servers": [0, 2]},
        }
        assert ledger.checksum() == accepted_checksum(decided)

    def test_dump_load_round_trip(self, tmp_path):
        ledger = ShadowLedger()
        ledger.record(1, 0.0, 0.0, 10.0, [0, 1])
        ledger.record(2, 0.0, 10.0, 20.0, [0])
        path = tmp_path / "ledger.json"
        ledger.dump(str(path))
        reloaded = ShadowLedger.load(str(path))
        assert reloaded.checksum() == ledger.checksum()
        # the reloaded book still detects conflicts with preloaded entries
        reloaded.record(3, 0.0, 5.0, 15.0, [1])
        assert [v["kind"] for v in reloaded.violations] == ["double_booking"]


class TestOpenLoopPacer:
    def test_cumulative_schedule_bounds_total_drift(self):
        """10k sends where every sleep overshoots by 30% of the pacing
        interval (asyncio.sleep never undersleeps, and often overshoots).
        A relative sleep-1/rate pacer would finish ~3000 intervals late;
        the cumulative schedule repays each overshoot on the next send,
        so the replay's total wall-time error stays under one interval."""
        rate = 100.0
        interval = 1.0 / rate
        overshoot = 0.3 * interval
        clock = [0.0]
        pacer = OpenLoopPacer(rate, clock=lambda: clock[0])
        n = 10_000
        for _ in range(n):
            delay = pacer.delay()
            if delay > 0:
                clock[0] += delay + overshoot
            pacer.mark_sent()
        assert abs(clock[0] - n / rate) < interval

    def test_unpaced_run_never_sleeps(self):
        pacer = OpenLoopPacer(0.0)
        for _ in range(100):
            assert pacer.delay() == 0.0
            pacer.mark_sent()

    def test_anchor_survives_a_reconnect_stall(self):
        clock = [5.0]
        pacer = OpenLoopPacer(10.0, clock=lambda: clock[0])
        assert pacer.delay() == 0.0  # the first send is immediate
        pacer.mark_sent()
        clock[0] += 3.0  # a long reconnect stall: 30 sends behind schedule
        for _ in range(30):
            assert pacer.delay() == 0.0  # catch up, don't re-anchor
            pacer.mark_sent()
        assert pacer.delay() > 0.0  # caught up: pacing resumes


class TestRequestSource:
    def test_offset_and_limit_slice_the_stream(self):
        base = LoadgenConfig(workload="KTH", jobs=50, seed=7)
        full = [r.rid for r in request_source(base)]
        assert len(full) == 50
        sliced = LoadgenConfig(workload="KTH", jobs=50, seed=7, offset=10, limit=5)
        assert [r.rid for r in request_source(sliced)] == full[10:15]

    def test_same_seed_same_stream(self):
        a = [(r.rid, r.qr, r.lr, r.nr) for r in request_source(LoadgenConfig(jobs=30))]
        b = [(r.rid, r.qr, r.lr, r.nr) for r in request_source(LoadgenConfig(jobs=30))]
        assert a == b

    def test_swf_source(self, tmp_path):
        from repro.cli import main

        swf = tmp_path / "w.swf"
        assert main(["generate", "--jobs", "40", "--out", str(swf)]) == 0
        config = LoadgenConfig(swf=str(swf), limit=25)
        requests = list(request_source(config))
        assert len(requests) == 25


def test_replay_end_to_end_with_zero_violations(tmp_path):
    """150 synthetic requests over real TCP: every response validated
    against the shadow ledger, client and server checksums agree."""
    out = tmp_path / "report.json"

    async def scenario():
        service = await start_service(n_servers=64, tau=900.0, q_slots=96)
        config = LoadgenConfig(
            port=service.port,
            workload="KTH",
            jobs=150,
            seed=1,
            window=16,
            out=str(out),
            shutdown=True,
        )
        report = await run_loadgen(config)
        await service.wait_stopped()  # the shutdown op stopped the server
        return report

    report = asyncio.run(scenario())
    assert report["completed"] == report["requests"] == 150
    assert report["violations_total"] == 0
    assert report["accepted"] > 0
    assert report["accepted"] + report["rejected"] == 150
    assert report["server_status"]["accepted_checksum"] == report["accepted_checksum"]
    assert report["server_shutdown"]["accepted_checksum"] == report["accepted_checksum"]
    assert report["latency_ms"]["count"] == 150
    assert out.exists()


def test_replay_flags_a_corrupted_server(monkeypatch):
    """If the server lies (hands out an overlapping window), the shadow
    ledger catches it — the validation is not trusting server state."""
    from repro.service.server import ReservationService

    original = ReservationService._actor_apply_reserve

    async def corrupted(self, message):
        response = await original(self, message)
        if response.get("ok") and message["rid"] % 2 == 1:
            response = dict(response, servers=[0])  # herd everyone onto server 0
        return response

    async def scenario():
        monkeypatch.setattr(ReservationService, "_actor_apply_reserve", corrupted)
        service = await start_service(n_servers=8, tau=900.0, q_slots=96)
        config = LoadgenConfig(port=service.port, workload="KTH", jobs=40, seed=3)
        report = await run_loadgen(config)
        await service.stop()
        return report

    report = asyncio.run(scenario())
    assert report["violations_total"] > 0
    assert any(v["kind"] == "double_booking" for v in report["violations"])


def test_http_transport_matches_tcp_checksum(tmp_path):
    """The same replay through the HTTP front door (an in-process real
    Gateway) and through raw TCP yields the same accepted checksum and
    zero violations — the transport cannot change decisions."""
    from repro.gateway.app import Gateway, GatewayConfig

    async def tcp_run():
        service = await start_service(n_servers=16, tau=900.0, q_slots=96)
        report = await run_loadgen(
            LoadgenConfig(port=service.port, workload="KTH", jobs=120, seed=5)
        )
        await service.stop()
        return report

    async def http_run():
        service = await start_service(n_servers=16, tau=900.0, q_slots=96)
        gateway = Gateway(
            GatewayConfig(backend_port=service.port, rate=1e6, burst=1e6)
        )
        await gateway.start()
        report = await run_loadgen(
            LoadgenConfig(
                port=gateway.port, workload="KTH", jobs=120, seed=5,
                transport="http",
            )
        )
        await gateway.stop()
        await service.stop()
        return report

    via_tcp = asyncio.run(tcp_run())
    via_http = asyncio.run(http_run())
    assert via_http["completed"] == via_tcp["completed"] == 120
    assert via_http["violations_total"] == via_tcp["violations_total"] == 0
    assert via_http["accepted_checksum"] == via_tcp["accepted_checksum"]
    assert via_http["server_status"]["accepted_checksum"] == via_tcp["accepted_checksum"]
    assert via_http["config"]["transport"] == "http"
