"""End-to-end TCP tests of the reservation server (one event loop each)."""

import asyncio
import json

from repro.service.server import accepted_checksum

from .harness import SMALL, reserve_msg, rpc, rpc_all, start_service


def run(coro):
    return asyncio.run(coro)


def test_reserve_probe_cancel_roundtrip():
    async def scenario():
        service = await start_service(n_servers=4, tau=10.0, q_slots=8)
        port = service.port

        accepted = await rpc(port, reserve_msg(1, 0.0, 10.0, 2))
        assert accepted["ok"] and accepted["op"] == "reserve" and accepted["rid"] == 1
        assert accepted["start"] == 0.0 and accepted["end"] == 10.0
        assert len(accepted["servers"]) == 2 and accepted["attempts"] == 1

        probe = await rpc(port, {"op": "probe", "ta": 0.0, "tb": 10.0})
        assert probe["ok"] and probe["count"] == 2  # the two uncommitted servers
        for server, st, et in probe["periods"]:
            assert st <= 0.0 and (et is None or et >= 10.0)
            assert server not in accepted["servers"]

        cancelled = await rpc(port, {"op": "cancel", "rid": 1})
        assert cancelled["ok"]
        again = await rpc(port, {"op": "cancel", "rid": 1})
        assert not again["ok"]
        assert again["error"]["code"] == "NOT_FOUND" and again["error"]["exit_code"] == 5

        await service.stop()

    run(scenario())


def test_duplicate_rid_replays_original_verdict():
    async def scenario():
        service = await start_service(n_servers=4, tau=10.0, q_slots=8)
        first = await rpc(service.port, reserve_msg(9, 0.0, 10.0, 1))
        second = await rpc(service.port, reserve_msg(9, 0.0, 10.0, 1))
        assert first["ok"] and second["ok"]
        assert second["replayed"] is True and "replayed" not in first
        assert (second["start"], second["end"], second["servers"]) == (
            first["start"],
            first["end"],
            first["servers"],
        )
        assert service.metrics.replayed == 1
        await service.stop()

    run(scenario())


def test_rejected_and_malformed_are_distinct_codes():
    async def scenario():
        service = await start_service(**SMALL)
        port = service.port

        fill = await rpc(port, reserve_msg(1, 0.0, 40.0, 2))  # entire horizon
        assert fill["ok"]

        rejected = await rpc(port, reserve_msg(2, 0.0, 40.0, 2))
        assert not rejected["ok"]
        error = rejected["error"]
        assert error["code"] == "REJECTED" and error["exit_code"] == 3
        assert error["attempts"] >= 1 and error["reason"]

        malformed = await rpc(port, reserve_msg(3, 0.0, -1.0, 2))
        assert not malformed["ok"]
        assert malformed["error"]["code"] == "MALFORMED"
        assert malformed["error"]["exit_code"] == 2

        await service.stop()

    run(scenario())


def test_bad_lines_answered_without_poisoning_the_connection():
    async def scenario():
        service = await start_service(n_servers=2, tau=10.0, q_slots=8)
        garbage, unknown, status = await rpc_all(
            service.port,
            b"this is not json\n",
            {"op": "frobnicate"},
            {"op": "status"},
        )
        assert garbage["error"]["code"] == "MALFORMED"
        assert unknown["error"]["code"] == "MALFORMED"
        assert status["ok"] and status["op"] == "status"
        assert service.metrics.malformed == 2
        await service.stop()

    run(scenario())


def test_pipelined_responses_come_back_fifo():
    async def scenario():
        service = await start_service(n_servers=16, tau=10.0, q_slots=8, max_batch=4)
        messages = [reserve_msg(rid, 0.0, 10.0, 1, seq=rid * 7) for rid in range(12)]
        responses = await rpc_all(service.port, *messages)
        assert [r["rid"] for r in responses] == list(range(12))
        assert [r["seq"] for r in responses] == [rid * 7 for rid in range(12)]
        assert all(r["ok"] for r in responses)
        # micro-batching happened but never exceeded its bound
        assert service.metrics.max_batch <= 4
        await service.stop()

    run(scenario())


def test_virtual_clock_advances_from_request_qr_only():
    async def scenario():
        service = await start_service(n_servers=4, tau=10.0, q_slots=8)
        await rpc(service.port, reserve_msg(1, 30.0, 10.0, 1, qr=30.0))
        status = await rpc(service.port, {"op": "status"})
        assert status["now"] == 30.0  # wall clock never moved it
        # an out-of-order (older qr) request does not rewind the clock
        late = await rpc(service.port, reserve_msg(2, 35.0, 5.0, 1, qr=20.0))
        assert late["ok"]
        status = await rpc(service.port, {"op": "status"})
        assert status["now"] == 30.0
        await service.stop()

    run(scenario())


def test_status_reports_checksum_and_telemetry():
    async def scenario():
        service = await start_service(n_servers=4, tau=10.0, q_slots=8)
        await rpc(service.port, reserve_msg(1, 0.0, 10.0, 2))
        status = await rpc(service.port, {"op": "status"})
        assert status["protocol"] == 1
        assert status["decided"] == 1 and status["active_allocations"] == 1
        assert status["accepted_checksum"] == accepted_checksum(service._decided)
        assert len(status["accepted_checksum"]) == 16
        assert status["admission"]["depth"] == 0
        metrics = status["metrics"]
        assert metrics["ops"]["reserve"] == 1
        assert metrics["accepted"] == 1
        assert metrics["service_latency"]["count"] >= 1
        assert metrics["queue_wait"]["count"] >= 1
        await service.stop()

    run(scenario())


def test_shutdown_drains_then_refuses_and_snapshots(tmp_path):
    snapshot = tmp_path / "state.snap"

    async def scenario():
        service = await start_service(
            n_servers=2, tau=10.0, q_slots=8, snapshot_path=str(snapshot)
        )
        port = service.port
        accepted = await rpc(port, reserve_msg(1, 0.0, 10.0, 1))
        assert accepted["ok"]
        down = await rpc(port, {"op": "shutdown"})
        assert down["ok"] and down["snapshot"]["path"] == str(snapshot)
        assert down["accepted_checksum"] == accepted_checksum(service._decided)
        await service.wait_stopped()
        assert snapshot.exists()
        # the listener is gone: new connections fail or close immediately
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
        except OSError:
            return
        writer.write(json.dumps({"op": "status"}).encode() + b"\n")
        try:
            await writer.drain()
            raw = await reader.readline()
        except OSError:
            return
        assert raw == b""

    run(scenario())


def test_restart_from_snapshot_resumes_reservations(tmp_path):
    snapshot = tmp_path / "state.snap"
    config = dict(SMALL, snapshot_path=str(snapshot))

    async def first_life():
        service = await start_service(**config)
        accepted = await rpc(service.port, reserve_msg(1, 0.0, 40.0, 2))
        assert accepted["ok"]
        down = await rpc(service.port, {"op": "shutdown"})
        await service.wait_stopped()
        return down["accepted_checksum"]

    async def second_life(checksum):
        service = await start_service(**config)
        assert service.restored
        status = await rpc(service.port, {"op": "status"})
        assert status["restored"] and status["accepted_checksum"] == checksum

        # conflicts with the pre-snapshot reservation -> rejected
        conflicting = await rpc(service.port, reserve_msg(2, 0.0, 40.0, 2))
        assert not conflicting["ok"]
        assert conflicting["error"]["code"] == "REJECTED"

        # resending a pre-snapshot rid replays the original verdict
        replayed = await rpc(service.port, reserve_msg(1, 0.0, 40.0, 2))
        assert replayed["ok"] and replayed["replayed"] is True

        # cancelling the restored reservation frees the calendar again
        assert (await rpc(service.port, {"op": "cancel", "rid": 1}))["ok"]
        retry = await rpc(service.port, reserve_msg(3, 0.0, 40.0, 2))
        assert retry["ok"]
        await service.stop()

    checksum = run(first_life())
    run(second_life(checksum))
