"""ReservoirWindow nearest-rank percentile semantics and edge cases."""

import pytest

from repro.service.metrics import LatencyWindow, ReservoirWindow, ServiceMetrics


class TestReservoirWindowPercentile:
    def test_empty_window_is_zero_not_an_index_error(self):
        window = ReservoirWindow()
        for p in (0, 50, 100):
            assert window.percentile(p) == 0.0

    def test_single_sample_answers_the_lone_sample_at_every_p(self):
        window = ReservoirWindow()
        window.observe(0.25)
        for p in (0, 1, 50, 99, 100):
            assert window.percentile(p) == pytest.approx(250.0)

    def test_nearest_rank_at_p0_p50_p100(self):
        window = ReservoirWindow()
        for seconds in (0.004, 0.001, 0.003, 0.002):  # sorted: 1, 2, 3, 4 ms
            window.observe(seconds)
        assert window.percentile(0) == pytest.approx(1.0)  # rank clamps to 1: min
        assert window.percentile(50) == pytest.approx(2.0)  # ceil(0.5 * 4) = rank 2
        assert window.percentile(100) == pytest.approx(4.0)  # rank n: max

    def test_nearest_rank_odd_window_median(self):
        window = ReservoirWindow()
        for seconds in (0.005, 0.001, 0.003, 0.002, 0.004):
            window.observe(seconds)
        assert window.percentile(50) == pytest.approx(3.0)  # ceil(2.5) = rank 3

    def test_out_of_range_p_rejected(self):
        window = ReservoirWindow()
        window.observe(0.001)
        with pytest.raises(ValueError):
            window.percentile(-1)
        with pytest.raises(ValueError):
            window.percentile(101)

    def test_window_is_bounded_but_count_is_total(self):
        window = ReservoirWindow(maxlen=4)
        for i in range(100):
            window.observe(float(i))
        assert window.count == 100
        # only the last 4 samples remain: min is 96 s -> 96000 ms
        assert window.percentile(0) == pytest.approx(96_000.0)
        assert window.percentile(100) == pytest.approx(99_000.0)

    def test_latency_window_name_still_works(self):
        assert LatencyWindow is ReservoirWindow


def test_service_metrics_summary_on_empty_windows():
    summary = ServiceMetrics().summary()
    assert summary["service_latency"]["p50_ms"] == 0.0
    assert summary["queue_wait"]["p99_ms"] == 0.0
    assert summary["service_latency"]["mean_ms"] == 0.0
