"""Backpressure: bounded admission, BUSY + retry_after, overload bursts."""

import asyncio
import json

import pytest

from repro.errors import BusyError
from repro.service.admission import AdmissionController
from repro.service.protocol import encode

from .harness import reserve_msg, start_service


class TestAdmissionController:
    def test_depth_bound_sheds(self):
        ctrl = AdmissionController(max_depth=3, max_delay=1e9)
        for _ in range(3):
            ctrl.admit()
        with pytest.raises(BusyError) as excinfo:
            ctrl.admit()
        assert ctrl.depth == 3 and ctrl.shed == 1
        assert excinfo.value.payload()["retry_after"] > 0

    def test_delay_budget_sheds_before_depth(self):
        # 1ms EWMA x 3 queued = 3ms expected wait > 2ms budget
        ctrl = AdmissionController(max_depth=1000, max_delay=0.002, initial_service=0.001)
        for _ in range(3):
            ctrl.admit()
        with pytest.raises(BusyError, match="delay budget") as excinfo:
            ctrl.admit()
        assert excinfo.value.retry_after >= ctrl.expected_wait() - 1e-9

    def test_release_folds_service_time_into_ewma(self):
        ctrl = AdmissionController(max_depth=10, ewma_alpha=0.5, initial_service=0.0)
        ctrl.admit()
        ctrl.release(0.010)
        assert ctrl.service_ewma == pytest.approx(0.005)
        ctrl.admit()
        ctrl.release(0.010)
        assert ctrl.service_ewma == pytest.approx(0.0075)

    def test_release_without_admit_is_a_bug(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_shed_burst_does_not_poison_the_service_ewma(self):
        """Regression: a BUSY-shed request never entered service, so it
        must not be folded into the service-time average — a 10x shed
        burst used to drag the EWMA (and with it retry_after and the
        delay-budget gate) toward garbage."""
        ctrl = AdmissionController(max_depth=4, max_delay=1e9, ewma_alpha=0.3)
        # warm the EWMA with real served requests
        for _ in range(5):
            ctrl.admit()
            ctrl.release(0.010, queue_delay=0.002)
        service_before = ctrl.service_ewma
        delay_before = ctrl.queue_delay_ewma
        # fill the queue, then a 10x shed burst
        for _ in range(4):
            ctrl.admit()
        sheds = 0
        for _ in range(40):
            with pytest.raises(BusyError):
                ctrl.admit()
            sheds += 1
        assert sheds == 40
        assert ctrl.service_ewma == service_before
        assert ctrl.queue_delay_ewma == delay_before
        assert ctrl.shed_rate > 0.9  # the overload is visible to the autoscaler
        # served traffic afterwards still folds in normally
        ctrl.release(0.010, queue_delay=0.002)
        assert ctrl.service_ewma != service_before

    def test_telemetry_surfaces_autoscaler_signals(self):
        ctrl = AdmissionController(max_depth=2, max_delay=1e9, ewma_alpha=0.5)
        ctrl.admit()
        ctrl.release(0.020, queue_delay=0.010)
        telemetry = ctrl.telemetry()
        assert telemetry["queue_delay_ewma"] == pytest.approx(0.005)
        assert telemetry["admitted"] == 1
        assert telemetry["shed"] == 0
        assert 0.0 <= telemetry["shed_rate"] < 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": 0},
            {"max_delay": 0.0},
            {"ewma_alpha": 1.5},
            {"retry_floor": 0.0},
            {"retry_jitter": -0.1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)

    def test_retry_after_floored_when_ewma_is_cold(self):
        # a brand-new server with zero service history: the drain
        # estimate is exactly 0.0 and must not be answered verbatim
        ctrl = AdmissionController(max_depth=8, initial_service=0.0)
        assert ctrl.expected_wait() == 0.0
        assert ctrl.retry_after() >= ctrl.retry_floor > 0.0

    def test_shed_burst_never_yields_zero_retry_after(self):
        ctrl = AdmissionController(
            max_depth=4, max_delay=1e9, initial_service=0.0, jitter_seed=7
        )
        for _ in range(4):
            ctrl.admit()
        retry_afters = []
        for _ in range(200):
            with pytest.raises(BusyError) as excinfo:
                ctrl.admit()
            retry_afters.append(excinfo.value.retry_after)
        assert min(retry_afters) >= ctrl.retry_floor
        # jitter spreads the burst instead of answering one constant
        assert len(set(retry_afters)) > 1

    def test_retry_after_covers_the_drain_estimate(self):
        ctrl = AdmissionController(max_depth=1000, max_delay=1e9, initial_service=0.5)
        for _ in range(10):
            ctrl.admit()
        assert ctrl.retry_after() >= ctrl.expected_wait()

    def test_jitter_is_seed_deterministic(self):
        a = AdmissionController(jitter_seed=42)
        b = AdmissionController(jitter_seed=42)
        assert [a.retry_after() for _ in range(5)] == [b.retry_after() for _ in range(5)]


def test_slow_consumer_burst_sheds_and_bounds_queue():
    """10x overload against a stalled actor: depth stays at the bound,
    everything beyond it gets a typed BUSY with retry_after."""
    bound = 8
    burst = 10 * bound

    async def scenario():
        service = await start_service(max_queue=bound, max_delay=1e9)
        # the slowest possible consumer: stop the actor entirely
        service._actor_task.cancel()
        try:
            await service._actor_task
        except asyncio.CancelledError:
            pass

        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in range(burst)]
        for i, future in enumerate(futures):
            service._ingest(encode(reserve_msg(i, 0.0, 5.0, 1)), future)

        # the queue never exceeds its configured bound
        assert service._queue.qsize() == bound
        assert service.admission.depth == bound

        shed = [f for f in futures if f.done()]
        assert len(shed) == burst - bound
        for future in shed:
            response = future.result()
            error = response["error"]
            assert response["ok"] is False
            assert error["code"] == "BUSY" and error["exit_code"] == 6
            assert error["retry_after"] > 0
        assert service.admission.shed == burst - bound
        assert service.metrics.shed == burst - bound

        # restart the consumer: the admitted prefix is served FIFO
        service._actor_task = asyncio.create_task(service._actor_loop())
        served = await asyncio.gather(*futures[:bound])
        assert [r["rid"] for r in served] == list(range(bound))
        assert all(r["ok"] for r in served)
        assert service.admission.depth == 0
        await service.stop()

    asyncio.run(scenario())


def test_busy_over_tcp_when_delay_budget_is_exhausted():
    """End to end: a server whose delay budget is already blown sheds on
    the wire.  The actor is stalled while a pipelined burst is ingested,
    so the outcome is exact, not a race: with a 1ns budget and a 0.5ms
    service-time prior, the first request is admitted (expected wait 0)
    and every later one must get BUSY."""

    async def scenario():
        service = await start_service(max_queue=4, max_delay=1e-9)
        service._actor_task.cancel()
        try:
            await service._actor_task
        except asyncio.CancelledError:
            pass

        reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
        n = 40
        for i in range(n):
            writer.write(encode(reserve_msg(i, 0.0, 1.0, 1)))
        await writer.drain()

        # yield to the connection handler until the whole burst has been
        # admitted or shed (no wall-clock: the data is already buffered,
        # so this settles in a bounded number of loop turns)
        for _ in range(10_000):
            if service.admission.depth + service.admission.shed >= n:
                break
            await asyncio.sleep(0)
        assert service.admission.depth + service.admission.shed == n

        # restart the consumer: the single admitted request gets served
        service._actor_task = asyncio.create_task(service._actor_loop())
        responses = []
        for _ in range(n):
            raw = await reader.readline()
            assert raw
            responses.append(json.loads(raw))
        writer.close()

        busy = [r for r in responses if (r.get("error") or {}).get("code") == "BUSY"]
        served = [r for r in responses if r.get("ok")]
        assert len(responses) == n  # every request gets exactly one response
        assert len(busy) == n - 1
        assert [r["rid"] for r in served] == [0]
        for response in busy:
            assert response["error"]["retry_after"] > 0
        assert service.admission.shed == n - 1
        await service.stop()

    asyncio.run(scenario())
