"""Decision log: framing, rotation, recovery, compaction, and the
multi-segment == single-segment replay regression."""

import asyncio

from repro.service.declog import DecisionLog

from .harness import SMALL, reserve_msg, rpc, rpc_all, start_service


def _fill(log: DecisionLog, n: int) -> None:
    for i in range(1, n + 1):
        kind = "cancel" if i % 3 == 0 else "reserve"
        message = {"rid": i} if kind == "cancel" else {"rid": i, "sr": float(i), "lr": 1.0, "nr": 1}
        verdict = {"ok": i % 2 == 0}
        assert log.append(kind, message, verdict) == i


class TestDecisionLog:
    def test_append_tail_round_trip(self, tmp_path):
        log = DecisionLog(tmp_path)
        _fill(log, 10)
        records = log.tail(0, 100)
        assert [r["hwm"] for r in records] == list(range(1, 11))
        assert log.tail(7, 100) == records[7:]
        assert log.tail(10, 100) == []
        assert log.tail(3, 2) == records[3:5]

    def test_recovery_reads_every_segment(self, tmp_path):
        # tiny segments force rotation: recovery must stitch them back
        log = DecisionLog(tmp_path, segment_bytes=256)
        _fill(log, 30)
        assert len(list(tmp_path.glob("seg-*.log"))) > 1
        log.close()
        reopened = DecisionLog(tmp_path, segment_bytes=256)
        assert reopened.hwm == 30
        assert reopened.tail(0, 100) == log.tail(0, 100)

    def test_segment_size_never_changes_the_records(self, tmp_path):
        """Regression: a log rotated across many segments replays exactly
        like one big segment — rotation is invisible to followers."""
        many = DecisionLog(tmp_path / "many", segment_bytes=128)
        one = DecisionLog(tmp_path / "one", segment_bytes=1 << 30)
        _fill(many, 40)
        _fill(one, 40)
        many.close()
        one.close()
        many_r = DecisionLog(tmp_path / "many", segment_bytes=128)
        one_r = DecisionLog(tmp_path / "one")
        assert many_r.tail(0, 1000) == one_r.tail(0, 1000)
        assert many_r.hwm == one_r.hwm == 40

    def test_torn_tail_is_truncated_on_recovery(self, tmp_path):
        log = DecisionLog(tmp_path)
        _fill(log, 8)
        log.close()
        seg = sorted(tmp_path.glob("seg-*.log"))[-1]
        data = seg.read_bytes()
        seg.write_bytes(data[:-3])  # the last record dies mid-write
        reopened = DecisionLog(tmp_path)
        assert reopened.hwm == 7
        # appending after the truncation reuses hwm 8 cleanly
        assert reopened.append("cancel", {"rid": 99}, {"ok": False}) == 8
        assert reopened.tail(7, 10)[0]["message"] == {"rid": 99}

    def test_garbage_tail_is_truncated_on_recovery(self, tmp_path):
        log = DecisionLog(tmp_path)
        _fill(log, 5)
        log.close()
        seg = sorted(tmp_path.glob("seg-*.log"))[-1]
        with seg.open("ab") as fh:
            fh.write(b"\x00\x00\x01\x00" + b"not json" * 32)
        reopened = DecisionLog(tmp_path)
        assert reopened.hwm == 5
        assert len(reopened.tail(0, 100)) == 5

    def test_align_truncates_when_log_is_ahead_of_snapshot(self, tmp_path):
        log = DecisionLog(tmp_path)
        _fill(log, 10)
        log.align(6)  # restore from a snapshot taken at hwm 6
        assert log.hwm == 6
        assert [r["hwm"] for r in log.tail(0, 100)] == list(range(1, 7))

    def test_align_resets_when_log_is_behind_snapshot(self, tmp_path):
        log = DecisionLog(tmp_path)
        _fill(log, 3)
        log.align(50)  # the log lost history the snapshot already covers
        assert log.hwm == 50
        assert log.base == 50
        assert log.tail(0, 100) == []
        assert log.append("cancel", {"rid": 1}, {"ok": True}) == 51

    def test_compact_respects_slowest_follower(self, tmp_path):
        log = DecisionLog(tmp_path, segment_bytes=256)
        _fill(log, 30)
        before = len(list(tmp_path.glob("seg-*.log")))
        log.register_cursor("slow", 4)
        log.compact(25)  # snapshot covers 25, but a follower is at 4
        assert log.base <= 4
        assert log.tail(4, 100)[0]["hwm"] == 5
        log.forget_follower("slow")
        dropped = log.compact(25)
        assert dropped > 0
        assert len(list(tmp_path.glob("seg-*.log"))) < before
        # records past the compaction point survive, earlier ones are gone
        assert [r["hwm"] for r in log.tail(log.base, 100)] == list(
            range(log.base + 1, 31)
        )

    def test_dead_follower_cursor_expires_and_unpins_compaction(self, tmp_path):
        """A follower that stops polling must not hold segments forever:
        its cursor expires after cursor_ttl and compaction proceeds."""
        now = [0.0]
        log = DecisionLog(
            tmp_path, segment_bytes=256, cursor_ttl=60.0, clock=lambda: now[0]
        )
        _fill(log, 30)
        log.register_cursor("dead", 4)
        log.compact(25)  # a live cursor pins records 5.. in place...
        assert log.base <= 4
        assert log.tail(4, 1)[0]["hwm"] == 5
        assert log.summary()["followers"] == {"dead": 4}
        now[0] = 61.0  # ...but a TTL of silence forgets it
        assert log.compact(25) > 0
        assert log.base > 4
        assert log.summary()["followers"] == {}
        # a follower that keeps polling keeps its hold
        log2 = DecisionLog(
            tmp_path / "live", segment_bytes=256, cursor_ttl=60.0, clock=lambda: now[0]
        )
        _fill(log2, 30)
        log2.register_cursor("live", 4)
        now[0] += 59.0
        log2.register_cursor("live", 4)  # re-report inside the TTL
        now[0] += 59.0
        log2.compact(25)
        assert log2.base <= 4
        assert log2.tail(4, 1)[0]["hwm"] == 5

    def test_compact_never_drops_the_active_segment(self, tmp_path):
        log = DecisionLog(tmp_path)
        _fill(log, 10)
        log.compact(10)
        assert len(list(tmp_path.glob("seg-*.log"))) == 1
        assert log.append("cancel", {"rid": 11}, {"ok": True}) == 11


class TestServerLogIntegration:
    def test_log_tail_op_streams_decisions(self, tmp_path):
        async def scenario():
            service = await start_service(**SMALL, log_dir=str(tmp_path / "log"))
            port = service.port
            await rpc_all(
                port,
                reserve_msg(1, 0.0, 10.0, 1),
                reserve_msg(2, 0.0, 10.0, 1),
                {"op": "cancel", "rid": 1},
                {"op": "cancel", "rid": 77},  # NOT_FOUND cancels are logged too
                reserve_msg(1, 0.0, 10.0, 1),  # replay: NOT logged again
            )
            tail = await rpc(port, {"op": "log_tail", "cursor": 0})
            status = await rpc(port, {"op": "status"})
            await service.stop()
            return tail, status

        tail, status = asyncio.run(scenario())
        assert tail["ok"] and tail["hwm"] == 4
        kinds = [r["kind"] for r in tail["records"]]
        assert kinds == ["reserve", "reserve", "cancel", "cancel"]
        assert status["log"]["hwm"] == 4

    def test_log_tail_without_log_is_malformed(self):
        async def scenario():
            service = await start_service(**SMALL)
            response = await rpc(service.port, {"op": "log_tail", "cursor": 0})
            await service.stop()
            return response

        response = asyncio.run(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == "MALFORMED"

    def test_snapshot_compacts_and_restart_aligns(self, tmp_path):
        """snapshot -> compact; restart-from-snapshot -> aligned log that
        keeps appending with the same numbering."""
        log_dir = tmp_path / "log"
        snap = tmp_path / "snap.json"

        async def phase1():
            service = await start_service(
                **SMALL,
                log_dir=str(log_dir),
                log_segment_bytes=256,
                snapshot_path=str(snap),
            )
            port = service.port
            for rid in range(1, 9):
                await rpc(port, reserve_msg(rid, 0.0, 10.0, 1))
            response = await rpc(port, {"op": "snapshot"})
            shutdown = await rpc(port, {"op": "shutdown"})
            await service.wait_stopped()
            return response, shutdown

        snapshot_response, shutdown = asyncio.run(phase1())
        assert snapshot_response["ok"]
        assert "log_compacted" in snapshot_response

        async def phase2():
            service = await start_service(
                **SMALL, log_dir=str(log_dir), snapshot_path=str(snap)
            )
            port = service.port
            before = await rpc(port, {"op": "status"})
            await rpc(port, reserve_msg(100, 0.0, 10.0, 1))
            after = await rpc(port, {"op": "status"})
            await service.stop()
            return before, after

        before, after = asyncio.run(phase2())
        assert before["restored"]
        assert after["log"]["hwm"] == before["log"]["hwm"] + 1
        assert after["accepted_checksum"] != ""

    def test_multi_segment_replay_equals_single_segment(self, tmp_path):
        """The same op sequence through tiny segments and one huge segment
        produces byte-identical log records and checksums."""

        async def run(log_dir, segment_bytes):
            service = await start_service(
                **SMALL, log_dir=str(log_dir), log_segment_bytes=segment_bytes
            )
            port = service.port
            for rid in range(1, 25):
                await rpc(port, reserve_msg(rid, float(rid % 5), 10.0, 1))
                if rid % 4 == 0:
                    await rpc(port, {"op": "cancel", "rid": rid - 1})
            tail = await rpc(port, {"op": "log_tail", "cursor": 0, "limit": 512})
            status = await rpc(port, {"op": "status"})
            await service.stop()
            return tail, status

        tail_small, status_small = asyncio.run(run(tmp_path / "small", 200))
        tail_big, status_big = asyncio.run(run(tmp_path / "big", 1 << 30))
        assert len(list((tmp_path / "small").glob("seg-*.log"))) > 1
        assert len(list((tmp_path / "big").glob("seg-*.log"))) == 1
        assert tail_small["records"] == tail_big["records"]
        assert (
            status_small["accepted_checksum"] == status_big["accepted_checksum"]
        )
