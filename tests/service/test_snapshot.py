"""Snapshot/restore: byte-identity, checksums, corruption handling.

The load-bearing property (hypothesis-driven): for any request history,
``snapshot -> restore -> snapshot`` is *byte-identical* — the restored
server is indistinguishable from the original, down to the slot-tree
tie-break order (persisted period uids make that possible).
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.server import ReservationService, ServiceConfig, accepted_checksum
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    read_snapshot,
    snapshot_bytes,
    state_checksum,
    write_snapshot,
)

CONFIG = ServiceConfig(n_servers=4, tau=10.0, q_slots=8)


def _apply(service: ReservationService, message: dict) -> dict:
    """Drive the actor's apply coroutine to completion (single-mode
    handlers never actually suspend, so this is identical to what TCP
    requests would drive)."""
    return asyncio.run(service._actor_apply(message))


def _state(service: ReservationService) -> dict:
    return asyncio.run(service._actor_state())


def apply_history(service: ReservationService, history: list[tuple]) -> None:
    """Replay a generated history of reserve/cancel ops onto a service."""
    for rid, (kind, payload) in enumerate(history):
        if kind == "reserve":
            sr, lr, nr = payload
            _apply(service, {"op": "reserve", "rid": rid, "sr": sr, "lr": lr, "nr": nr})
        else:
            _apply(service, {"op": "cancel", "rid": payload})


def histories():
    reserve = st.tuples(
        st.just("reserve"),
        st.tuples(
            st.sampled_from([0.0, 5.0, 10.0, 25.0, 60.0]),  # sr
            st.sampled_from([-1.0, 4.0, 10.0, 35.0, 80.0]),  # lr (-1 -> malformed)
            st.sampled_from([0, 1, 2, 4, 5]),  # nr (0/5 -> malformed/rejected)
        ),
    )
    cancel = st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=12))
    return st.lists(st.one_of(reserve, reserve, cancel), max_size=12)


@given(histories())
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_snapshot_is_byte_identical(history):
    original = ReservationService(CONFIG)
    apply_history(original, history)
    first = snapshot_bytes(_state(original))

    # restore exactly what the disk read path hands back
    state = json.loads(first.decode())["state"]
    restored = ReservationService(CONFIG, state=state)
    second = snapshot_bytes(_state(restored))

    assert second == first
    assert accepted_checksum(restored._decided) == accepted_checksum(original._decided)


@given(histories())
@settings(max_examples=40, deadline=None)
def test_restored_server_answers_like_the_original(history):
    """Original and restored copy give identical verdicts on a fresh probe."""
    original = ReservationService(CONFIG)
    apply_history(original, history)
    state = json.loads(snapshot_bytes(_state(original)).decode())["state"]
    restored = ReservationService(CONFIG, state=state)

    probe_rid = 10_000  # outside every generated history
    message = {"op": "reserve", "rid": probe_rid, "sr": 0.0, "lr": 15.0, "nr": 2}
    assert _apply(restored, dict(message)) == _apply(original, dict(message))


def test_restored_server_rejects_conflicting_request(tmp_path):
    """A request conflicting with a pre-snapshot reservation is refused."""
    config = ServiceConfig(n_servers=2, tau=10.0, q_slots=4)  # horizon = 40
    original = ReservationService(config)
    fill = _apply(original, {"op": "reserve", "rid": 1, "sr": 0.0, "lr": 40.0, "nr": 2})
    assert fill["ok"]

    path = tmp_path / "state.snap"
    write_snapshot(path, _state(original))
    restored = ReservationService(config, state=read_snapshot(path))

    conflicting = _apply(restored, {"op": "reserve", "rid": 2, "sr": 0.0, "lr": 40.0, "nr": 2})
    assert not conflicting["ok"]
    assert conflicting["error"]["code"] == "REJECTED"

    # the decision log survives too: the old rid replays, never re-books
    replay = _apply(restored, {"op": "reserve", "rid": 1, "sr": 0.0, "lr": 40.0, "nr": 2})
    assert replay["ok"] and replay["replayed"] is True


def test_cancel_after_restore_frees_the_window(tmp_path):
    """A reservation granted before the snapshot must still be
    cancellable after a restart, and the freed window reusable — the
    restored allocation book, not just the calendar, has to be live.

    The clock sits at a fractional-τ slot boundary (31·0.3, where naive
    floor division and the robust slot arithmetic disagree), so this
    also pins the restored calendar's horizon to the original's.
    """
    tau = 0.3
    config = ServiceConfig(n_servers=2, tau=tau, q_slots=8)
    original = ReservationService(config)
    granted = _apply(original, 
        {"op": "reserve", "rid": 1, "qr": 31 * tau, "sr": 31 * tau, "lr": tau, "nr": 2}
    )
    assert granted["ok"]

    path = tmp_path / "state.snap"
    write_snapshot(path, _state(original))
    restored = ReservationService(config, state=read_snapshot(path))

    cancelled = _apply(restored, {"op": "cancel", "rid": 1})
    assert cancelled["ok"]

    # the window is free again on the restored server...
    refill = _apply(restored, 
        {"op": "reserve", "rid": 2, "qr": 31 * tau, "sr": 31 * tau, "lr": tau, "nr": 2}
    )
    assert refill["ok"]
    assert refill["start"] == granted["start"]

    # ...and the original, cancelling the same rid, ends in the same
    # calendar (period uids aside: the two processes' uid counters moved
    # independently after the snapshot, which is invisible to clients)
    assert _apply(original, {"op": "cancel", "rid": 1})["ok"]
    assert _apply(original, 
        {"op": "reserve", "rid": 2, "qr": 31 * tau, "sr": 31 * tau, "lr": tau, "nr": 2}
    ) == refill

    def periods_sans_uids(service):
        return [
            [(st, et) for st, et, _uid in server_periods]
            for server_periods in _state(service)["scheduler"]["calendar"]["periods"]
        ]

    assert periods_sans_uids(restored) == periods_sans_uids(original)
    assert accepted_checksum(restored._decided) == accepted_checksum(original._decided)

    # a second cancel of the same rid is a clean not-found, not a crash
    second = _apply(restored, {"op": "cancel", "rid": 1})
    assert not second["ok"]


class TestSnapshotFile:
    def test_write_read_round_trip(self, tmp_path):
        state = {"scheduler": {"x": [1.0, None]}, "decided": {}}
        meta = write_snapshot(tmp_path / "s.snap", state)
        assert meta["version"] == SNAPSHOT_VERSION and meta["bytes"] > 0
        assert read_snapshot(tmp_path / "s.snap") == state

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        write_snapshot(tmp_path / "s.snap", {"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["s.snap"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(tmp_path / "absent.snap")

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, {"periods": [1, 2, 3]})
        raw = path.read_bytes().replace(b"[1,2,3]", b"[1,2,4]")
        path.write_bytes(raw)
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(path)

    def test_wrong_version_refused(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, {"a": 1})
        document = json.loads(path.read_bytes())
        document["version"] = SNAPSHOT_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(path)

    def test_foreign_json_refused(self, tmp_path):
        path = tmp_path / "s.snap"
        path.write_text('{"hello": "world"}')
        with pytest.raises(SnapshotError, match="not a"):
            read_snapshot(path)


def _write_document(path, document):
    document = dict(document)
    document["sha256"] = state_checksum(document["state"])
    path.write_text(json.dumps(document))


class TestSnapshotMigration:
    """v1 snapshots (pre elastic pool) must restore under v2 and
    re-export byte-identically; corrupt pool sections in a v2 snapshot
    are hard errors, never a silently empty or all-active pool."""

    def _v1_document(self, state: dict) -> dict:
        # a faithful v1 snapshot: no pool section, no admin table
        v1_state = json.loads(json.dumps(state))
        v1_state.pop("admin_decided", None)
        v1_state["scheduler"]["calendar"].pop("pool", None)
        return {"format": SNAPSHOT_FORMAT, "version": 1, "state": v1_state}

    def test_v1_restores_and_reexports_byte_identically_as_v2(self, tmp_path):
        service = ReservationService(CONFIG)
        for rid, (sr, lr, nr) in enumerate([(0.0, 10.0, 2), (15.0, 20.0, 1)]):
            _apply(service, {"op": "reserve", "rid": rid, "sr": sr, "lr": lr, "nr": nr})
        v2_state = _state(service)
        path = tmp_path / "old.snap"
        _write_document(path, self._v1_document(v2_state))

        migrated = read_snapshot(path)
        assert migrated["admin_decided"] == {}
        restored = ReservationService(CONFIG, state=migrated)
        assert _state(restored) == v2_state
        assert snapshot_bytes(_state(restored)) == snapshot_bytes(v2_state)

    def test_migrated_pool_is_all_active(self, tmp_path):
        service = ReservationService(CONFIG)
        path = tmp_path / "old.snap"
        _write_document(path, self._v1_document(_state(service)))
        restored = ReservationService(CONFIG, state=read_snapshot(path))
        pool = _apply(restored, {"op": "pool_status"})
        assert pool["servers"] == ["active"] * CONFIG.n_servers

    def test_corrupt_pool_states_are_a_hard_error(self, tmp_path):
        service = ReservationService(CONFIG)
        state = _state(service)
        state["scheduler"]["calendar"]["pool"] = ["bogus"] * CONFIG.n_servers
        path = tmp_path / "bad.snap"
        _write_document(
            path,
            {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION, "state": state},
        )
        with pytest.raises(SnapshotError, match="corrupt pool"):
            read_snapshot(path)

    def test_pool_length_mismatch_is_a_hard_error(self, tmp_path):
        service = ReservationService(CONFIG)
        state = _state(service)
        state["scheduler"]["calendar"]["pool"] = ["active"]  # truncated
        path = tmp_path / "bad.snap"
        _write_document(
            path,
            {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION, "state": state},
        )
        with pytest.raises(SnapshotError, match="corrupt pool"):
            read_snapshot(path)

    def test_corrupt_admin_table_is_a_hard_error(self, tmp_path):
        service = ReservationService(CONFIG)
        state = _state(service)
        state["admin_decided"] = {"autoscale-add-1": "not-a-verdict"}
        path = tmp_path / "bad.snap"
        _write_document(
            path,
            {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION, "state": state},
        )
        with pytest.raises(SnapshotError, match="corrupt admin_decided"):
            read_snapshot(path)

    def test_pool_survives_snapshot_round_trip(self, tmp_path):
        service = ReservationService(CONFIG)
        _apply(service, {"op": "reserve", "rid": 0, "sr": 0.0, "lr": 10.0, "nr": 1})
        _apply(service, {"op": "add_servers", "count": 2, "aid": "grow-1"})
        _apply(service, {"op": "drain", "server": 0})
        path = tmp_path / "live.snap"
        write_snapshot(path, _state(service))
        restored = ReservationService(CONFIG, state=read_snapshot(path))
        pool = _apply(restored, {"op": "pool_status"})
        assert pool["total"] == CONFIG.n_servers + 2
        assert pool["servers"][0] == "draining"
        # the aid table rode along: the duplicate answers the recorded verdict
        replay = _apply(restored, {"op": "add_servers", "count": 2, "aid": "grow-1"})
        assert replay["replayed"] and replay["servers"] == [4, 5]
