"""Unit tests for the fungible-processor cluster model."""

import pytest

from repro.sim.cluster import Cluster


class TestAcquireRelease:
    def test_initially_all_free(self):
        c = Cluster(16)
        assert c.free == 16 and c.busy == 0

    def test_acquire_decrements(self):
        c = Cluster(16)
        c.acquire(5, now=0.0)
        assert c.free == 11 and c.busy == 5

    def test_over_acquire_raises(self):
        c = Cluster(4)
        with pytest.raises(RuntimeError, match="only"):
            c.acquire(5, now=0.0)

    def test_release_restores(self):
        c = Cluster(8)
        c.acquire(3, now=0.0)
        c.release(3, now=1.0)
        assert c.free == 8

    def test_over_release_raises(self):
        c = Cluster(8)
        with pytest.raises(RuntimeError, match="capacity"):
            c.release(1, now=0.0)

    def test_nonpositive_counts_rejected(self):
        c = Cluster(8)
        with pytest.raises(ValueError):
            c.acquire(0, now=0.0)
        c.acquire(2, now=0.0)
        with pytest.raises(ValueError):
            c.release(-1, now=1.0)

    def test_time_backwards_raises(self):
        c = Cluster(8)
        c.acquire(1, now=5.0)
        with pytest.raises(ValueError, match="backwards"):
            c.acquire(1, now=4.0)


class TestUtilization:
    def test_idle_cluster_utilization_zero(self):
        c = Cluster(10)
        assert c.utilization(now=100.0) == 0.0

    def test_fully_busy(self):
        c = Cluster(10)
        c.acquire(10, now=0.0)
        assert c.utilization(now=50.0) == pytest.approx(1.0)

    def test_half_busy_half_time(self):
        c = Cluster(10)
        c.acquire(5, now=0.0)
        c.release(5, now=50.0)
        assert c.utilization(now=100.0) == pytest.approx(0.25)

    def test_busy_area_integrates_steps(self):
        c = Cluster(4)
        c.acquire(2, now=0.0)  # 2 busy over [0, 10)
        c.acquire(2, now=10.0)  # 4 busy over [10, 20)
        c.release(4, now=20.0)
        assert c.busy_area(30.0) == pytest.approx(2 * 10 + 4 * 10)

    def test_zero_span(self):
        c = Cluster(4)
        assert c.utilization(now=0.0) == 0.0
