"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.at(5.0, lambda: fired.append("b"))
        eng.at(1.0, lambda: fired.append("a"))
        eng.at(9.0, lambda: fired.append("c"))
        eng.run()
        assert fired == ["a", "b", "c"]
        assert eng.now == 9.0

    def test_ties_fire_in_scheduling_order(self):
        eng = Engine()
        fired = []
        for tag in "abc":
            eng.at(3.0, lambda tag=tag: fired.append(tag))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_after_is_relative(self):
        eng = Engine(start_time=10.0)
        fired = []
        eng.after(5.0, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [15.0]

    def test_cannot_schedule_in_past(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(ValueError, match="past"):
            eng.at(9.0, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError, match="non-negative"):
            eng.after(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        eng = Engine()
        fired = []

        def cascade():
            fired.append(eng.now)
            if eng.now < 3.0:
                eng.after(1.0, cascade)

        eng.at(1.0, cascade)
        eng.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.at(1.0, lambda: fired.append("x"))
        handle.cancel()
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        eng.run()

    def test_pending_ignores_cancelled(self):
        eng = Engine()
        eng.at(1.0, lambda: None)
        h = eng.at(2.0, lambda: None)
        h.cancel()
        assert eng.pending() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        eng = Engine()
        h = eng.at(1.0, lambda: None)
        eng.at(2.0, lambda: None)
        eng.step()  # fires h
        h.cancel()  # late cancel of an already-fired event: a no-op
        assert eng.pending() == 1
        eng.run()


class TestHeapCompaction:
    def test_cancel_heavy_workload_keeps_heap_bounded(self):
        # 10k cancel/reschedule cycles (a backfilling re-plan pattern):
        # without compaction the heap retains every cancelled entry
        eng = Engine()
        keeper = eng.at(1e9, lambda: None)  # one live event throughout
        handle = eng.at(1.0, lambda: None)
        for i in range(10_000):
            handle.cancel()
            handle = eng.at(float(i + 2), lambda: None)
            assert eng.pending() == 2
        assert len(eng._heap) < 200  # bounded, not ~10k
        keeper.cancel()
        eng.run()
        assert eng.pending() == 0

    def test_compaction_preserves_fire_order(self):
        eng = Engine()
        fired = []
        live = [eng.at(float(t), lambda t=t: fired.append(t)) for t in range(1, 201)]
        # cancel most of them to force several compactions
        for h in live[::2]:
            h.cancel()
        for h in live[1::4]:
            h.cancel()
        expected = sorted(h.time for h in live if not h.cancelled)
        eng.run()
        assert fired == expected

    def test_small_heaps_are_not_compacted(self):
        eng = Engine()
        handles = [eng.at(float(t), lambda: None) for t in range(1, 11)]
        for h in handles:
            h.cancel()
        # all dead, below the compaction threshold: lazily discarded
        assert eng.pending() == 0
        assert eng.peek() is None


class TestRunUntil:
    def test_run_until_stops_clock_exactly(self):
        eng = Engine()
        fired = []
        eng.at(5.0, lambda: fired.append("early"))
        eng.at(15.0, lambda: fired.append("late"))
        eng.run(until=10.0)
        assert fired == ["early"]
        assert eng.now == 10.0
        eng.run()
        assert fired == ["early", "late"]

    def test_peek(self):
        eng = Engine()
        assert eng.peek() is None
        eng.at(4.0, lambda: None)
        assert eng.peek() == 4.0

    def test_step_returns_false_when_drained(self):
        eng = Engine()
        assert eng.step() is False
        eng.at(1.0, lambda: None)
        assert eng.step() is True
        assert eng.step() is False

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def evil():
            eng.run()

        eng.at(1.0, evil)
        with pytest.raises(RuntimeError, match="re-entrant"):
            eng.run()
