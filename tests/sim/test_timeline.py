"""Tests for schedule timelines and Gantt rendering."""

import pytest

from repro.core.calendar import AvailabilityCalendar
from repro.core.types import INF
from repro.sim.timeline import Segment, gantt, server_timeline


def busy_calendar() -> AvailabilityCalendar:
    cal = AvailabilityCalendar(n_servers=2, tau=10.0, q_slots=12)
    cal.allocate(cal.find_feasible(20.0, 50.0, 1), 20.0, 50.0)  # server A
    return cal


class TestServerTimeline:
    def test_idle_server_is_one_idle_segment(self):
        cal = AvailabilityCalendar(n_servers=1, tau=10.0, q_slots=12)
        segs = server_timeline(cal, 0)
        assert len(segs) == 1
        assert not segs[0].busy
        assert segs[0].start == 0.0 and segs[0].end == 120.0  # clipped at horizon

    def test_busy_window_appears(self):
        cal = busy_calendar()
        busy_server = next(
            s for s in range(2) if len(cal.idle_periods(s)) == 2
        )
        segs = server_timeline(cal, busy_server)
        assert [(s.start, s.end, s.busy) for s in segs] == [
            (0.0, 20.0, False),
            (20.0, 50.0, True),
            (50.0, 120.0, False),
        ]

    def test_segments_tile_the_window(self):
        cal = busy_calendar()
        for server in range(2):
            segs = server_timeline(cal, server)
            assert segs[0].start == cal.horizon_start
            for a, b in zip(segs, segs[1:]):
                assert a.end == b.start
            assert segs[-1].end == cal.horizon_end

    def test_until_clips(self):
        cal = busy_calendar()
        segs = server_timeline(cal, 0, until=30.0)
        assert segs[-1].end == 30.0

    def test_segment_duration(self):
        assert Segment(server=0, start=5.0, end=15.0, busy=True).duration == 10.0


class TestGantt:
    def test_rows_and_header(self):
        cal = busy_calendar()
        chart = gantt(cal, start=0.0, end=120.0, width=12)
        lines = chart.splitlines()
        assert len(lines) == 3  # header + 2 servers
        assert lines[0].startswith("t = [0, 120)")

    def test_busy_columns_marked(self):
        cal = busy_calendar()
        chart = gantt(cal, start=0.0, end=120.0, width=12)
        busy_row = next(line for line in chart.splitlines()[1:] if "#" in line)
        cells = busy_row.split(" ", 1)[1]
        # busy over [20, 50) with 10-unit columns -> columns 2, 3, 4
        assert cells == "··###·······"

    def test_idle_server_all_idle(self):
        cal = busy_calendar()
        idle_row = next(line for line in chart_lines(cal) if "#" not in line)
        assert set(idle_row.split(" ", 1)[1]) == {"·"}

    def test_empty_window_rejected(self):
        cal = busy_calendar()
        with pytest.raises(ValueError, match="empty"):
            gantt(cal, start=10.0, end=10.0)

    def test_bad_width_rejected(self):
        cal = busy_calendar()
        with pytest.raises(ValueError, match="width"):
            gantt(cal, width=0)


def chart_lines(cal):
    return gantt(cal, start=0.0, end=120.0, width=12).splitlines()[1:]
