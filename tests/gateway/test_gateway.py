"""The HTTP front door: routing, auth, rate limits, verbatim proxying.

Everything runs in one process and one event loop: a real
:class:`~repro.service.server.ReservationService` behind a real
:class:`~repro.gateway.app.Gateway`, exercised through the stdlib
HTTP client in :func:`repro.gateway.http.http_request`.
"""

import asyncio
import json

from repro.errors import BusyError
from repro.gateway.app import Gateway, GatewayConfig
from repro.gateway.http import format_retry_after, http_request

from ..service.harness import SMALL, reserve_msg, rpc, start_service


async def start_stack(service_overrides=None, **gateway_overrides):
    """Boot service + gateway; returns (service, gateway)."""
    service = await start_service(**(service_overrides or SMALL))
    gateway = Gateway(
        GatewayConfig(backend_port=service.port, **gateway_overrides)
    )
    await gateway.start()
    return service, gateway


async def http(port, method, path, body=None, headers=()):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await http_request(reader, writer, method, path, body, headers)
    finally:
        writer.close()


async def fetch_metrics(port):
    """GET /metrics as text (it is Prometheus exposition, not JSON)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    length = next(
        int(line.split(":")[1])
        for line in head.decode().split("\r\n")
        if line.lower().startswith("content-length")
    )
    text = (await reader.readexactly(length)).decode()
    writer.close()
    return text


class TestRouting:
    def test_healthz_and_unknown_routes(self):
        async def scenario():
            service, gateway = await start_stack()
            health = await http(gateway.port, "GET", "/healthz")
            missing = await http(gateway.port, "GET", "/v1/nope")
            wrong_method = await http(gateway.port, "GET", "/v1/reserve")
            status_post = await http(gateway.port, "POST", "/v1/status", body={})
            await gateway.stop()
            await service.stop()
            return health, missing, wrong_method, status_post

        health, missing, wrong_method, status_post = asyncio.run(scenario())
        assert health[0] == 200 and health[2]["ok"] is True
        assert missing[0] == 404
        assert wrong_method[0] == 405
        assert status_post[0] == 405

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def scenario():
            service, gateway = await start_stack()
            reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
            statuses = []
            for rid in range(1, 6):
                status, _, body = await http_request(
                    reader, writer, "POST", "/v1/reserve",
                    reserve_msg(rid, 0.0, 5.0, 1),
                )
                statuses.append((status, body["ok"]))
            writer.close()
            await gateway.stop()
            await service.stop()
            return statuses

        statuses = asyncio.run(scenario())
        assert all(status == 200 for status, _ in statuses)


class TestProxySemantics:
    def test_gateway_and_tcp_answer_identically(self):
        """The HTTP body is the backend's NDJSON response verbatim: the
        same op via the gateway and via raw TCP yields the same JSON."""

        async def scenario():
            # two identical services, one fronted, one raw
            fronted, gateway = await start_stack()
            raw = await start_service(**SMALL)
            pairs = []
            for message in (
                reserve_msg(1, 0.0, 10.0, 1),
                reserve_msg(2, 0.0, 10.0, 2),
                {"op": "probe", "ta": 0.0, "tb": 10.0},
                {"op": "cancel", "rid": 1},
                {"op": "cancel", "rid": 999},
                reserve_msg(2, 0.0, 10.0, 2),  # replay of rid 2
            ):
                _, _, via_http = await http(
                    gateway.port, "POST", f"/v1/{message['op']}", message
                )
                via_tcp = await rpc(raw.port, message)
                pairs.append((via_http, via_tcp))
            status_http = await http(gateway.port, "GET", "/v1/status")
            status_tcp = await rpc(raw.port, {"op": "status"})
            await gateway.stop()
            await fronted.stop()
            await raw.stop()
            return pairs, status_http[2], status_tcp

        pairs, status_http, status_tcp = asyncio.run(scenario())
        for via_http, via_tcp in pairs:
            assert via_http == via_tcp
        assert status_http["accepted_checksum"] == status_tcp["accepted_checksum"]

    def test_error_codes_map_to_http_statuses(self):
        async def scenario():
            service, gateway = await start_stack()
            results = {}
            # MALFORMED: missing required fields
            results["malformed"] = await http(
                gateway.port, "POST", "/v1/reserve", {"rid": 1}
            )
            # MALFORMED: unknown field (registry strictness, not a 2nd schema)
            results["unknown_field"] = await http(
                gateway.port, "POST", "/v1/reserve",
                {**reserve_msg(5, 0.0, 5.0, 1), "bogus": True},
            )
            # op in the body disagreeing with the endpoint is malformed too
            results["op_mismatch"] = await http(
                gateway.port, "POST", "/v1/cancel", reserve_msg(6, 0.0, 5.0, 1)
            )
            # NOT_FOUND: cancel of an unknown rid
            results["not_found"] = await http(
                gateway.port, "POST", "/v1/cancel", {"rid": 404}
            )
            # non-JSON body
            results["not_json"] = await http(
                gateway.port, "POST", "/v1/reserve", ["not", "an", "object"]
            )
            await gateway.stop()
            await service.stop()
            return results

        results = asyncio.run(scenario())
        assert results["malformed"][0] == 400
        assert results["malformed"][2]["error"]["code"] == "MALFORMED"
        assert results["unknown_field"][0] == 400
        assert results["op_mismatch"][0] == 400
        assert results["not_found"][0] == 404
        assert results["not_found"][2]["error"]["code"] == "NOT_FOUND"
        assert results["not_json"][0] == 400

    def test_dead_backend_is_502(self):
        async def scenario():
            service, gateway = await start_stack()
            await service.stop()  # kill the backend under the gateway
            response = await http(
                gateway.port, "POST", "/v1/reserve", reserve_msg(1, 0.0, 5.0, 1)
            )
            await gateway.stop()
            return response

        status, _, body = asyncio.run(scenario())
        assert status == 502
        assert body["error"]["code"] == "BACKEND_DOWN"


async def start_fake_backend(handler):
    """An NDJSON 'backend' whose per-connection behavior the test scripts."""
    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


class TestBackendConnection:
    """The shared multiplexed backend connection: cancellation hygiene
    and the per-op retry policy."""

    def test_metrics_timeout_does_not_poison_the_connection(self):
        """A /metrics status probe that hits status_timeout abandons the
        exchange between write and readline.  The connection must be
        dropped with it: otherwise the late status reply stays buffered
        and answers the *next* client rpc verbatim."""

        async def scenario():
            async def backend(reader, writer):
                try:
                    while True:
                        raw = await reader.readline()
                        if not raw:
                            break
                        message = json.loads(raw)
                        if message["op"] == "status":
                            await asyncio.sleep(0.4)  # beyond status_timeout
                        writer.write(
                            json.dumps({"ok": True, "op": message["op"]}).encode()
                            + b"\n"
                        )
                        await writer.drain()
                except (ConnectionError, OSError):
                    pass  # the gateway dropped us mid-answer: expected
                finally:
                    writer.close()

            server, backend_port = await start_fake_backend(backend)
            gateway = Gateway(
                GatewayConfig(backend_port=backend_port, status_timeout=0.05)
            )
            await gateway.start()
            # warm the pooled connection, then force the abandoned probe
            first = await http(gateway.port, "POST", "/v1/probe", {"ta": 0.0, "tb": 1.0})
            metrics = await fetch_metrics(gateway.port)
            after = await http(gateway.port, "POST", "/v1/probe", {"ta": 0.0, "tb": 1.0})
            await gateway.stop()
            server.close()
            await server.wait_closed()
            return first, metrics, after

        first, metrics, after = asyncio.run(scenario())
        assert first[0] == 200 and first[2]["op"] == "probe"
        assert "repro_gateway_backend_up 0" in metrics
        # without the invalidation this body would be the stale status reply
        assert after[0] == 200 and after[2]["op"] == "probe"

    def test_cancel_is_never_retried_but_reserve_is(self):
        """A half-dead pooled connection: reserve retries through a fresh
        connection (rid-keyed exactly-once), but cancel surfaces 502 —
        retrying could launder an applied cancel into NOT_FOUND."""

        async def scenario():
            async def one_shot_backend(reader, writer):
                # answer exactly one op, then drop the connection: the
                # gateway's next exchange on the pooled socket sees EOF
                try:
                    raw = await reader.readline()
                    if raw:
                        message = json.loads(raw)
                        writer.write(
                            json.dumps({"ok": True, "op": message["op"]}).encode()
                            + b"\n"
                        )
                        await writer.drain()
                finally:
                    writer.close()

            server, backend_port = await start_fake_backend(one_shot_backend)
            gateway = Gateway(GatewayConfig(backend_port=backend_port))
            await gateway.start()
            warm = await http(gateway.port, "POST", "/v1/probe", {"ta": 0.0, "tb": 1.0})
            retried = await http(
                gateway.port, "POST", "/v1/reserve", reserve_msg(1, 0.0, 5.0, 1)
            )
            # the retry's fresh connection answered one op, so the pool
            # is half-dead again when the cancel arrives
            failed = await http(gateway.port, "POST", "/v1/cancel", {"rid": 1})
            recovered = await http(
                gateway.port, "POST", "/v1/probe", {"ta": 0.0, "tb": 1.0}
            )
            await gateway.stop()
            server.close()
            await server.wait_closed()
            return warm, retried, failed, recovered

        warm, retried, failed, recovered = asyncio.run(scenario())
        assert warm[0] == 200
        assert retried[0] == 200 and retried[2]["op"] == "reserve"
        assert failed[0] == 502
        assert failed[2]["error"]["code"] == "BACKEND_DOWN"
        assert recovered[0] == 200 and recovered[2]["op"] == "probe"


class TestAuth:
    def test_token_table_gates_requests_and_labels_tenants(self, tmp_path):
        tokens = tmp_path / "tokens"
        tokens.write_text("s3cret:alice\n")

        async def scenario():
            service, gateway = await start_stack(token_file=str(tokens))
            denied = await http(
                gateway.port, "POST", "/v1/reserve", reserve_msg(1, 0.0, 5.0, 1)
            )
            wrong = await http(
                gateway.port, "POST", "/v1/reserve", reserve_msg(1, 0.0, 5.0, 1),
                headers=(("Authorization", "Bearer wrong"),),
            )
            granted = await http(
                gateway.port, "POST", "/v1/reserve", reserve_msg(1, 0.0, 5.0, 1),
                headers=(("Authorization", "Bearer s3cret"),),
            )
            metrics = await fetch_metrics(gateway.port)
            await gateway.stop()
            await service.stop()
            return denied, wrong, granted, metrics

        denied, wrong, granted, metrics = asyncio.run(scenario())
        assert denied[0] == 401
        assert "bearer" in denied[1]["www-authenticate"].lower()
        assert wrong[0] == 401
        assert granted[0] == 200 and granted[2]["ok"]
        # authenticated traffic is attributed to its tenant in the metrics
        assert 'tenant="alice"' in metrics
        assert 'reason="unauthorized"' in metrics


class TestRateLimit:
    def test_burst_429s_carry_the_buckets_own_retry_after(self):
        """Satellite: one back-off source. Under a 10x-burst flood every
        429's Retry-After header must equal the JSON body's retry_after
        rendered through format_retry_after — never a second estimate."""

        async def scenario():
            service, gateway = await start_stack(rate=50.0, burst=10.0)
            responses = []
            for rid in range(1, 101):  # 10x the burst capacity
                responses.append(
                    await http(
                        gateway.port, "POST", "/v1/probe", {"ta": 0.0, "tb": 1.0}
                    )
                )
            await gateway.stop()
            await service.stop()
            return responses

        responses = asyncio.run(scenario())
        limited = [r for r in responses if r[0] == 429]
        assert limited, "a 10x burst must trip the per-tenant bucket"
        for _, headers, body in limited:
            assert body["error"]["code"] == "BUSY"
            retry_after = body["error"]["retry_after"]
            assert retry_after > 0.0
            assert headers["retry-after"] == format_retry_after(retry_after)
            # RFC 9110: the header is integer delta-seconds, never 0
            assert headers["retry-after"].isdigit()
            assert int(headers["retry-after"]) >= 1

    def test_proxied_busy_reuses_the_admission_controllers_estimate(self):
        """A backend BUSY (admission shed) becomes 429 with Retry-After
        equal to the controller's own retry_after — the TCP and HTTP
        front doors advertise the same back-off for the same overload."""

        async def scenario():
            service, gateway = await start_stack()

            shed = BusyError("admission queue full", retry_after=1.75)

            async def busy_backend(message):
                return {"ok": False, "op": message["op"], "error": shed.payload()}

            gateway._backend_rpc = busy_backend
            response = await http(
                gateway.port, "POST", "/v1/reserve", reserve_msg(1, 0.0, 5.0, 1)
            )
            await gateway.stop()
            await service.stop()
            return response, shed.payload()

        (status, headers, body), tcp_payload = asyncio.run(scenario())
        assert status == 429
        # byte-identical to what the TCP client sees in the BUSY error...
        assert body["error"] == tcp_payload
        # ...and the header is that same number through the one formatter
        assert headers["retry-after"] == format_retry_after(
            tcp_payload["retry_after"]
        )
        # 1.75 s rounds *up* to RFC 9110 integer delta-seconds
        assert headers["retry-after"] == "2"

    def test_status_and_health_are_never_rate_limited(self):
        async def scenario():
            service, gateway = await start_stack(rate=50.0, burst=1.0)
            for _ in range(20):
                status = await http(gateway.port, "GET", "/v1/status")
                health = await http(gateway.port, "GET", "/healthz")
                assert status[0] == 200 and health[0] == 200
            await gateway.stop()
            await service.stop()

        asyncio.run(scenario())


class TestMetrics:
    def test_metrics_expose_gateway_and_service_series(self):
        async def scenario():
            service, gateway = await start_stack()
            for rid in range(1, 4):
                await http(
                    gateway.port, "POST", "/v1/reserve", reserve_msg(rid, 0.0, 5.0, 1)
                )
            text = await fetch_metrics(gateway.port)
            await gateway.stop()
            await service.stop()
            return text

        text = asyncio.run(scenario())
        assert (
            'repro_gateway_requests_total{endpoint="reserve",tenant="anonymous"} 3'
            in text
        )
        assert "# TYPE repro_gateway_requests_total counter" in text
        assert "repro_gateway_backend_up 1" in text
        assert 'repro_service_accepted_total' in text
        assert 'repro_gateway_request_seconds{quantile="0.5"}' in text
