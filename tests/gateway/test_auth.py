"""Token buckets and the bearer-token table (pure units, fake clocks)."""

import pytest

from repro.gateway.auth import ANONYMOUS, TenantLimiter, TokenBucket, TokenTable


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3, clock=lambda: clock[0])
        assert [bucket.acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.acquire()
        assert retry == pytest.approx(0.1, abs=1e-4)  # 1 token / 10 per sec

    def test_refill_is_proportional_to_elapsed_time(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=4, clock=lambda: clock[0])
        for _ in range(4):
            bucket.acquire()
        assert bucket.acquire() > 0.0
        clock[0] += 1.0  # 2 tokens refill
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_bucket_never_exceeds_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2, clock=lambda: clock[0])
        clock[0] += 3600.0  # an hour idle does not bank an hour of tokens
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=10)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantLimiter:
    def test_tenants_draw_from_independent_buckets(self):
        clock = [0.0]
        limiter = TenantLimiter(rate=1.0, burst=1, clock=lambda: clock[0])
        assert limiter.acquire("a") == 0.0
        assert limiter.acquire("a") > 0.0  # a's bucket is dry...
        assert limiter.acquire("b") == 0.0  # ...but b's burst is untouched


class TestTokenTable:
    def test_open_mode_admits_everyone_as_anonymous(self):
        table = TokenTable()
        assert table.open_mode
        assert table.authenticate(None) == ANONYMOUS
        assert table.authenticate("Bearer whatever") == ANONYMOUS

    def test_bearer_tokens_map_to_tenants(self):
        table = TokenTable({"s3cret": "alice", "t0ken": "bob"})
        assert not table.open_mode
        assert table.authenticate("Bearer s3cret") == "alice"
        assert table.authenticate("bearer t0ken") == "bob"  # scheme is case-insensitive
        assert table.authenticate("Bearer nope") is None
        assert table.authenticate("Basic s3cret") is None
        assert table.authenticate(None) is None
        assert table.authenticate("Bearer ") is None

    def test_from_file_parses_token_tenant_lines(self, tmp_path):
        path = tmp_path / "tokens"
        path.write_text("# comment\n\n  s3cret : alice \ntok2:bob\n")
        table = TokenTable.from_file(path)
        assert table.authenticate("Bearer s3cret") == "alice"
        assert table.authenticate("Bearer tok2") == "bob"

    def test_from_file_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "tokens"
        path.write_text("justatoken\n")
        with pytest.raises(ValueError, match="tokens:1"):
            TokenTable.from_file(path)
