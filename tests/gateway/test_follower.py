"""Warm-standby replication: prefix-state equality, verdict verification,
gap/divergence crash-stops, garbled-reply recovery, in-process promote."""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facade import CoAllocationScheduler
from repro.gateway.follower import (
    Follower,
    FollowerConfig,
    ReplicationDivergenceError,
    ReplicationGapError,
)
from repro.service.declog import decide_cancel, decide_reserve, decision_message
from repro.service.server import accepted_checksum

from ..service.harness import SMALL, reserve_msg, rpc, start_service

GEOMETRY = dict(n_servers=2, tau=10.0, q_slots=4, delta_t=1.0, r_max=2)


def fresh_scheduler():
    return CoAllocationScheduler(**GEOMETRY)


def normalized(state):
    """Rank-map period uids so two independently built schedulers compare.

    uids come from a process-global counter, so their absolute values are
    instance-relative; only their *relative order* matters (it is the
    slot trees' tie-break).  Mapping each uid to its rank preserves
    exactly that order, making equal-ranked states behaviorally equal.
    """
    state = json.loads(json.dumps(state))
    uids = sorted(
        period[2]
        for server_periods in state["calendar"]["periods"]
        for period in server_periods
    )
    rank = {uid: index for index, uid in enumerate(uids)}
    for server_periods in state["calendar"]["periods"]:
        for period in server_periods:
            period[2] = rank[period[2]]
    return state


def run_primary(ops):
    """Mirror the actor's logging discipline over an in-process scheduler.

    Fresh reserves (anything entering the decision table, rejects and
    malformed included) and *all* cancels append one record; duplicate
    rids answer from the table without logging — exactly what
    ``ReservationService._record_decision`` does.  Returns the log plus
    the primary's state snapshot after every record.
    """
    scheduler = fresh_scheduler()
    decided = {}
    records = []
    states = [scheduler.export_state()]  # states[h] = state after record h
    checksums = [accepted_checksum({})]
    for op in ops:
        if op["op"] == "reserve":
            if op["rid"] in decided:
                continue  # replay: answered from the table, not logged
            verdict = decide_reserve(scheduler, op)
            decided[op["rid"]] = verdict
            kind = "reserve"
        else:
            verdict = decide_cancel(scheduler, int(op["rid"]))
            kind = "cancel"
        records.append(
            {
                "hwm": len(records) + 1,
                "kind": kind,
                "message": decision_message(kind, op),
                "verdict": verdict,
            }
        )
        states.append(scheduler.export_state())
        checksums.append(accepted_checksum(decided))
    return records, states, checksums


def ops_strategy():
    """Reserves, replays, cancels (found and not), occasional malformed."""
    reserve = st.builds(
        lambda rid, sr, lr, nr: {"op": "reserve", "rid": rid, "sr": sr, "lr": lr, "nr": nr},
        rid=st.integers(min_value=1, max_value=12),
        sr=st.sampled_from([0.0, 2.5, 5.0, 10.0, 20.0]),
        lr=st.sampled_from([1.0, 5.0, 10.0]),
        nr=st.integers(min_value=0, max_value=3),  # nr=0 and nr=3 > N: malformed/reject paths
    )
    cancel = st.builds(
        lambda rid: {"op": "cancel", "rid": rid},
        rid=st.integers(min_value=1, max_value=14),
    )
    return st.lists(st.one_of(reserve, cancel), min_size=0, max_size=40)


class TestReplicationProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy(), data=st.data())
    def test_any_log_prefix_reproduces_the_primary_state(self, ops, data):
        """For ANY op sequence and ANY prefix cut k: a follower that has
        applied records 1..k holds exactly the primary's state at hwm k
        (scheduler export, decision table, checksum) — and the verdict
        verification inside apply_record never trips on honest logs."""
        records, states, checksums = run_primary(ops)
        k = data.draw(st.integers(min_value=0, max_value=len(records)))
        follower = Follower(FollowerConfig())
        follower.scheduler = fresh_scheduler()
        for record in records[:k]:
            follower.apply_record(record)  # raises on any divergence
        exported = follower.export_service_state()
        assert normalized(exported["scheduler"]) == normalized(states[k])
        assert exported["log_hwm"] == k
        assert accepted_checksum(follower.decided) == checksums[k]

    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy())
    def test_promoted_prefix_re_decides_the_suffix_identically(self, ops):
        """Failover semantics: a follower cut at hwm k, handed the lost
        suffix again (at-least-once clients resending), re-decides every
        lost op to the logged verdict and converges on the primary."""
        records, _, checksums = run_primary(ops)
        k = len(records) // 2
        follower = Follower(FollowerConfig())
        follower.scheduler = fresh_scheduler()
        for record in records[:k]:
            follower.apply_record(record)
        # the promoted service would route these through the same
        # decision functions; replaying the logged messages stands in
        for record in records[k:]:
            if record["kind"] == "reserve":
                verdict = decide_reserve(follower.scheduler, record["message"])
                follower.decided[int(record["message"]["rid"])] = verdict
            else:
                verdict = decide_cancel(
                    follower.scheduler, int(record["message"]["rid"])
                )
            assert verdict == record["verdict"]
        assert accepted_checksum(follower.decided) == checksums[-1]


class TestCrashStops:
    def _bootstrapped(self):
        follower = Follower(FollowerConfig())
        follower.scheduler = fresh_scheduler()
        return follower

    def test_hwm_gap_raises(self):
        follower = self._bootstrapped()
        record = {
            "hwm": 5,  # cursor is 0: records 1..4 are missing
            "kind": "cancel",
            "message": {"rid": 1},
            "verdict": {"ok": False, "error": {"code": "NOT_FOUND"}},
        }
        with pytest.raises(ReplicationGapError):
            follower.apply_record(record)

    def test_verdict_divergence_raises(self):
        follower = self._bootstrapped()
        record = {
            "hwm": 1,
            "kind": "reserve",
            "message": {"rid": 1, "sr": 0.0, "lr": 5.0, "nr": 1},
            "verdict": {"ok": True, "start": 99.0, "end": 104.0, "servers": [0],
                        "attempts": 1, "delay": 99.0},  # a lie
        }
        with pytest.raises(ReplicationDivergenceError, match="rid=1"):
            follower.apply_record(record)

    def test_unknown_kind_raises(self):
        follower = self._bootstrapped()
        with pytest.raises(ReplicationDivergenceError, match="unknown record kind"):
            follower.apply_record(
                {"hwm": 1, "kind": "mystery", "message": {}, "verdict": {}}
            )


class _FlakyPrimary:
    """A fake primary whose FIRST log_tail reply is torn mid-JSON.

    Subsequent connections serve honest log_tail batches from a fixed
    record list, so a correct follower recovers from its last good
    cursor without losing or double-applying anything.
    """

    def __init__(self, records, base=0):
        self.records = records
        self.base = base
        self.torn_replies = 0
        self._server = None

    @property
    def port(self):
        return self._server.sockets[0].getsockname()[1]

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0, limit=1 << 16
        )

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                message = json.loads(raw)
                if self.torn_replies == 0:
                    # die mid-reply: an unterminated JSON fragment
                    self.torn_replies += 1
                    writer.write(b'{"ok": true, "records": [{"hw')
                    await writer.drain()
                    writer.close()
                    return
                cursor = int(message["cursor"])
                batch = [r for r in self.records if r["hwm"] > cursor][:16]
                reply = {
                    "ok": True,
                    "op": "log_tail",
                    "hwm": len(self.records),
                    "base": self.base,
                    "records": batch,
                }
                writer.write((json.dumps(reply) + "\n").encode())
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()


def _sample_records(n=20):
    ops = [reserve_msg(rid, float(rid % 4), 5.0, 1) for rid in range(1, n + 1)]
    ops[5] = {"op": "cancel", "rid": 3}
    ops[11] = {"op": "cancel", "rid": 99}
    records, _, checksums = run_primary(ops)
    return records, checksums[-1]


class TestTailLoop:
    def test_garbled_reply_reconnects_from_last_good_cursor(self):
        records, checksum = _sample_records()

        async def scenario():
            primary = _FlakyPrimary(records)
            await primary.start()
            follower = Follower(
                FollowerConfig(
                    primary_port=primary.port, poll_interval=0.01, batch_limit=16
                )
            )
            follower.scheduler = fresh_scheduler()
            await follower.start()
            for _ in range(500):
                if follower.cursor == len(records):
                    break
                await asyncio.sleep(0.01)
            state = follower.export_service_state()
            applied = dict(follower.applied)
            torn = primary.torn_replies
            await follower.stop()
            await primary.stop()
            return follower, state, applied, torn

        follower, state, applied, torn = asyncio.run(scenario())
        assert torn == 1  # the torn reply actually happened
        assert follower.failed is None
        assert state["log_hwm"] == len(records)
        # nothing double-applied across the reconnect
        assert applied["reserve"] + applied["cancel"] == len(records)
        assert accepted_checksum(follower.decided) == checksum

    def test_compaction_gap_crash_stops_the_follower(self):
        records, _ = _sample_records()

        async def scenario():
            # primary compacted to base 10; a fresh follower (cursor 0)
            # can never catch up from the log alone
            primary = _FlakyPrimary(records[10:], base=10)
            primary.torn_replies = 1  # skip the torn-reply act
            await primary.start()
            follower = Follower(
                FollowerConfig(primary_port=primary.port, poll_interval=0.01)
            )
            follower.scheduler = fresh_scheduler()
            await follower.start()
            for _ in range(500):
                if follower.failed is not None:
                    break
                await asyncio.sleep(0.01)
            failed = follower.failed
            await follower.stop()
            await primary.stop()
            return failed

        failed = asyncio.run(scenario())
        assert failed is not None and "re-bootstrap" in failed


class TestPromote:
    def test_in_process_kill_promote_round_trip(self, tmp_path):
        """Mini kill-promote without subprocesses: a real primary with a
        decision log, a follower tailing it over real TCP, promotion to
        a real service, lost suffix resent — checksums all equal."""

        async def scenario():
            primary = await start_service(**SMALL, log_dir=str(tmp_path / "log"))
            ops = [reserve_msg(rid, float(rid % 3), 5.0, 1) for rid in range(1, 16)]
            ops.append({"op": "cancel", "rid": 2})
            for op in ops:
                await rpc(primary.port, op)
            primary_status = await rpc(primary.port, {"op": "status"})

            follower = Follower(
                FollowerConfig(
                    primary_port=primary.port,
                    poll_interval=0.01,
                    log_dir=str(tmp_path / "follower-log"),
                )
            )
            status = await rpc(primary.port, {"op": "status"})
            follower.bootstrap_fresh(status)
            await follower.start()
            for _ in range(500):
                if follower.cursor >= primary_status["log"]["hwm"]:
                    break
                await asyncio.sleep(0.01)
            await primary.stop()  # the primary dies

            promoted = await rpc(follower.port, {"op": "promote"})
            assert promoted["ok"], promoted
            # promote is not idempotent: a second call is a CONFLICT
            again = await rpc(follower.port, {"op": "promote"})
            # at-least-once clients resend everything in flight; the
            # promoted service answers replays from the decision table
            replays = [await rpc(promoted["port"], op) for op in ops]
            new_status = await rpc(promoted["port"], {"op": "status"})
            fstatus = await rpc(follower.port, {"op": "follower_status"})
            await follower.stop()
            return primary_status, promoted, again, replays, new_status, fstatus

        primary_status, promoted, again, replays, new_status, fstatus = asyncio.run(
            scenario()
        )
        assert promoted["hwm"] == primary_status["log"]["hwm"]
        assert (
            promoted["accepted_checksum"]
            == primary_status["accepted_checksum"]
            == new_status["accepted_checksum"]
        )
        assert not again["ok"] and again["error"]["code"] == "CONFLICT"
        assert all(
            r["ok"] or r["error"]["code"] in ("NOT_FOUND", "REJECTED")
            for r in replays
        )
        # every reserve replay was answered from the table, not re-decided
        assert all(
            r.get("replayed") for r in replays if r.get("op") == "reserve" and r["ok"]
        )
        assert fstatus["promoted"] is True
