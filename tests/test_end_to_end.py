"""End-to-end scenario: a day in the life of one scheduler instance.

Exercises the whole public surface in one realistic interleaving —
on-demand jobs, advance reservations, range-search-then-commit,
deadlines, cancellations, early releases, clock advances across many
slot rollovers — validating calendar invariants and accounting at every
step.  This is the "does it hold together" test the unit suite can't
give.
"""

import random

import pytest

from repro import CoAllocationScheduler, Request
from repro.sim.timeline import gantt, server_timeline

HOUR = 3600.0


class TestDayInTheLife:
    def test_mixed_day(self):
        rng = random.Random(2024)
        sched = CoAllocationScheduler(n_servers=16, tau=900.0, q_slots=96)
        live: list[int] = []
        accepted = rejected = 0
        committed_area = 0.0
        rid = 0

        for step in range(120):
            now = step * 600.0  # events every 10 minutes
            sched.advance(now)
            action = rng.random()
            rid += 1
            if action < 0.45:  # on-demand job
                req = Request(
                    qr=now, sr=now,
                    lr=rng.uniform(900.0, 4 * HOUR),
                    nr=rng.randint(1, 8),
                    rid=rid,
                )
                a = sched.schedule(req)
            elif action < 0.65:  # advance reservation
                req = Request(
                    qr=now, sr=now + rng.uniform(0, 3 * HOUR),
                    lr=rng.uniform(900.0, 2 * HOUR),
                    nr=rng.randint(1, 6),
                    rid=rid,
                )
                a = sched.schedule(req)
            elif action < 0.75:  # deadline job
                lr = rng.uniform(900.0, HOUR)
                req = Request(
                    qr=now, sr=now, lr=lr, nr=rng.randint(1, 4),
                    rid=rid, deadline=now + lr + rng.uniform(0, 2 * HOUR),
                )
                a = sched.schedule(req)
            elif action < 0.9 and live:  # cancel something future
                victim = live.pop(rng.randrange(len(live)))
                try:
                    sched.cancel(victim)
                except KeyError:
                    pass
                continue
            else:  # range search + commit
                ta = now + 1800.0
                tb = ta + 1800.0
                free = sched.range_search(ta, tb)
                if free:
                    chosen = free[: rng.randint(1, min(3, len(free)))]
                    a = sched.commit(chosen, ta, tb, rid=rid)
                else:
                    a = None
            if a is not None:
                accepted += 1
                live.append(a.rid)
                committed_area += (a.end - a.start) * a.nr
            else:
                rejected += 1
            if step % 20 == 0:
                sched.calendar.validate()

        sched.calendar.validate()
        assert accepted > 50, "scenario should mostly succeed"
        # utilization over the active span is sane
        util = sched.utilization(0.0, 120 * 600.0)
        assert 0.0 <= util <= 1.0
        # the timeline view agrees with the calendar on every server
        for server in range(16):
            segments = server_timeline(sched.calendar, server)
            for a_seg, b_seg in zip(segments, segments[1:]):
                assert a_seg.end == b_seg.start

    def test_gantt_renders_after_the_day(self):
        sched = CoAllocationScheduler(n_servers=4, tau=900.0, q_slots=24)
        for i in range(6):
            sched.schedule(
                Request(qr=0.0, sr=i * 1800.0, lr=3600.0, nr=2, rid=i)
            )
        chart = gantt(sched.calendar, width=24)
        lines = chart.splitlines()
        assert len(lines) == 5
        assert any("#" in line for line in lines[1:])
