"""Property tests: the result store's serialization is exact.

The store's correctness claim is that caching is invisible — a result
read back from a worker process or from disk is indistinguishable from
the in-process original.  That reduces to round-trip identity of the
(de)serialization over arbitrary records, including the awkward floats
(sub-second times, huge makespans, denormal waits) real traces produce.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.records import JobRecord
from repro.sim.driver import SimResult

finite = st.floats(allow_nan=False, allow_infinity=False)
times = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


@st.composite
def job_records(draw, scheduler="prop"):
    return JobRecord(
        rid=draw(st.integers(min_value=0, max_value=10**9)),
        qr=draw(times),
        sr=draw(times),
        lr=draw(st.floats(min_value=1e-3, max_value=1e9, allow_nan=False)),
        nr=draw(st.integers(min_value=1, max_value=10**6)),
        start=draw(st.none() | times),
        attempts=draw(st.integers(min_value=0, max_value=10**4)),
        ops=draw(st.integers(min_value=0, max_value=10**9)),
        scheduler=scheduler,
    )


@st.composite
def sim_results(draw):
    records = draw(st.lists(job_records(), max_size=12))
    return SimResult(
        scheduler="prop",
        records=records,
        utilization=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        makespan=draw(times),
        rejected=sum(1 for r in records if r.rejected),
        unfinished=draw(st.integers(min_value=0, max_value=5)),
        total_ops=draw(st.integers(min_value=0, max_value=10**12)),
    )


class TestRoundTrip:
    @given(record=job_records())
    @settings(max_examples=200)
    def test_record_row_round_trip(self, record):
        assert JobRecord.from_row(record.to_row(), record.scheduler) == record

    @given(result=sim_results())
    @settings(max_examples=100)
    def test_payload_round_trip_is_identity(self, result):
        assert SimResult.from_payload(result.to_payload()) == result

    @given(result=sim_results())
    @settings(max_examples=100)
    def test_json_text_round_trip_is_identity(self, result):
        # the disk tier's actual path: payload -> JSON text -> payload.
        # float repr round-trips IEEE doubles exactly, so even awkward
        # values survive bit for bit
        text = json.dumps(result.to_payload())
        clone = SimResult.from_payload(json.loads(text))
        assert clone == result
        assert clone.record_checksum() == result.record_checksum()
