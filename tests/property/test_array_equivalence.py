"""Differential equivalence: array-backed kernel vs the node-backed spec.

``repro.core.slot_tree`` stores trees as struct-of-arrays (optionally
mypyc-compiled); ``repro.core.slot_tree_nodes`` keeps the original
``_Node``-object implementation as the executable specification.  Every
query answer and every stored-content multiset must agree between the
two under arbitrary operation streams — including the fused
``apply_batch`` path, which the spec tree models as sequential
remove-then-insert.

Phase-2 selection is a pure function of stored periods (the canonical
``(et, uid)`` merge), so equal contents must yield *identical* selection
sequences, not just equal sets.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slot_tree import TwoDimTree, backend_info
from repro.core.slot_tree_nodes import TwoDimTree as NodeTree
from repro.core.types import INF, IdlePeriod

_times = st.floats(min_value=0.0, max_value=500.0, allow_nan=False, width=32)


@st.composite
def period_pools(draw, max_size=50):
    n = draw(st.integers(min_value=0, max_value=max_size))
    periods = []
    for _ in range(n):
        a, b = draw(_times), draw(_times)
        lo, hi = min(a, b), max(a, b)
        if lo == hi:
            hi = lo + 1.0
        if draw(st.integers(0, 9)) == 0:
            hi = INF
        periods.append(IdlePeriod(server=draw(st.integers(0, 15)), st=lo, et=hi))
    return periods


@st.composite
def op_scripts(draw):
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "remove"]), st.integers(0, 10**6)),
            max_size=100,
        )
    )


def _uids(periods) -> list[int]:
    return [p.uid for p in periods]


def _assert_query_equivalent(arr: TwoDimTree, spec: NodeTree, probes: list[float]) -> None:
    """Every query answer must match between the two implementations."""
    assert len(arr) == len(spec)
    assert _uids(arr.periods()) == _uids(spec.periods())
    for sr in probes:
        ca, _ = arr.phase1(sr)
        cs, _ = spec.phase1(sr)
        assert ca == cs
        for dur in (0.5, 40.0):
            er = sr + dur
            # full listing: canonical (et, uid) order must be identical
            assert _uids(arr.range_search(sr, er)) == _uids(spec.range_search(sr, er))
            for nr in (1, 3, ca):
                if nr < 1:
                    continue
                fa = arr.find_feasible(sr, er, nr)
                fs = spec.find_feasible(sr, er, nr)
                if fa is None or fs is None:
                    assert fa is None and fs is None
                else:
                    assert _uids(fa) == _uids(fs)
        # partial phase-2: return what exists instead of None
        _, marks_a = arr.phase1(sr)
        _, marks_s = spec.phase1(sr)
        pa = arr.phase2(marks_a, sr + 40.0, 10**9, partial=True)
        ps = spec.phase2(marks_s, sr + 40.0, 10**9, partial=True)
        assert _uids(pa) == _uids(ps)


class TestOpStreamEquivalence:
    @given(pool=period_pools(), script=op_scripts(), probes=st.lists(_times, max_size=4))
    @settings(max_examples=120, deadline=None)
    def test_insert_remove_stream(self, pool, script, probes):
        arr, spec = TwoDimTree(), NodeTree()
        live: list[IdlePeriod] = []
        todo = list(pool)
        for op, pick in script:
            if op == "insert" and todo:
                p = todo.pop(pick % len(todo))
                arr.insert(p)
                spec.insert(p)
                live.append(p)
            elif op == "remove" and live:
                p = live.pop(pick % len(live))
                arr.remove(p)
                spec.remove(p)
        arr.validate()
        spec.validate()
        _assert_query_equivalent(arr, spec, probes)

    @given(pool=period_pools(), probes=st.lists(_times, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_bulk_load(self, pool, probes):
        arr, spec = TwoDimTree(), NodeTree()
        arr.bulk_load(pool)
        spec.bulk_load(pool)
        arr.validate()
        spec.validate()
        _assert_query_equivalent(arr, spec, probes)

    @given(
        pool=period_pools(),
        split=st.integers(0, 10**6),
        drop=st.integers(0, 10**6),
        probes=st.lists(_times, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_apply_batch_matches_sequential_spec(self, pool, split, drop, probes):
        """The fused batch path must land on the same contents and answers
        as the spec tree doing each removal then each insert one at a time
        (both the per-op-walk and the in-place bulk-rebuild regimes are
        exercised — batch size vs tree size varies freely here)."""
        if not pool:
            return
        cut = split % (len(pool) + 1)
        seeded, incoming = pool[:cut], pool[cut:]
        arr, spec = TwoDimTree(), NodeTree()
        arr.bulk_load(seeded)
        spec.bulk_load(seeded)
        n_drop = drop % (len(seeded) + 1)
        removals = seeded[:n_drop]
        arr.apply_batch(removals, incoming)
        for p in removals:
            spec.remove(p)
        for p in incoming:
            spec.insert(p)
        arr.validate()
        spec.validate()
        _assert_query_equivalent(arr, spec, probes)

    @given(pool=period_pools(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_apply_batch_missing_removal_raises(self, pool):
        arr = TwoDimTree()
        arr.bulk_load(pool)
        ghost = IdlePeriod(server=0, st=1.0, et=2.0)
        with pytest.raises(KeyError):
            arr.apply_batch([ghost], [])


class TestSnapshotByteIdentity:
    def test_export_restore_export_is_byte_identical(self):
        """Snapshot round-trip on the array-backed layout: the calendar's
        exported state — and therefore the persisted snapshot bytes — must
        survive export → restore → export unchanged after a workload that
        exercises the batch-reserve path."""
        from repro.core.calendar import AvailabilityCalendar
        from repro.service.snapshot import snapshot_bytes

        cal = AvailabilityCalendar(n_servers=16, tau=900.0, q_slots=96)
        t = 0.0
        for i in range(40):
            sr, er = t + 100.0 * (i % 7), t + 100.0 * (i % 7) + 450.0
            found = cal.find_feasible(sr, er, 1 + i % 4)
            if found is not None:
                cal.allocate(found, sr, er, rid=i)
            if i % 9 == 4:
                cal.advance(t + 50.0)
                t += 50.0
        first = cal.export_state()
        restored = AvailabilityCalendar.from_state(first)
        second = restored.export_state()
        assert snapshot_bytes(first) == snapshot_bytes(second)
        # and the restored calendar answers queries identically
        probe = cal.find_feasible(t + 200.0, t + 600.0, 3)
        probe_restored = restored.find_feasible(t + 200.0, t + 600.0, 3)
        if probe is None:
            assert probe_restored is None
        else:
            assert _uids(probe) == _uids(probe_restored)


_CORPUS = Path(__file__).parent.parent / "verify" / "corpus"


@pytest.mark.skipif(
    not backend_info()["compiled"],
    reason="compiled core not installed (build with REPRO_MYPYC=1); "
    "the interpreted build replays this corpus in tests/verify/test_corpus.py",
)
@pytest.mark.parametrize("path", sorted(_CORPUS.glob("*.json")), ids=lambda p: p.stem)
def test_corpus_replays_clean_on_compiled_core(path: Path) -> None:
    """The minimized divergence corpus, replayed with the mypyc-compiled
    kernel underneath: lock-step with the reference scheduler must hold
    under the compiled build exactly as it does interpreted."""
    from repro.verify.differ import load_trace, run_stream

    stream = load_trace(str(path))
    result = run_stream(stream, state_stride=1)
    assert result.divergence is None, result.divergence.describe()
    assert result.ops_run == len(stream.ops)


def test_backend_info_reports_pure_fallback_consistently() -> None:
    info = backend_info()
    assert info["backend"] in ("compiled", "pure-python")
    assert info["compiled"] == (info["backend"] == "compiled")
    assert isinstance(info["module"], str)


def test_phase2_inf_need_equals_int_overshoot() -> None:
    """``need=math.inf`` (the range-search calling convention) must list
    exactly what a huge integer ``need`` with ``partial=True`` lists."""
    tree = TwoDimTree()
    tree.bulk_load(
        [IdlePeriod(server=s, st=float(s % 5), et=float(50 + s)) for s in range(30)]
    )
    _, marks = tree.phase1(10.0)
    full = tree.phase2(list(marks), 60.0, math.inf)
    _, marks2 = tree.phase1(10.0)
    overshoot = tree.phase2(list(marks2), 60.0, 10**9, partial=True)
    assert _uids(full) == _uids(overshoot)
