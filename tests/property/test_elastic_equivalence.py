"""Property tests for the elastic pool: production == oracle under
interleaved reserve/cancel/join/drain/leave streams.

Two halves:

* **Lock-step equivalence** — hypothesis generates op streams that mix
  reservations and cancels with runtime pool mutations; the differ runs
  the production :class:`~repro.facade.CoAllocationScheduler` against
  the :class:`~repro.verify.oracle.ReferenceScheduler` and every single
  verdict (accepts field-by-field, refusals by error code), plus the
  full per-server idle state and the pool's lifecycle statuses, must
  agree.
* **Drain preserves commitments** — draining a server must never touch
  its existing busy intervals: with the clock held still, the drained
  server's idle-period list is byte-identical no matter how much new
  traffic arrives afterwards.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Request
from repro.facade import CoAllocationScheduler
from repro.verify.differ import run_stream
from repro.verify.genstream import Stream

N = 5
TAU = 10.0
Q = 16

CONFIG = {"n_servers": N, "tau": TAU, "q_slots": Q, "delta_t": None, "r_max": None}


@st.composite
def elastic_streams(draw):
    """Reserve/cancel traffic interleaved with pool mutations.

    Server targets for drain/remove are drawn from a range wider than
    the pool can ever grow, so out-of-range (MALFORMED) and
    illegal-transition (CONFLICT) refusals are generated alongside the
    successes — refusal verdicts are compared like any other result.
    """
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    t = 0.0
    rid = 0
    for _ in range(n_ops):
        t += draw(st.floats(min_value=0.0, max_value=2.0 * TAU, allow_nan=False))
        kind = draw(
            st.sampled_from(
                ["reserve", "reserve", "reserve", "cancel", "add_servers",
                 "drain", "remove", "pool_status"]
            )
        )
        if kind == "reserve":
            lead = draw(st.sampled_from([0.0, 0.0, TAU, 4.0 * TAU]))
            lr = draw(st.floats(min_value=1.0, max_value=4.0 * TAU, allow_nan=False))
            nr = draw(st.integers(min_value=1, max_value=N + 2))
            ops.append(
                {"kind": "reserve", "rid": rid, "qr": t, "sr": t + lead,
                 "lr": lr, "nr": nr}
            )
            rid += 1
        elif kind == "cancel":
            if rid == 0:
                continue
            ops.append({"kind": "cancel", "rid": draw(st.integers(0, rid - 1))})
        elif kind == "add_servers":
            ops.append(
                {"kind": "add_servers", "qr": t,
                 "count": draw(st.integers(min_value=-1, max_value=3))}
            )
        elif kind in ("drain", "remove"):
            ops.append(
                {"kind": kind, "qr": t,
                 "server": draw(st.integers(min_value=0, max_value=3 * N))}
            )
        else:
            ops.append({"kind": "pool_status", "qr": t})
    return Stream(config=dict(CONFIG), ops=ops)


@given(elastic_streams())
@settings(max_examples=60, deadline=None)
def test_production_matches_oracle_under_pool_mutations(stream) -> None:
    result = run_stream(stream)
    assert result.ok, result.divergence.describe()


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=3.0 * TAU, allow_nan=False),
            st.floats(min_value=1.0, max_value=4.0 * TAU, allow_nan=False),
            st.integers(min_value=1, max_value=N),
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=0, max_value=N - 1),
)
@settings(max_examples=60, deadline=None)
def test_drain_leaves_existing_busy_intervals_untouched(follow_on, victim) -> None:
    scheduler = CoAllocationScheduler(n_servers=N, tau=TAU, q_slots=Q)
    # commit some load so the victim usually holds reservations
    for i in range(6):
        scheduler.schedule_detailed(
            Request(rid=i, qr=0.0, sr=float(i), lr=TAU, nr=2)
        )
    scheduler.drain(victim)
    before = [
        (p.st, p.et) for p in scheduler.calendar.idle_periods(victim)
    ]
    # the clock never moves (qr=0 throughout), so any change to the
    # drained server's timeline would be a new booking — forbidden
    for j, (lead, lr, nr) in enumerate(follow_on):
        scheduler.schedule_detailed(
            Request(rid=100 + j, qr=0.0, sr=lead, lr=lr, nr=nr)
        )
    after = [
        (p.st, p.et) for p in scheduler.calendar.idle_periods(victim)
    ]
    assert after == before
