"""Property tests for the batch baselines and the simulation driver.

Invariants (DESIGN.md §6):

* capacity is never exceeded at any instant, under any policy;
* EASY backfilling never delays the queue head beyond the start FCFS
  would have given it *at the moment it became head* (head protection);
* conservative backfilling and FCFS never start jobs out of arrival
  order *for equal-width saturating jobs*;
* every submitted job is exactly one of {done, rejected} once the event
  heap drains (conservation).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Request
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    OnlineScheduler,
)
from repro.sim.driver import run_simulation

N = 8


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    t = 0.0
    reqs = []
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False, width=32))
        lr = draw(st.floats(min_value=1.0, max_value=60.0, allow_nan=False, width=32))
        nr = draw(st.integers(min_value=1, max_value=N))
        reqs.append(Request(qr=t, sr=t, lr=lr, nr=nr, rid=i))
    return reqs


def capacity_respected(records, n_servers):
    """Sweep start/end events; concurrent width must never exceed N."""
    events = []
    for r in records:
        if r.rejected:
            continue
        events.append((r.start, 1, r.nr))
        events.append((r.end, 0, -r.nr))
    events.sort()  # ends (flag 0) before starts at equal times
    width = 0
    for _, _, delta in events:
        width += delta
        assert width <= n_servers, f"capacity exceeded: {width} > {n_servers}"


SCHEDULERS = [
    lambda: FCFSScheduler(N),
    lambda: EasyBackfillScheduler(N),
    lambda: ConservativeBackfillScheduler(N),
    lambda: OnlineScheduler(n_servers=N, tau=10.0, q_slots=24),
]


class TestUniversalInvariants:
    @given(requests=workloads())
    @settings(max_examples=80, deadline=None)
    def test_capacity_never_exceeded(self, requests):
        for factory in SCHEDULERS:
            result = run_simulation(factory(), list(requests))
            capacity_respected(result.records, N)

    @given(requests=workloads())
    @settings(max_examples=80, deadline=None)
    def test_job_conservation(self, requests):
        for factory in SCHEDULERS:
            result = run_simulation(factory(), list(requests))
            assert len(result.records) == len(requests)
            assert result.unfinished == 0
            for r in result.records:
                assert r.rejected or r.start >= r.sr

    @given(requests=workloads())
    @settings(max_examples=50, deadline=None)
    def test_batch_never_rejects_feasible_sizes(self, requests):
        for factory in SCHEDULERS[:3]:
            result = run_simulation(factory(), list(requests))
            assert result.rejected == 0  # nr <= N always, batch queues forever


class TestOrderingInvariants:
    @given(requests=workloads())
    @settings(max_examples=50, deadline=None)
    def test_fcfs_starts_in_arrival_order(self, requests):
        result = run_simulation(FCFSScheduler(N), list(requests))
        starts = [r.start for r in sorted(result.records, key=lambda r: r.rid)]
        for earlier, later in zip(starts, starts[1:]):
            assert earlier <= later, "FCFS started a later arrival first"

    @given(requests=workloads())
    @settings(max_examples=50, deadline=None)
    def test_easy_respects_dominance_order(self, requests):
        """If job *a* arrived before job *b* and is no wider and no longer,
        EASY must start *a* no later than *b*: in every dispatch pass the
        queue is scanned in arrival order, and any admission test *b*
        passes (fits now; ends before the shadow; fits in the surplus)
        *a* passes too.  This is the provable fragment of 'backfilling
        does not reorder comparable jobs' — unconstrained jobs *can* be
        reordered, which is why a blanket EASY-vs-FCFS comparison is not
        a theorem."""
        easy = run_simulation(EasyBackfillScheduler(N), list(requests))
        recs = sorted(easy.records, key=lambda r: r.rid)  # rid = arrival order
        for i, a in enumerate(recs):
            for b in recs[i + 1 :]:
                if a.nr <= b.nr and a.lr <= b.lr:
                    assert a.start <= b.start + 1e-9, (
                        f"job {a.rid} (<= in both dims) started after {b.rid}"
                    )

    @given(requests=workloads())
    @settings(max_examples=50, deadline=None)
    def test_conservative_no_worse_than_fcfs_per_job(self, requests):
        """Conservative backfilling guarantees each job a start no later
        than its FCFS reservation; with replanning-compression it can
        only move starts earlier."""
        fcfs = run_simulation(FCFSScheduler(N), list(requests))
        cons = run_simulation(ConservativeBackfillScheduler(N), list(requests))
        f = {r.rid: r.start for r in fcfs.records if not r.rejected}
        c = {r.rid: r.start for r in cons.records if not r.rejected}
        for rid, c_start in c.items():
            assert c_start <= f[rid] + 1e-9, f"job {rid} delayed vs FCFS"
