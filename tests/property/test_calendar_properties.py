"""Property tests for the availability calendar.

The central invariant: for every server, the idle periods always
partition the complement of that server's committed reservations — no
overlaps, no gaps, regardless of the interleaving of allocations,
releases and clock advances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.types import INF, Request

TAU = 10.0
Q = 20
N = 4


@st.composite
def scripts(draw):
    """Interleaved schedule / advance / cancel operations."""
    n = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for i in range(n):
        kind = draw(st.sampled_from(["schedule", "schedule", "schedule", "advance", "release"]))
        if kind == "schedule":
            lead = draw(st.sampled_from([0.0, 0.0, 15.0, 40.0]))
            lr = draw(st.floats(min_value=1.0, max_value=60.0, allow_nan=False, width=32))
            nr = draw(st.integers(min_value=1, max_value=N))
            ops.append(("schedule", lead, lr, nr))
        elif kind == "advance":
            ops.append(("advance", draw(st.floats(min_value=0.0, max_value=25.0, width=32)), 0, 0))
        else:
            ops.append(("release", draw(st.integers(0, 10**6)), 0, 0))
    return ops


def check_partition(cal: AvailabilityCalendar, reservations_by_server: dict[int, list]):
    """Idle periods + live reservations must tile [horizon_start, inf) per server."""
    for server in range(N):
        pieces = []
        for p in cal.idle_periods(server):
            pieces.append((p.st, p.et, "idle"))
        for s, e in reservations_by_server.get(server, []):
            if e > cal.horizon_start:  # history before the horizon is trimmed
                pieces.append((max(s, cal.horizon_start), e, "busy"))
        pieces.sort()
        # pieces must be non-overlapping and contiguous, ending at infinity
        for (s1, e1, _), (s2, e2, _) in zip(pieces, pieces[1:]):
            assert e1 == s2, f"server {server}: gap or overlap between {e1} and {s2}"
        assert pieces, f"server {server} has no coverage at all"
        assert pieces[-1][1] == INF, f"server {server} does not extend to infinity"


class TestPartitionInvariant:
    @given(script=scripts())
    @settings(max_examples=150, deadline=None)
    def test_idle_periods_tile_the_complement(self, script):
        cal = AvailabilityCalendar(N, TAU, Q)
        alloc = OnlineCoAllocator(cal, delta_t=TAU, r_max=6)
        reservations: dict[int, list] = {s: [] for s in range(N)}
        live = []  # (rid, allocation)
        rid = 0
        for kind, a, b, c in script:
            if kind == "schedule":
                req = Request(qr=cal.now, sr=cal.now + a, lr=b, nr=c, rid=rid)
                rid += 1
                result = alloc.schedule(req)
                if result is not None:
                    live.append(result)
                    for res in result.reservations:
                        reservations[res.server].append((res.start, res.end))
            elif kind == "advance":
                cal.advance(cal.now + a)
            else:  # release a still-active allocation in its entirety
                future = [
                    x for x in live if x.start >= cal.now
                ]
                if future:
                    chosen = future[int(a) % len(future)]
                    live.remove(chosen)
                    for res in chosen.reservations:
                        cal.release(res.server, res.start, res.end)
                        reservations[res.server].remove((res.start, res.end))
            cal.validate()
            check_partition(cal, reservations)

    @given(script=scripts())
    @settings(max_examples=75, deadline=None)
    def test_feasibility_never_contradicts_idle_lists(self, script):
        """find_feasible's verdict must match a scan of the idle lists."""
        cal = AvailabilityCalendar(N, TAU, Q)
        alloc = OnlineCoAllocator(cal, delta_t=TAU, r_max=6)
        rid = 0
        for kind, a, b, c in script:
            if kind == "schedule":
                req = Request(qr=cal.now, sr=cal.now + a, lr=b, nr=c, rid=rid)
                rid += 1
                alloc.schedule(req)
            elif kind == "advance":
                cal.advance(cal.now + a)
            # probe a few windows
            for offset, dur in [(0.0, 5.0), (13.0, 30.0), (55.0, 90.0)]:
                sr = cal.now + offset
                er = sr + dur
                if not cal.in_horizon(sr):
                    continue
                for nr in (1, N):
                    found = cal.find_feasible(sr, er, nr)
                    manual = sum(
                        1
                        for s in range(N)
                        if any(p.is_feasible(sr, er) for p in cal.idle_periods(s))
                    )
                    if manual >= nr:
                        assert found is not None and len(found) == nr
                    else:
                        assert found is None
