"""Dense (paper-literal) indexing ≡ tail-index optimization.

DESIGN.md claims the tail index is a pure *representation* change: the
paper registers trailing idle periods in every slot tree, we keep them in
one sorted array, and on identical calendar state the two must agree on
every feasibility question.  (Which of several equally feasible servers
gets picked is tie-order the paper leaves unspecified; the two layouts
break ties differently, so whole-run outcome equality is not the claim —
per-state equivalence is.)

The harness therefore keeps the two calendars in lock-step: the dense
calendar drives scheduling, every allocation is mirrored onto the tail
calendar server-for-server, and after each step the feasibility verdicts
and range-search results of both representations are compared on the
*same* state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.types import Request

TAU = 10.0
Q = 24
N = 6
RMAX = 8


@st.composite
def request_streams(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    reqs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False, width=32))
        lead = draw(st.sampled_from([0.0, 0.0, 15.0, 60.0]))
        lr = draw(st.floats(min_value=1.0, max_value=80.0, allow_nan=False, width=32))
        nr = draw(st.integers(min_value=1, max_value=N))
        reqs.append(Request(qr=t, sr=t + lead, lr=lr, nr=nr, rid=i))
    return reqs


def _mirror(tail_cal: AvailabilityCalendar, allocation) -> None:
    """Replay a dense-mode allocation onto the tail calendar, server-exact."""
    for res in allocation.reservations:
        host = [
            p
            for p in tail_cal.idle_periods(res.server)
            if p.is_feasible(res.start, res.end)
        ]
        assert host, f"tail calendar cannot host mirrored reservation {res}"
        tail_cal.allocate([host[0]], res.start, res.end, rid=res.rid)


def lockstep(requests):
    dense = AvailabilityCalendar(N, TAU, Q, indexing="dense")
    tail = AvailabilityCalendar(N, TAU, Q, indexing="tail")
    alloc = OnlineCoAllocator(dense, delta_t=TAU, r_max=RMAX)
    for req in requests:
        dense.advance(req.qr)
        tail.advance(req.qr)
        # probe a few windows on the *identical* state
        yield req, dense, tail
        a = alloc.schedule(req)
        if a is not None:
            _mirror(tail, a)
    dense.validate()
    tail.validate()


@st.composite
def op_streams(draw):
    """Randomized allocate / release / advance sequences.

    ``jump`` advances by half a horizon up to two whole horizons, forcing
    slot-tree rollover to seed fresh slots from the pending buckets and
    the unbounded-period index — the paths a pure arrival stream rarely
    stresses.
    """
    n = draw(st.integers(min_value=5, max_value=25))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["alloc", "alloc", "alloc", "release", "advance", "jump"]))
        if kind == "alloc":
            lead = draw(st.sampled_from([0.0, 0.0, 15.0, 60.0, 150.0]))
            lr = draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False, width=32))
            nr = draw(st.integers(min_value=1, max_value=N))
            ops.append(("alloc", lead, lr, nr))
        elif kind == "release":
            pick = draw(st.integers(min_value=0, max_value=10**6))
            frac = draw(st.floats(min_value=0.0, max_value=0.875, allow_nan=False, width=32))
            ops.append(("release", pick, frac))
        elif kind == "advance":
            dt = draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False, width=32))
            ops.append(("advance", dt))
        else:
            dt = draw(st.floats(min_value=120.0, max_value=500.0, allow_nan=False, width=32))
            ops.append(("jump", dt))
    return ops


def churn(ops):
    """Drive both calendars through an op stream; yields after each op."""
    dense = AvailabilityCalendar(N, TAU, Q, indexing="dense")
    tail = AvailabilityCalendar(N, TAU, Q, indexing="tail")
    alloc = OnlineCoAllocator(dense, delta_t=TAU, r_max=RMAX)
    now = 0.0
    live = []  # mirrored reservations not yet released
    rid = 0
    for op in ops:
        kind = op[0]
        if kind in ("advance", "jump"):
            now += op[1]
            dense.advance(now)
            tail.advance(now)
        elif kind == "alloc":
            _, lead, lr, nr = op
            req = Request(qr=now, sr=now + lead, lr=lr, nr=nr, rid=rid)
            rid += 1
            a = alloc.schedule(req)
            if a is not None:
                _mirror(tail, a)
                live.extend((r.server, r.start, r.end) for r in a.reservations)
        else:
            _, pick, frac = op
            if not live:
                continue
            server, start, end = live.pop(pick % len(live))
            base = max(start, now)
            cut = base + frac * (end - base)
            if not now <= cut < end:
                continue  # reservation already fully in the past
            dense.release(server, cut, end)
            tail.release(server, cut, end)
        yield dense, tail, now


class TestDenseEquivalenceUnderChurn:
    @given(ops=op_streams())
    @settings(max_examples=60, deadline=None)
    def test_feasibility_and_range_agree(self, ops):
        for dense, tail, now in churn(ops):
            for k in (0, 3, RMAX):
                t = now + k * TAU
                for nr in (1, N):
                    d = dense.find_feasible(t, t + 35.0, nr)
                    s = tail.find_feasible(t, t + 35.0, nr)
                    assert (d is None) == (s is None), f"verdict differs at t={t}, nr={nr}"
                    if d is not None:
                        assert len(d) == len(s) == nr
            window = (now + 5.0, now + 35.0)
            if dense.in_horizon(window[0]):
                a = {(p.server, p.st, p.et) for p in dense.range_search(*window)}
                b = {(p.server, p.st, p.et) for p in tail.range_search(*window)}
                assert a == b, f"range search differs at {window}"

    @given(ops=op_streams())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_after_every_operation(self, ops):
        for dense, tail, _ in churn(ops):
            dense.validate()
            tail.validate()


class TestDenseEquivalence:
    @given(requests=request_streams())
    @settings(max_examples=120, deadline=None)
    def test_feasibility_verdicts_agree_on_identical_state(self, requests):
        for req, dense, tail in lockstep(requests):
            base = max(req.sr, req.qr)
            for k in range(RMAX):
                t = base + k * TAU
                if not dense.in_horizon(t):
                    break
                for nr in (1, req.nr, N):
                    d = dense.find_feasible(t, t + req.lr, nr)
                    s = tail.find_feasible(t, t + req.lr, nr)
                    assert (d is None) == (s is None), (
                        f"verdict differs at t={t}, nr={nr} for {req}"
                    )
                    if d is not None:
                        assert len(d) == len(s) == nr

    @given(requests=request_streams())
    @settings(max_examples=80, deadline=None)
    def test_range_search_identical_on_identical_state(self, requests):
        for req, dense, tail in lockstep(requests):
            window = (req.qr + 5.0, req.qr + 25.0)
            if dense.in_horizon(window[0]):
                a = {(p.server, p.st, p.et) for p in dense.range_search(*window)}
                b = {(p.server, p.st, p.et) for p in tail.range_search(*window)}
                assert a == b, f"range search differs at {window}"

    @given(requests=request_streams())
    @settings(max_examples=60, deadline=None)
    def test_mirrored_states_stay_identical(self, requests):
        """The per-server idle periods of both calendars coincide after
        every mirrored allocation (ignoring uids)."""
        for req, dense, tail in lockstep(requests):
            for server in range(N):
                d = [(p.st, p.et) for p in dense.idle_periods(server)]
                s = [(p.st, p.et) for p in tail.idle_periods(server)]
                assert d == s, f"server {server} diverged: {d} vs {s}"
