"""Property tests for workload infrastructure."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.profile import AvailabilityProfile
from repro.workloads.swf import SWFJob, read_swf, swf_to_requests, write_swf

_times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, width=32)
_counts = st.integers(min_value=-1, max_value=4096)


@st.composite
def swf_jobs(draw):
    return SWFJob(
        job_number=draw(st.integers(1, 10**6)),
        submit_time=draw(_times),
        wait_time=draw(_times),
        run_time=draw(_times),
        allocated_processors=draw(_counts),
        average_cpu_time=draw(_times),
        used_memory=draw(_times),
        requested_processors=draw(_counts),
        requested_time=draw(_times),
        requested_memory=draw(_times),
        status=draw(st.sampled_from([-1, 0, 1, 5])),
        user_id=draw(_counts),
        group_id=draw(_counts),
        executable=draw(_counts),
        queue=draw(_counts),
        partition=draw(_counts),
        preceding_job=draw(_counts),
        think_time=draw(_times),
    )


class TestSWFRoundTrip:
    @given(jobs=st.lists(swf_jobs(), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_write_read_identity(self, jobs):
        buf = io.StringIO()
        write_swf(jobs, buf)
        parsed, _ = read_swf(io.StringIO(buf.getvalue()))
        assert parsed == jobs

    @given(jobs=st.lists(swf_jobs(), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_conversion_only_keeps_usable(self, jobs):
        requests = swf_to_requests(jobs)
        for r in requests:
            assert r.lr > 0 and r.nr > 0
            assert r.qr == r.sr
        usable = [j for j in jobs if j.processors() > 0 and j.estimated_runtime() > 0]
        assert len(requests) == len(usable)


@st.composite
def reservation_scripts(draw):
    n = draw(st.integers(0, 20))
    out = []
    for _ in range(n):
        start = draw(st.floats(min_value=0.0, max_value=100.0, width=32))
        dur = draw(st.floats(min_value=0.5, max_value=50.0, width=32))
        count = draw(st.integers(1, 8))
        out.append((start, start + dur, count))
    return out


class TestProfileProperties:
    @given(script=reservation_scripts())
    @settings(max_examples=150, deadline=None)
    def test_reserve_then_free_at_consistent(self, script):
        """free_at must equal capacity minus the stacked reservations."""
        profile = AvailabilityProfile(8)
        accepted = []
        for start, end, count in script:
            try:
                profile.reserve(start, end, count)
                accepted.append((start, end, count))
            except RuntimeError:
                pass  # over capacity at some step — fine, must be unchanged
            profile.validate()
        for probe in (0.0, 10.0, 33.3, 75.0, 149.9, 200.0):
            expected = 8 - sum(c for s, e, c in accepted if s <= probe < e)
            assert profile.free_at(probe) == expected

    @given(script=reservation_scripts(), n=st.integers(1, 8), dur=st.floats(0.5, 30.0, width=32))
    @settings(max_examples=150, deadline=None)
    def test_earliest_fit_is_correct_and_earliest(self, script, n, dur):
        profile = AvailabilityProfile(8)
        for start, end, count in script:
            try:
                profile.reserve(start, end, count)
            except RuntimeError:
                pass
        t = profile.earliest_fit(0.0, dur, n)
        # the returned slot truly fits
        assert profile.fits(t, dur, n)
        # no earlier breakpoint-aligned start fits
        for bp, _ in profile.steps():
            if bp < t:
                assert not profile.fits(bp, dur, n), f"earlier fit at {bp} missed"

    @given(script=reservation_scripts())
    @settings(max_examples=80, deadline=None)
    def test_advance_preserves_future(self, script):
        profile = AvailabilityProfile(8)
        for start, end, count in script:
            try:
                profile.reserve(start, end, count)
            except RuntimeError:
                pass
        before = {t: profile.free_at(t) for t in (60.0, 90.0, 130.0)}
        profile.advance(50.0)
        profile.validate()
        for t, free in before.items():
            assert profile.free_at(t) == free
