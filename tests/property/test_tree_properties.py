"""Property-based tests for the 2-dimensional slot tree.

The tree is an *index*; every query must agree with a brute-force scan of
the same period set, and every mutation must preserve the structural
invariants checked by ``validate()``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slot_tree import TwoDimTree
from repro.core.types import INF, IdlePeriod

# bounded floats that can't collapse intervals via rounding
_times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32)


@st.composite
def period_lists(draw, max_size=40):
    n = draw(st.integers(min_value=0, max_value=max_size))
    periods = []
    for _ in range(n):
        a = draw(_times)
        b = draw(_times)
        lo, hi = min(a, b), max(a, b)
        if lo == hi:
            hi = lo + 1.0
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            hi = INF  # occasional unbounded period
        periods.append(IdlePeriod(server=draw(st.integers(0, 15)), st=lo, et=hi))
    return periods


@st.composite
def churn_scripts(draw):
    """A sequence of insert/remove operations (remove picks a live index)."""
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "remove"]), st.integers(0, 10**6)),
            max_size=80,
        )
    )


class TestQueriesAgainstBruteForce:
    @given(periods=period_lists(), sr=_times)
    @settings(max_examples=150, deadline=None)
    def test_phase1_count_matches_naive(self, periods, sr):
        tree = TwoDimTree()
        tree.bulk_load(periods)
        count, _ = tree.phase1(sr)
        assert count == sum(1 for p in periods if p.st <= sr)

    @given(periods=period_lists(), sr=_times, dur=_times)
    @settings(max_examples=150, deadline=None)
    def test_feasible_set_matches_naive(self, periods, sr, dur):
        tree = TwoDimTree()
        tree.bulk_load(periods)
        er = sr + dur
        naive = {p.uid for p in periods if p.st <= sr and p.et >= er}
        found = tree.range_search(sr, er) if sr < er else None
        if sr < er:
            assert {p.uid for p in found} == naive

    @given(periods=period_lists(), sr=_times, dur=_times, nr=st.integers(1, 10))
    @settings(max_examples=150, deadline=None)
    def test_find_feasible_verdict_matches_naive(self, periods, sr, dur, nr):
        tree = TwoDimTree()
        tree.bulk_load(periods)
        er = sr + max(dur, 1.0)
        n_feasible = sum(1 for p in periods if p.st <= sr and p.et >= er)
        found = tree.find_feasible(sr, er, nr)
        if n_feasible >= nr:
            assert found is not None and len(found) == nr
            assert all(p.is_feasible(sr, er) for p in found)
            assert len({p.uid for p in found}) == nr
        else:
            assert found is None


class TestStructuralInvariants:
    @given(periods=period_lists())
    @settings(max_examples=100, deadline=None)
    def test_bulk_load_valid(self, periods):
        tree = TwoDimTree()
        tree.bulk_load(periods)
        tree.validate()
        assert len(tree) == len(periods)

    @given(periods=period_lists(), script=churn_scripts())
    @settings(max_examples=100, deadline=None)
    def test_churn_preserves_invariants_and_contents(self, periods, script):
        tree = TwoDimTree()
        live: list[IdlePeriod] = []
        pool = list(periods)
        for op, pick in script:
            if op == "insert" and pool:
                p = pool.pop(pick % len(pool))
                tree.insert(p)
                live.append(p)
            elif op == "remove" and live:
                p = live.pop(pick % len(live))
                tree.remove(p)
        tree.validate()
        assert sorted(p.uid for p in tree.periods()) == sorted(p.uid for p in live)

    @given(periods=period_lists(max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_depth_is_logarithmic(self, periods):
        tree = TwoDimTree()
        for p in periods:
            tree.insert(p)
        if not periods:
            return

        kernel = tree._kernel

        def depth(node):
            if node == -1 or kernel.left[node] == -1:  # empty or leaf
                return 1
            return 1 + max(depth(kernel.left[node]), depth(kernel.right[node]))

        # alpha-weight-balance implies depth <= log_{1/alpha}(n) + O(1)
        bound = math.log(max(len(periods), 2), 4.0 / 3.0) + 2
        assert depth(kernel.root) <= bound
