"""Certificate-checking the online co-allocator against brute force.

Two schedulers that pick *different servers* for the same requests drift
apart: which servers a job lands on changes future per-server
fragmentation, so global outcomes (start times, verdicts) are policy
dependent and cannot be compared across implementations.  What *is*
implementation independent is local correctness: given the allocator's
own committed reservations, every attempt's verdict must match a
brute-force feasibility check —

* every failed attempt at time ``t`` really had fewer than ``n_r``
  servers free throughout ``[t, t + l_r)``;
* the successful attempt really had at least ``n_r``;
* the granted servers really were free (no double booking).

These certificates pin down Phase 1, Phase 2 and the ``Δt``/``R_max``
retry loop exactly, with no reliance on tree internals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import AvailabilityCalendar
from repro.core.coalloc import OnlineCoAllocator
from repro.core.linear import LinearScanAllocator
from repro.core.types import Request

TAU = 10.0
Q = 24
N = 6
DELTA = 10.0
RMAX = 8


@st.composite
def request_streams(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    reqs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False, width=32))
        lead = draw(st.sampled_from([0.0, 0.0, 0.0, 5.0, 20.0, 60.0]))
        lr = draw(st.floats(min_value=1.0, max_value=80.0, allow_nan=False, width=32))
        nr = draw(st.integers(min_value=1, max_value=N))
        reqs.append(Request(qr=t, sr=t + lead, lr=lr, nr=nr, rid=i))
    return reqs


class Ledger:
    """Brute-force view of every commitment the allocator has made."""

    def __init__(self) -> None:
        self.busy: dict[int, list[tuple[float, float]]] = {s: [] for s in range(N)}

    def record(self, allocation) -> None:
        for res in allocation.reservations:
            self.busy[res.server].append((res.start, res.end))

    def free_count(self, start: float, end: float) -> int:
        count = 0
        for intervals in self.busy.values():
            if all(e <= start or s >= end for s, e in intervals):
                count += 1
        return count

    def is_free(self, server: int, start: float, end: float) -> bool:
        return all(e <= start or s >= end for s, e in self.busy[server])


def run_with_certificates(requests):
    cal = AvailabilityCalendar(N, TAU, Q)
    alloc = OnlineCoAllocator(cal, delta_t=DELTA, r_max=RMAX)
    ledger = Ledger()
    certificates = []
    for req in requests:
        cal.advance(req.qr)
        pre_horizon_end = cal.horizon_end
        a = alloc.schedule(req)
        certificates.append((req, a, pre_horizon_end))
        if a is not None:
            # the grant must be consistent *before* we record it
            for res in a.reservations:
                assert ledger.is_free(res.server, res.start, res.end), (
                    f"double booking on server {res.server} for {req}"
                )
            ledger.record(a)
    return cal, ledger, certificates


class TestCertificates:
    @given(requests=request_streams())
    @settings(max_examples=200, deadline=None)
    def test_every_attempt_verdict_is_correct(self, requests):
        cal, _, certificates = run_with_certificates(requests)
        # rebuild the ledger incrementally so each request is checked
        # against exactly the state the allocator saw
        ledger = Ledger()
        for req, a, horizon_end in certificates:
            base = max(req.sr, req.qr)
            if a is None:
                # all RMAX attempts (or those within horizon) must truly fail
                for k in range(RMAX):
                    t = base + k * DELTA
                    if t >= horizon_end:
                        break
                    assert ledger.free_count(t, t + req.lr) < req.nr, (
                        f"{req}: rejected but attempt {k} at t={t} had room"
                    )
            else:
                k_success = a.attempts - 1
                assert a.start == base + k_success * DELTA
                for k in range(k_success):
                    t = base + k * DELTA
                    assert ledger.free_count(t, t + req.lr) < req.nr, (
                        f"{req}: delayed to attempt {k_success} but attempt {k} had room"
                    )
                assert ledger.free_count(a.start, a.end) >= req.nr
                ledger.record(a)
        cal.validate()

    @given(requests=request_streams())
    @settings(max_examples=100, deadline=None)
    def test_no_double_booking_ever(self, requests):
        _, ledger, _ = run_with_certificates(requests)
        for server, intervals in ledger.busy.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2, f"server {server}: [{s1},{e1}) overlaps [{s2},{e2})"

    @given(requests=request_streams())
    @settings(max_examples=100, deadline=None)
    def test_allocations_respect_request_shape(self, requests):
        _, _, certificates = run_with_certificates(requests)
        for req, a, _ in certificates:
            if a is None:
                continue
            assert a.start >= req.sr
            assert a.end == a.start + req.lr
            assert a.delay == a.start - req.sr
            assert 1 <= a.attempts <= RMAX
            assert len(set(a.servers)) == req.nr

    @given(requests=request_streams())
    @settings(max_examples=50, deadline=None)
    def test_linear_allocator_satisfies_same_certificates(self, requests):
        """The independent brute-force scheduler obeys the same local
        correctness contract (it shares no code with the tree path)."""
        lin = LinearScanAllocator(N, delta_t=DELTA, r_max=RMAX, horizon=Q * TAU)
        ledger = Ledger()
        for req in requests:
            lin.advance(req.qr)
            horizon_end = lin.horizon_end
            a = lin.schedule(req)
            base = max(req.sr, req.qr)
            if a is None:
                for k in range(RMAX):
                    t = base + k * DELTA
                    if t >= horizon_end:
                        break
                    assert ledger.free_count(t, t + req.lr) < req.nr
            else:
                for k in range(a.attempts - 1):
                    t = base + k * DELTA
                    assert ledger.free_count(t, t + req.lr) < req.nr
                assert ledger.free_count(a.start, a.end) >= req.nr
                ledger.record(a)
