"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.types import IdlePeriod


def pytest_collection_modifyitems(items: list[pytest.Item]) -> None:
    """Every test under tests/service/ talks to a real server — tag the
    whole directory so `-m "not service"` works without per-file marks."""
    for item in items:
        if "tests/service/" in str(item.path).replace("\\", "/"):
            item.add_marker(pytest.mark.service)


def make_periods(
    n: int,
    seed: int = 0,
    servers: int = 8,
    st_range: tuple[float, float] = (0.0, 100.0),
    et_range: tuple[float, float] = (101.0, 200.0),
) -> list[IdlePeriod]:
    """Random non-degenerate idle periods (ends always after starts)."""
    rng = random.Random(seed)
    return [
        IdlePeriod(
            server=rng.randrange(servers),
            st=rng.uniform(*st_range),
            et=rng.uniform(*et_range),
        )
        for _ in range(n)
    ]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
