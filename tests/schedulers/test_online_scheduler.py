"""Unit tests for the online scheduler adapter + simulation driver."""

import pytest

from repro.core.types import Request
from repro.schedulers import EasyBackfillScheduler, OnlineScheduler
from repro.sim.driver import run_simulation


def req(qr, lr, nr, rid, sr=None):
    return Request(qr=qr, sr=sr if sr is not None else qr, lr=lr, nr=nr, rid=rid)


def make_online(n=4, tau=10.0, q=24, **kw):
    return OnlineScheduler(n_servers=n, tau=tau, q_slots=q, **kw)


class TestOnlineScheduler:
    def test_immediate_allocation(self):
        result = run_simulation(make_online(), [req(0.0, 30.0, 2, 0)])
        rec = result.records[0]
        assert rec.start == 0.0 and rec.attempts == 1 and not rec.rejected

    def test_delayed_allocation_counts_attempts(self):
        result = run_simulation(
            make_online(n=1), [req(0.0, 25.0, 1, 0), req(0.0, 10.0, 1, 1)]
        )
        by_rid = {r.rid: r for r in result.records}
        assert by_rid[1].start == 30.0
        assert by_rid[1].attempts == 4

    def test_rejection_after_r_max(self):
        result = run_simulation(
            make_online(n=1, r_max=2), [req(0.0, 45.0, 1, 0), req(0.0, 10.0, 1, 1)]
        )
        by_rid = {r.rid: r for r in result.records}
        assert by_rid[1].rejected
        assert result.rejected == 1

    def test_deadline_rejection_reports_actual_attempts(self):
        # server busy until t=35; deadline 30 admits starts 0, 10, 20 only,
        # so exactly 3 attempts are made — not R_max
        requests = [
            req(0.0, 35.0, 1, 0),
            Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=1, deadline=30.0),
        ]
        result = run_simulation(make_online(n=1, r_max=6), requests)
        by_rid = {r.rid: r for r in result.records}
        assert by_rid[1].rejected
        assert by_rid[1].attempts == 3

    def test_exhausted_rejection_still_reports_r_max(self):
        result = run_simulation(
            make_online(n=1, r_max=2), [req(0.0, 45.0, 1, 0), req(0.0, 10.0, 1, 1)]
        )
        by_rid = {r.rid: r for r in result.records}
        assert by_rid[1].rejected
        assert by_rid[1].attempts == 2

    def test_oversized_rejected(self):
        result = run_simulation(make_online(n=4), [req(0.0, 10.0, 5, 0)])
        assert result.records[0].rejected

    def test_ops_recorded_per_job(self):
        result = run_simulation(make_online(), [req(0.0, 10.0, 2, 0)])
        assert result.records[0].ops > 0
        assert result.total_ops >= result.records[0].ops

    def test_advance_reservation_honoured(self):
        result = run_simulation(make_online(), [req(0.0, 10.0, 2, 0, sr=50.0)])
        assert result.records[0].start == 50.0
        assert result.records[0].waiting_time == 0.0

    def test_utilization_counts_commitments(self):
        # one job occupying the full machine for the whole makespan
        result = run_simulation(make_online(n=2), [req(0.0, 40.0, 2, 0)])
        assert result.utilization == pytest.approx(1.0)

    def test_defaults_follow_paper(self):
        sched = make_online(q=24)
        assert sched.r_max == 12  # Q / 2
        assert sched.delta_t == 10.0  # tau


class TestDriver:
    def test_records_align_with_requests(self):
        requests = [req(float(i), 10.0, 1, i) for i in range(5)]
        result = run_simulation(make_online(), requests)
        assert [r.rid for r in result.records] == [0, 1, 2, 3, 4]
        assert all(r.scheduler == "online" for r in result.records)

    def test_requests_sorted_by_submission(self):
        requests = [req(5.0, 10.0, 1, 0), req(0.0, 10.0, 1, 1)]
        result = run_simulation(make_online(), requests)
        assert {r.rid for r in result.records} == {0, 1}

    def test_empty_workload(self):
        result = run_simulation(make_online(), [])
        assert result.records == [] and result.makespan == 0.0

    def test_acceptance_rate(self):
        result = run_simulation(
            make_online(n=1, r_max=1), [req(0.0, 500.0, 1, 0), req(0.0, 10.0, 1, 1)]
        )
        assert result.acceptance_rate == pytest.approx(0.5)

    def test_batch_makespan_extends_past_last_arrival(self):
        result = run_simulation(EasyBackfillScheduler(2), [req(0.0, 100.0, 2, 0)])
        assert result.makespan == 100.0

    def test_same_seeded_run_is_deterministic(self):
        requests = [req(float(i) * 3.0, 20.0, (i % 4) + 1, i) for i in range(30)]
        a = run_simulation(make_online(), list(requests))
        b = run_simulation(make_online(), list(requests))
        assert [(r.rid, r.start, r.attempts) for r in a.records] == [
            (r.rid, r.start, r.attempts) for r in b.records
        ]
