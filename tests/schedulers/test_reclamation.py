"""Tests for runtime-estimate inaccuracy and early-completion reclamation."""

import numpy as np
import pytest

from repro.core.types import Request
from repro.schedulers import EasyBackfillScheduler, OnlineScheduler
from repro.sim.driver import run_simulation
from repro.workloads.archive import generate_workload
from repro.workloads.models import EstimateAccuracy


def req(qr, lr, nr, rid, actual=None, sr=None):
    return Request(qr=qr, sr=sr if sr is not None else qr, lr=lr, nr=nr, rid=rid, actual_lr=actual)


class TestRequestActuals:
    def test_runtime_defaults_to_estimate(self):
        assert req(0.0, 100.0, 1, 0).runtime == 100.0

    def test_runtime_uses_actual(self):
        assert req(0.0, 100.0, 1, 0, actual=40.0).runtime == 40.0

    def test_actual_cannot_exceed_estimate(self):
        with pytest.raises(ValueError, match="actual runtime"):
            req(0.0, 100.0, 1, 0, actual=150.0)

    def test_actual_must_be_positive(self):
        with pytest.raises(ValueError, match="actual runtime"):
            req(0.0, 100.0, 1, 0, actual=0.0)


class TestEstimateAccuracyModel:
    def test_factors_in_range(self):
        model = EstimateAccuracy(p_exact=0.2, min_fraction=0.1)
        factors = model.sample(np.random.default_rng(0), 5000)
        assert factors.min() >= 0.1
        assert factors.max() <= 1.0

    def test_exact_spike(self):
        model = EstimateAccuracy(p_exact=0.3)
        factors = model.sample(np.random.default_rng(1), 20000)
        assert (factors == 1.0).mean() == pytest.approx(0.3, abs=0.02)

    def test_mean_fraction_matches_samples(self):
        model = EstimateAccuracy()
        factors = model.sample(np.random.default_rng(2), 50000)
        assert factors.mean() == pytest.approx(model.mean_fraction(), rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError, match="p_exact"):
            EstimateAccuracy(p_exact=1.5)
        with pytest.raises(ValueError, match="min_fraction"):
            EstimateAccuracy(min_fraction=0.0)

    def test_generator_integration(self):
        reqs = generate_workload("KTH", n_jobs=500, seed=1, accuracy=EstimateAccuracy())
        assert all(r.actual_lr is not None and r.actual_lr <= r.lr for r in reqs)
        assert any(r.actual_lr < r.lr for r in reqs)


class TestBatchWithActuals:
    def test_early_completion_frees_processors(self):
        # the big job ends (actually) at t=20; the follower starts then,
        # not at the estimated t=100
        jobs = [req(0.0, 100.0, 4, 0, actual=20.0), req(1.0, 10.0, 4, 1)]
        result = run_simulation(EasyBackfillScheduler(4), jobs)
        starts = {r.rid: r.start for r in result.records}
        assert starts[1] == 20.0

    def test_backfill_plans_on_estimates(self):
        # head needs the whole machine; a candidate that would end after
        # the *estimated* shadow may not backfill, even though the
        # running job will actually finish early
        jobs = [
            req(0.0, 100.0, 3, 0, actual=10.0),  # estimated shadow at 100
            req(1.0, 50.0, 4, 1),  # head, blocked
            req(2.0, 120.0, 1, 2),  # ends at ~122 > shadow 100, 0 extra
        ]
        result = run_simulation(EasyBackfillScheduler(4), jobs)
        starts = {r.rid: r.start for r in result.records}
        assert starts[2] >= starts[1], "candidate must not backfill past the estimate-based shadow"


class TestOnlineReclamation:
    def test_without_reclaim_surplus_stays_reserved(self):
        sched = OnlineScheduler(n_servers=1, tau=10.0, q_slots=24)
        jobs = [req(0.0, 100.0, 1, 0, actual=20.0), req(30.0, 10.0, 1, 1)]
        result = run_simulation(sched, jobs)
        starts = {r.rid: r.start for r in result.records}
        assert starts[1] == 100.0  # reservation holds to the estimate

    def test_reclaim_frees_surplus(self):
        sched = OnlineScheduler(n_servers=1, tau=10.0, q_slots=24, reclaim_early=True)
        jobs = [req(0.0, 100.0, 1, 0, actual=20.0), req(30.0, 10.0, 1, 1)]
        result = run_simulation(sched, jobs)
        starts = {r.rid: r.start for r in result.records}
        assert starts[1] == 30.0  # the surplus [20, 100) was returned at t=20

    def test_reclaim_improves_utilization_accounting(self):
        plain = OnlineScheduler(n_servers=2, tau=10.0, q_slots=24)
        reclaiming = OnlineScheduler(n_servers=2, tau=10.0, q_slots=24, reclaim_early=True)
        jobs = [req(0.0, 100.0, 2, 0, actual=25.0)]
        a = run_simulation(plain, list(jobs))
        b = run_simulation(reclaiming, list(jobs))
        assert b.utilization < a.utilization  # same work, shorter busy integral

    def test_reclaim_calendar_stays_consistent(self):
        sched = OnlineScheduler(n_servers=4, tau=10.0, q_slots=24, reclaim_early=True)
        jobs = [
            req(float(i), 60.0, 2, i, actual=15.0 + i) for i in range(6)
        ]
        run_simulation(sched, jobs)
        assert sched.calendar is not None
        sched.calendar.validate()

    def test_reclaim_noop_for_exact_estimates(self):
        sched = OnlineScheduler(n_servers=1, tau=10.0, q_slots=24, reclaim_early=True)
        jobs = [req(0.0, 50.0, 1, 0), req(10.0, 10.0, 1, 1)]
        result = run_simulation(sched, jobs)
        starts = {r.rid: r.start for r in result.records}
        assert starts[1] == 50.0


class TestReclamationAtScale:
    @pytest.mark.slow
    def test_reclamation_reduces_waits_under_overestimates(self):
        requests = generate_workload(
            "KTH", n_jobs=600, seed=11, accuracy=EstimateAccuracy(p_exact=0.1)
        )
        plain = run_simulation(
            OnlineScheduler(n_servers=128, tau=900.0, q_slots=288), list(requests)
        )
        reclaiming = run_simulation(
            OnlineScheduler(n_servers=128, tau=900.0, q_slots=288, reclaim_early=True),
            list(requests),
        )
        waits_plain = np.mean([r.waiting_time for r in plain.accepted])
        waits_reclaim = np.mean([r.waiting_time for r in reclaiming.accepted])
        assert waits_reclaim <= waits_plain
        assert reclaiming.acceptance_rate >= plain.acceptance_rate
