"""Unit tests for the batch baselines (FCFS, EASY, conservative)."""

import pytest

from repro.core.types import Request
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
)
from repro.sim.driver import run_simulation


def req(qr, lr, nr, rid, sr=None):
    return Request(qr=qr, sr=sr if sr is not None else qr, lr=lr, nr=nr, rid=rid)


def starts(result):
    return {r.rid: r.start for r in result.records}


class TestFCFS:
    def test_serial_execution_when_saturated(self):
        result = run_simulation(
            FCFSScheduler(4),
            [req(0.0, 10.0, 4, 0), req(0.0, 10.0, 4, 1), req(0.0, 10.0, 4, 2)],
        )
        assert starts(result) == {0: 0.0, 1: 10.0, 2: 20.0}

    def test_parallel_when_room(self):
        result = run_simulation(
            FCFSScheduler(4), [req(0.0, 10.0, 2, 0), req(0.0, 10.0, 2, 1)]
        )
        assert starts(result) == {0: 0.0, 1: 0.0}

    def test_head_blocks_queue(self):
        # rid=1 needs the whole machine; rid=2 would fit but FCFS won't pass it
        result = run_simulation(
            FCFSScheduler(4),
            [req(0.0, 10.0, 3, 0), req(1.0, 10.0, 4, 1), req(2.0, 5.0, 1, 2)],
        )
        s = starts(result)
        assert s[1] == 10.0
        assert s[2] == 20.0  # strict FCFS: waits for the big job

    def test_oversized_job_rejected(self):
        result = run_simulation(FCFSScheduler(4), [req(0.0, 10.0, 5, 0)])
        assert result.records[0].rejected
        assert result.rejected == 1

    def test_utilization_accounts_busy_area(self):
        result = run_simulation(
            FCFSScheduler(4), [req(0.0, 10.0, 4, 0), req(0.0, 10.0, 4, 1)]
        )
        assert result.utilization == pytest.approx(1.0)


class TestEasyBackfill:
    def test_backfills_past_blocked_head(self):
        # same scenario where FCFS made rid=2 wait: EASY lets it leap ahead
        result = run_simulation(
            EasyBackfillScheduler(4),
            [req(0.0, 10.0, 3, 0), req(1.0, 10.0, 4, 1), req(2.0, 5.0, 1, 2)],
        )
        s = starts(result)
        assert s[0] == 0.0
        assert s[1] == 10.0
        assert s[2] == 2.0  # backfilled: ends at 7 <= shadow 10

    def test_backfill_never_delays_head(self):
        # a long small job may NOT backfill if it would push the head back
        result = run_simulation(
            EasyBackfillScheduler(4),
            [req(0.0, 10.0, 3, 0), req(1.0, 10.0, 4, 1), req(2.0, 50.0, 1, 2)],
        )
        s = starts(result)
        assert s[1] == 10.0  # head unharmed
        assert s[2] >= 10.0  # the long job could not jump

    def test_backfill_on_extra_processors_allowed(self):
        # head needs 4 at shadow=10; at the shadow all 4 are used -> extra=0;
        # but a 1-proc job ending after the shadow can still run on the idle
        # processor if the head leaves one over
        result = run_simulation(
            EasyBackfillScheduler(4),
            [req(0.0, 10.0, 3, 0), req(1.0, 10.0, 3, 1), req(2.0, 50.0, 1, 2)],
        )
        s = starts(result)
        assert s[1] == 10.0
        assert s[2] == 2.0  # head needs 3, leaving 1 extra forever

    def test_fifo_among_equals(self):
        result = run_simulation(
            EasyBackfillScheduler(4),
            [req(0.0, 10.0, 4, 0), req(1.0, 10.0, 4, 1), req(2.0, 10.0, 4, 2)],
        )
        s = starts(result)
        assert s[0] < s[1] < s[2]


class TestConservativeBackfill:
    def test_backfills_when_no_reservation_delayed(self):
        result = run_simulation(
            ConservativeBackfillScheduler(4),
            [req(0.0, 10.0, 3, 0), req(1.0, 10.0, 4, 1), req(2.0, 5.0, 1, 2)],
        )
        s = starts(result)
        assert s[1] == 10.0
        assert s[2] == 2.0

    def test_protects_every_queued_job(self):
        # with three queued jobs, a backfill candidate must not delay ANY of
        # them; construct a case where EASY would admit but conservative not.
        jobs = [
            req(0.0, 10.0, 4, 0),  # running [0, 10)
            req(1.0, 10.0, 3, 1),  # reserved [10, 20)
            req(2.0, 10.0, 2, 2),  # reserved [20, 30) (overlaps rid1? no: needs 2, free 1 at [10,20))
            req(3.0, 15.0, 1, 3),  # candidate: 1 proc, 15 long
        ]
        result = run_simulation(ConservativeBackfillScheduler(4), jobs)
        s = starts(result)
        # ordering is preserved for the protected jobs
        assert s[1] == 10.0
        assert s[2] == 20.0
        # rid3 fits alongside rid1 ([10,20) uses 3) and rid2 ([20,30) uses 2):
        # starting at 10 it occupies [10, 25) on 1 proc: free procs are
        # 1 at [10,20) and 2 at [20,30), so it never delays anyone.
        assert s[3] == 10.0

    def test_never_starves(self):
        # a steady stream of small jobs cannot starve the wide job forever
        jobs = [req(float(i), 10.0, 1, i) for i in range(10)]
        jobs.append(req(0.5, 10.0, 4, 99))
        result = run_simulation(ConservativeBackfillScheduler(4), jobs)
        s = starts(result)
        assert s[99] is not None

    def test_matches_fcfs_on_saturated_identical_jobs(self):
        jobs = [req(0.0, 10.0, 4, i) for i in range(4)]
        a = run_simulation(ConservativeBackfillScheduler(4), list(jobs))
        b = run_simulation(FCFSScheduler(4), list(jobs))
        assert starts(a) == starts(b)


class TestAdvanceReservationsThroughBatch:
    def test_job_not_started_before_sr(self):
        result = run_simulation(
            EasyBackfillScheduler(4), [req(0.0, 10.0, 2, 0, sr=25.0)]
        )
        assert starts(result)[0] == 25.0

    def test_waiting_time_measured_from_sr(self):
        result = run_simulation(
            EasyBackfillScheduler(4), [req(0.0, 10.0, 2, 0, sr=25.0)]
        )
        assert result.records[0].waiting_time == 0.0
