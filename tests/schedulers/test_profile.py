"""Unit tests for the availability profile used by backfilling."""

import pytest

from repro.schedulers.profile import AvailabilityProfile


class TestReserve:
    def test_free_at_reflects_reservations(self):
        p = AvailabilityProfile(10, now=0.0)
        p.reserve(5.0, 15.0, 4)
        assert p.free_at(0.0) == 10
        assert p.free_at(5.0) == 6
        assert p.free_at(14.9) == 6
        assert p.free_at(15.0) == 10

    def test_overlapping_reservations_stack(self):
        p = AvailabilityProfile(10)
        p.reserve(0.0, 10.0, 4)
        p.reserve(5.0, 15.0, 4)
        assert p.free_at(7.0) == 2
        assert p.free_at(12.0) == 6

    def test_overbooking_raises(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 3)
        with pytest.raises(RuntimeError, match="exceeds"):
            p.reserve(5.0, 8.0, 2)

    def test_failed_reserve_leaves_profile_unchanged(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 3)
        before = p.steps()
        with pytest.raises(RuntimeError):
            p.reserve(5.0, 20.0, 2)
        # breakpoints may have been inserted but free counts are untouched
        assert [f for _, f in p.steps() if f < 0] == []
        assert p.free_at(7.0) == 1
        assert p.free_at(15.0) == 4
        assert before  # silence lint

    def test_empty_window_rejected(self):
        p = AvailabilityProfile(4)
        with pytest.raises(ValueError, match="empty"):
            p.reserve(5.0, 5.0, 1)

    def test_reserve_before_start_rejected(self):
        p = AvailabilityProfile(4, now=10.0)
        with pytest.raises(ValueError, match="before profile start"):
            p.reserve(5.0, 15.0, 1)


class TestEarliestFit:
    def test_immediate_when_free(self):
        p = AvailabilityProfile(8)
        assert p.earliest_fit(0.0, 10.0, 8) == 0.0

    def test_waits_for_release(self):
        p = AvailabilityProfile(8)
        p.reserve(0.0, 20.0, 6)
        assert p.earliest_fit(0.0, 10.0, 4) == 20.0

    def test_fits_in_gap(self):
        p = AvailabilityProfile(8)
        p.reserve(0.0, 10.0, 8)
        p.reserve(30.0, 40.0, 8)
        assert p.earliest_fit(0.0, 20.0, 4) == 10.0
        assert p.earliest_fit(0.0, 25.0, 4) == 40.0

    def test_respects_after(self):
        p = AvailabilityProfile(8)
        assert p.earliest_fit(17.0, 5.0, 2) == 17.0

    def test_impossible_count_raises(self):
        p = AvailabilityProfile(8)
        with pytest.raises(ValueError, match="no fit"):
            p.earliest_fit(0.0, 1.0, 9)

    def test_fit_spanning_multiple_steps(self):
        p = AvailabilityProfile(8)
        p.reserve(0.0, 10.0, 2)
        p.reserve(10.0, 20.0, 3)
        p.reserve(20.0, 30.0, 4)
        # 4 processors are free throughout [0, 30)
        assert p.earliest_fit(0.0, 30.0, 4) == 0.0
        # 5 are only free from t=20 on... no: [20,30) has 4 free; from 30 all 8
        assert p.earliest_fit(0.0, 30.0, 5) == 30.0


class TestAdvance:
    def test_advance_drops_history(self):
        p = AvailabilityProfile(8)
        p.reserve(0.0, 10.0, 4)
        p.reserve(20.0, 30.0, 2)
        p.advance(15.0)
        assert p.now == 15.0
        assert p.free_at(15.0) == 8
        assert p.free_at(25.0) == 6
        p.validate()

    def test_advance_backwards_rejected(self):
        p = AvailabilityProfile(8, now=10.0)
        with pytest.raises(ValueError, match="backwards"):
            p.advance(5.0)


class TestValidate:
    def test_validate_accepts_consistent_profile(self):
        p = AvailabilityProfile(8)
        p.reserve(1.0, 4.0, 2)
        p.reserve(2.0, 6.0, 3)
        p.validate()
