"""The shared error vocabulary: exit codes, wire payloads, hierarchies."""

import pytest

from repro.errors import (
    BusyError,
    ConflictError,
    ErrorCode,
    MalformedRequestError,
    NotFoundError,
    RejectedError,
    ReproError,
    ShuttingDownError,
    error_payload,
)


class TestErrorCode:
    def test_rejected_and_malformed_are_distinct_exit_codes(self):
        # the whole point of the enum: shell scripts (and the wire
        # protocol) can tell a retry-policy rejection from bad input
        assert ErrorCode.MALFORMED == 2
        assert ErrorCode.REJECTED == 3
        assert ErrorCode.MALFORMED != ErrorCode.REJECTED

    def test_codes_are_stable(self):
        assert [int(c) for c in ErrorCode] == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_wire_names(self):
        assert ErrorCode.BUSY.wire == "BUSY"
        assert ErrorCode.SHUTTING_DOWN.wire == "SHUTTING_DOWN"


class TestExceptionHierarchy:
    def test_typed_errors_subclass_their_untyped_predecessors(self):
        # existing `except ValueError` / `except KeyError` callers keep working
        assert issubclass(MalformedRequestError, ValueError)
        assert issubclass(ConflictError, ValueError)
        assert issubclass(NotFoundError, KeyError)

    def test_not_found_str_is_not_repr_quoted(self):
        assert str(NotFoundError("no allocation 7")) == "no allocation 7"

    @pytest.mark.parametrize(
        "exc,code",
        [
            (MalformedRequestError("x"), ErrorCode.MALFORMED),
            (RejectedError("x"), ErrorCode.REJECTED),
            (ConflictError("x"), ErrorCode.CONFLICT),
            (NotFoundError("x"), ErrorCode.NOT_FOUND),
            (BusyError("x", retry_after=0.5), ErrorCode.BUSY),
            (ShuttingDownError("x"), ErrorCode.SHUTTING_DOWN),
        ],
    )
    def test_payload_carries_code_and_exit_code(self, exc, code):
        payload = exc.payload()
        assert payload["code"] == code.wire
        assert payload["exit_code"] == int(code)
        assert payload["message"]

    def test_rejected_payload_reports_policy_verdict(self):
        payload = RejectedError("x", reason="exhausted", attempts=4).payload()
        assert payload["reason"] == "exhausted" and payload["attempts"] == 4

    def test_busy_payload_carries_retry_after(self):
        assert BusyError("x", retry_after=0.25).payload()["retry_after"] == 0.25


class TestErrorPayloadHelper:
    def test_typed_errors_report_their_own_code(self):
        assert error_payload(RejectedError("nope"))["exit_code"] == 3

    def test_untyped_exceptions_map_to_internal(self):
        payload = error_payload(ZeroDivisionError("division by zero"))
        assert payload["code"] == "INTERNAL" and payload["exit_code"] == 1
        assert "ZeroDivisionError" in payload["message"]

    def test_repro_error_base_defaults_to_internal(self):
        assert ReproError("x").payload()["exit_code"] == 1
