"""Tests for the advance-reservation transformer (Section 5.2)."""

import pytest

from repro.core.types import Request
from repro.workloads.reservations import MAX_LEAD, with_advance_reservations


def make_requests(n=100):
    return [Request(qr=float(i) * 10.0, sr=float(i) * 10.0, lr=100.0, nr=2, rid=i) for i in range(n)]


class TestTransformation:
    def test_rho_zero_is_identity(self):
        reqs = make_requests()
        assert with_advance_reservations(reqs, 0.0) == reqs

    def test_rho_one_converts_everything(self):
        out = with_advance_reservations(make_requests(), 1.0, seed=1)
        assert all(r.sr > r.qr for r in out)

    @pytest.mark.parametrize("rho", [0.2, 0.4, 0.6, 0.8])
    def test_fraction_is_respected(self, rho):
        out = with_advance_reservations(make_requests(200), rho, seed=2)
        converted = sum(1 for r in out if r.sr > r.qr)
        assert converted == round(rho * 200)

    def test_lead_times_within_three_hours(self):
        out = with_advance_reservations(make_requests(), 1.0, seed=3)
        for r in out:
            assert 0.0 <= r.sr - r.qr <= MAX_LEAD

    def test_other_fields_preserved(self):
        reqs = make_requests()
        out = with_advance_reservations(reqs, 0.5, seed=4)
        for before, after in zip(reqs, out):
            assert after.qr == before.qr
            assert after.lr == before.lr
            assert after.nr == before.nr
            assert after.rid == before.rid

    def test_reproducible(self):
        reqs = make_requests()
        a = with_advance_reservations(reqs, 0.5, seed=5)
        b = with_advance_reservations(reqs, 0.5, seed=5)
        assert a == b

    def test_custom_lead(self):
        out = with_advance_reservations(make_requests(), 1.0, seed=6, max_lead=60.0)
        assert all(r.sr - r.qr <= 60.0 for r in out)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            with_advance_reservations(make_requests(), 1.5)

    def test_invalid_lead_rejected(self):
        with pytest.raises(ValueError, match="lead"):
            with_advance_reservations(make_requests(), 0.5, max_lead=0.0)

    def test_empty_workload(self):
        assert with_advance_reservations([], 0.5) == []
