"""Unit tests for the workload model distributions."""

import numpy as np
import pytest

from repro.workloads.models import DAY, ArrivalProcess, LognormalMixture, PowerOfTwoSizes


class TestLognormalMixture:
    def test_mean_calibration(self):
        mix = LognormalMixture(
            components=((0.5, 1800.0, 1.0), (0.5, 18000.0, 0.8)),
            min_value=60.0,
            max_value=1e6,
        )
        rng = np.random.default_rng(0)
        samples = mix.sample(rng, 40000)
        # clamping slightly shifts the mean; 10% tolerance
        assert samples.mean() == pytest.approx(mix.mean(), rel=0.1)

    def test_samples_within_bounds(self):
        mix = LognormalMixture(components=((1.0, 3600.0, 1.5),), min_value=900.0, max_value=7200.0)
        rng = np.random.default_rng(1)
        samples = mix.sample(rng, 5000)
        assert samples.min() >= 900.0
        assert samples.max() <= 7200.0

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            LognormalMixture(components=((0.5, 100.0, 1.0),))

    def test_rejects_bad_component(self):
        with pytest.raises(ValueError, match="bad component"):
            LognormalMixture(components=((1.0, -5.0, 1.0),))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="min"):
            LognormalMixture(components=((1.0, 100.0, 1.0),), min_value=10.0, max_value=5.0)

    def test_reproducible(self):
        mix = LognormalMixture(components=((1.0, 3600.0, 1.0),))
        a = mix.sample(np.random.default_rng(7), 100)
        b = mix.sample(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)


class TestPowerOfTwoSizes:
    def test_sizes_within_bounds(self):
        dist = PowerOfTwoSizes(max_size=128)
        samples = dist.sample(np.random.default_rng(2), 5000)
        assert samples.min() >= 1
        assert samples.max() <= 128

    def test_serial_fraction(self):
        dist = PowerOfTwoSizes(max_size=64, p_serial=0.4, p_power=0.5)
        samples = dist.sample(np.random.default_rng(3), 20000)
        assert (samples == 1).mean() == pytest.approx(0.4, abs=0.03)

    def test_powers_dominate(self):
        dist = PowerOfTwoSizes(max_size=256, p_serial=0.2, p_power=0.7)
        samples = dist.sample(np.random.default_rng(4), 20000)
        is_pow2 = (samples & (samples - 1)) == 0
        assert is_pow2.mean() > 0.8  # serial (2^0) + explicit powers + luck

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="max_size"):
            PowerOfTwoSizes(max_size=1)
        with pytest.raises(ValueError, match="exceed"):
            PowerOfTwoSizes(max_size=8, p_serial=0.7, p_power=0.7)
        with pytest.raises(ValueError, match="geo_decay"):
            PowerOfTwoSizes(max_size=8, geo_decay=1.5)

    def test_mean_is_stable(self):
        dist = PowerOfTwoSizes(max_size=128)
        assert dist.mean() == pytest.approx(dist.mean(), rel=1e-9)


class TestArrivalProcess:
    def test_rate_controls_density(self):
        proc = ArrivalProcess(rate=0.01)
        times = proc.sample(np.random.default_rng(5), 5000)
        mean_gap = np.diff(times).mean()
        assert mean_gap == pytest.approx(100.0, rel=0.1)

    def test_times_are_increasing(self):
        proc = ArrivalProcess(rate=0.1, cycle_amplitude=0.5)
        times = proc.sample(np.random.default_rng(6), 2000)
        assert (np.diff(times) > 0).all()

    def test_cycle_preserves_average_rate(self):
        flat = ArrivalProcess(rate=0.01)
        waved = ArrivalProcess(rate=0.01, cycle_amplitude=0.6)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        span_flat = flat.sample(rng_a, 20000)[-1]
        span_waved = waved.sample(rng_b, 20000)[-1]
        assert span_waved == pytest.approx(span_flat, rel=0.1)

    def test_cycle_modulates_density(self):
        proc = ArrivalProcess(rate=0.02, cycle_amplitude=0.8)
        times = proc.sample(np.random.default_rng(8), 30000)
        phase = (times % DAY) / DAY
        # arrivals in the peak half-cycle should clearly outnumber the trough
        peak = ((phase > 0.0) & (phase < 0.5)).sum()
        trough = ((phase >= 0.5) & (phase < 1.0)).sum()
        assert peak > 1.3 * trough

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            ArrivalProcess(rate=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            ArrivalProcess(rate=1.0, cycle_amplitude=1.0)
