"""Unit tests for the SWF parser/writer."""

import io

import pytest

from repro.workloads.swf import SWFJob, read_swf, swf_to_requests, write_swf

SAMPLE = """\
; Computer: Test SP2
; MaxJobs: 3
; just a note without a colon-key structure
1 0 10 100 4 -1 -1 4 120 -1 1 1 1 -1 1 -1 -1 -1
2 50 0 200 8 -1 -1 8 240 -1 1 2 1 -1 1 -1 -1 -1
3 60 5 50 1 -1 -1 -1 -1 -1 0 3 1 -1 1 -1 -1 -1
"""


class TestRead:
    def test_parses_jobs_and_metadata(self):
        jobs, meta = read_swf(io.StringIO(SAMPLE))
        assert len(jobs) == 3
        assert meta["Computer"] == "Test SP2"
        assert meta["MaxJobs"] == "3"

    def test_field_values(self):
        jobs, _ = read_swf(io.StringIO(SAMPLE))
        j = jobs[0]
        assert j.job_number == 1
        assert j.submit_time == 0.0
        assert j.wait_time == 10.0
        assert j.run_time == 100.0
        assert j.allocated_processors == 4
        assert j.requested_time == 120.0

    def test_wrong_field_count_raises(self):
        with pytest.raises(ValueError, match="18 fields"):
            read_swf(io.StringIO("1 2 3\n"))

    def test_bad_value_raises(self):
        bad = "x 0 10 100 4 -1 -1 4 120 -1 1 1 1 -1 1 -1 -1 -1\n"
        with pytest.raises(ValueError, match="job_number"):
            read_swf(io.StringIO(bad))

    def test_blank_lines_skipped(self):
        jobs, _ = read_swf(io.StringIO("\n\n" + SAMPLE + "\n"))
        assert len(jobs) == 3


class TestWrite:
    def test_round_trip(self):
        jobs, meta = read_swf(io.StringIO(SAMPLE))
        buf = io.StringIO()
        write_swf(jobs, buf, metadata=meta)
        jobs2, meta2 = read_swf(io.StringIO(buf.getvalue()))
        assert jobs2 == jobs
        assert meta2 == meta

    def test_file_round_trip(self, tmp_path):
        jobs, _ = read_swf(io.StringIO(SAMPLE))
        path = tmp_path / "log.swf"
        write_swf(jobs, path)
        jobs2, _ = read_swf(path)
        assert jobs2 == jobs


class TestConversion:
    def test_requests_use_estimates(self):
        jobs, _ = read_swf(io.StringIO(SAMPLE))
        reqs = swf_to_requests(jobs)
        assert reqs[0].lr == 120.0  # requested_time preferred
        assert reqs[0].nr == 4
        assert reqs[0].qr == reqs[0].sr == 0.0

    def test_requests_actual_runtime_mode(self):
        jobs, _ = read_swf(io.StringIO(SAMPLE))
        reqs = swf_to_requests(jobs, use_estimates=False)
        assert reqs[0].lr == 100.0

    def test_fallbacks(self):
        jobs, _ = read_swf(io.StringIO(SAMPLE))
        j3 = jobs[2]  # requested fields are -1
        assert j3.processors() == 1  # falls back to allocated
        assert j3.estimated_runtime() == 50.0  # falls back to run_time

    def test_unusable_jobs_skipped(self):
        job = SWFJob(
            job_number=9,
            submit_time=0.0,
            wait_time=0.0,
            run_time=-1.0,
            allocated_processors=-1,
        )
        assert swf_to_requests([job]) == []
