"""Tests for the calibrated synthetic trace generators (Table 1)."""

import numpy as np
import pytest

from repro.workloads.archive import WORKLOADS, generate_workload, workload_table

HOUR = 3600.0

#: Table 1 of the paper: (processors, jobs, avg estimated l_r in hours)
PAPER_TABLE_1 = {
    "CTC": (512, 39734, 5.82),
    "KTH": (128, 28481, 2.46),
    "HPC2N": (240, 202825, 4.72),
}


class TestCalibration:
    @pytest.mark.parametrize("name", ["CTC", "KTH", "HPC2N"])
    def test_processor_counts_match_paper(self, name):
        assert WORKLOADS[name].n_servers == PAPER_TABLE_1[name][0]

    @pytest.mark.parametrize("name", ["CTC", "KTH", "HPC2N"])
    def test_job_counts_match_paper(self, name):
        assert WORKLOADS[name].n_jobs == PAPER_TABLE_1[name][1]

    @pytest.mark.parametrize("name", ["CTC", "KTH", "HPC2N"])
    def test_mean_duration_matches_paper(self, name):
        reqs = generate_workload(name, n_jobs=20000, seed=0)
        mean_hours = np.mean([r.lr for r in reqs]) / HOUR
        assert mean_hours == pytest.approx(PAPER_TABLE_1[name][2], rel=0.12)

    def test_kth_dominated_by_short_jobs(self):
        # Figure 4(b): most KTH jobs run under 2 hours
        reqs = generate_workload("KTH", n_jobs=20000, seed=1)
        short = np.mean([r.lr < 2 * HOUR for r in reqs])
        assert short > 0.5

    def test_ctc_few_short_jobs(self):
        # Figure 4(b): at most ~14% of CTC jobs are under 2 hours
        reqs = generate_workload("CTC", n_jobs=20000, seed=1)
        short = np.mean([r.lr < 2 * HOUR for r in reqs])
        assert short < 0.2

    @pytest.mark.parametrize("name", ["CTC", "KTH", "HPC2N"])
    def test_sizes_bounded_by_machine(self, name):
        reqs = generate_workload(name, n_jobs=5000, seed=2)
        spec = WORKLOADS[name]
        assert max(r.nr for r in reqs) <= spec.n_servers
        assert min(r.nr for r in reqs) >= 1


class TestGeneration:
    def test_reproducible(self):
        a = generate_workload("KTH", n_jobs=500, seed=3)
        b = generate_workload("KTH", n_jobs=500, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_workload("KTH", n_jobs=500, seed=3)
        b = generate_workload("KTH", n_jobs=500, seed=4)
        assert a != b

    def test_arrivals_sorted(self):
        reqs = generate_workload("CTC", n_jobs=2000, seed=5)
        times = [r.qr for r in reqs]
        assert times == sorted(times)

    def test_on_demand_by_default(self):
        reqs = generate_workload("CTC", n_jobs=100, seed=6)
        assert all(r.qr == r.sr for r in reqs)

    def test_load_override_changes_density(self):
        light = generate_workload("KTH", n_jobs=3000, seed=7, offered_load=0.3)
        heavy = generate_workload("KTH", n_jobs=3000, seed=7, offered_load=0.9)
        assert light[-1].qr > heavy[-1].qr  # same work spread over longer span

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            generate_workload("KTH", n_jobs=0)

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            generate_workload("NERSC")


class TestWorkloadTable:
    def test_analytic_rows(self):
        rows = {name: (n, jobs, avg) for name, n, jobs, avg in workload_table()}
        for name, (procs, jobs, avg) in PAPER_TABLE_1.items():
            got = rows[name]
            assert got[0] == procs
            assert got[1] == jobs
            assert got[2] == pytest.approx(avg, rel=0.15)

    def test_sampled_rows(self):
        rows = workload_table(n_jobs=2000, seed=0)
        assert all(jobs == 2000 for _, _, jobs, _ in rows)
