"""Tests for the parallel experiment harness.

The load-bearing property: inline, worker-process, and disk-cache paths
all yield byte-identical results (the simulator is deterministic per
seed, and the store's serialization is exact), so parallelism is a pure
wall-clock optimization.
"""

import pytest

from repro.experiments import clear_cache
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    ARTIFACTS,
    enumerate_runs,
    render_artifacts,
    warm_store,
)
from repro.experiments.store import ResultStore, RunSpec

TINY = ExperimentConfig(n_jobs=100, seed=11)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestEnumeration:
    def test_shared_runs_deduplicated(self):
        # Figures 3/4/5 and Table 2 all reuse the CTC/KTH online+batch
        # sims: together they need just 4 distinct runs
        specs = enumerate_runs(["fig3", "fig4", "fig5", "table2"], TINY)
        assert len(specs) == 4
        assert {s.label for s in specs} == {
            "KTH/online", "KTH/easy", "CTC/online", "CTC/easy",
        }

    def test_full_suite_run_count(self):
        specs = enumerate_runs(list(ARTIFACTS), TINY)
        # 3 workloads x 6 rhos online (fig6/fig7, rho=0 shared with
        # fig3/4/5/table2) + CTC/KTH batch comparators
        assert len(specs) == 20
        assert len({s.key for s in specs}) == len(specs)

    def test_table1_needs_no_runs(self):
        assert enumerate_runs(["table1"], TINY) == []

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ValueError, match="unknown artifact"):
            enumerate_runs(["fig99"], TINY)


class TestWarmStore:
    SPECS = [
        ("KTH", "online", 0.0),
        ("KTH", "easy", 0.0),
        ("KTH", "online", 0.4),
    ]

    def _specs(self):
        return [RunSpec.normalized(w, s, TINY, rho) for w, s, rho in self.SPECS]

    def test_inline_worker_and_disk_paths_identical(self, tmp_path):
        inline = warm_store(self._specs(), workers=1, store=ResultStore(""))
        assert inline.computed == 3 and not inline.failures

        pooled = warm_store(self._specs(), workers=2, store=ResultStore(tmp_path))
        assert pooled.computed == 3 and not pooled.failures

        disk = warm_store(self._specs(), workers=2, store=ResultStore(tmp_path))
        assert disk.cached == 3 and disk.computed == 0

        assert inline.checksums == pooled.checksums == disk.checksums
        assert len(inline.checksums) == 3

    def test_failure_is_isolated(self):
        specs = self._specs()
        specs.insert(1, RunSpec.normalized("NOSUCH", "online", TINY))
        report = warm_store(specs, workers=2, store=ResultStore(""))
        assert len(report.failures) == 1
        assert report.failures[0].label.startswith("NOSUCH")
        assert "KeyError" in report.failures[0].error
        assert report.computed == 3  # the crash did not kill the sweep

    def test_inline_failure_is_isolated_too(self):
        specs = [RunSpec.normalized("NOSUCH", "online", TINY)] + self._specs()
        report = warm_store(specs, workers=1, store=ResultStore(""))
        assert len(report.failures) == 1 and report.computed == 3

    def test_progress_lines_emitted(self):
        lines = []
        warm_store(self._specs()[:1], workers=1, store=ResultStore(""), progress=lines.append)
        assert len(lines) == 1 and "KTH/online" in lines[0]

    def test_report_json_shape(self, tmp_path):
        report = warm_store(self._specs()[:2], workers=1, store=ResultStore(tmp_path))
        data = report.to_json()
        assert data["computed"] == 2 and data["failed"] == 0
        assert all(r["checksum"] for r in data["runs"])


class TestRenderedOutputs:
    def test_sequential_and_parallel_render_identically(self, tmp_path):
        artifacts = ["fig3", "table2"]
        sequential = render_artifacts(artifacts, TINY)

        clear_cache()
        store = ResultStore(tmp_path)
        report = warm_store(enumerate_runs(artifacts, TINY), workers=2, store=store)
        assert not report.failures
        # route the module-level get_result through the warmed store
        import repro.experiments.store as store_mod

        old = store_mod._default_store
        store_mod._default_store = store
        try:
            parallel = render_artifacts(artifacts, TINY)
        finally:
            store_mod._default_store = old
        assert parallel == sequential
