"""Plumbing tests for the extension experiments (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, clear_cache, deadlines, loadsweep

TINY = ExperimentConfig(n_jobs=100, seed=9)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDeadlines:
    def test_labels_and_shape(self):
        labels, rates = deadlines.acceptance_by_slack(TINY)
        assert labels[-1] == "none"
        assert len(labels) == len(rates) == len(deadlines.SLACKS)
        assert ((0.0 <= rates) & (rates <= 1.0)).all()

    def test_no_deadline_dominates(self):
        _, rates = deadlines.acceptance_by_slack(TINY)
        assert rates[-1] == rates.max()

    def test_deadlines_bind_under_contention(self):
        # at a saturating load some finite slack must reject jobs the
        # unconstrained ladder would have admitted
        cfg = ExperimentConfig(n_jobs=200, seed=3)
        _, rates = deadlines.acceptance_by_slack(cfg, slacks=(1.0, None))
        assert rates[0] <= rates[1]

    def test_renders(self):
        out = deadlines.run(TINY)
        assert "acceptance" in out and "slack" in out


class TestLoadSweep:
    def test_points_cover_grid(self):
        points = loadsweep.sweep(TINY, loads=(0.5, 1.0))
        assert len(points) == 4  # 2 loads x 2 schedulers
        assert {p.scheduler for p in points} == {"online", "easy"}

    def test_metrics_in_range(self):
        for p in loadsweep.sweep(TINY, loads=(0.8,)):
            assert 0.0 <= p.acceptance <= 1.0
            assert 0.0 <= p.utilization <= 1.0
            assert p.slowdown >= 1.0
            assert 0.0 < p.fairness <= 1.0

    def test_renders(self):
        out = loadsweep.run(TINY)
        assert "Load sweep" in out and "online" in out
