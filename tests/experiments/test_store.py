"""Tests for the content-addressed result store.

Covers the Δt stale-memo regression (the bug that motivated replacing
the tuple-keyed memo), payload round-trip identity, the disk tier's
corruption/version tolerance, and cache-key semantics.
"""

import gzip
import json

import pytest

from repro.experiments import clear_cache, get_result
from repro.experiments.config import ExperimentConfig
from repro.experiments.store import (
    ResultStore,
    RunSpec,
    code_fingerprint,
    compute_result,
)
from repro.sim.driver import RESULT_FORMAT, SimResult

TINY = ExperimentConfig(n_jobs=120, seed=7)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def tiny_result() -> SimResult:
    return compute_result(RunSpec.normalized("KTH", "online", TINY))


class TestDeltaTRegression:
    def test_delta_t_distinguishes_cache_entries(self):
        """The historical bug: the memo key omitted ``config.delta_t``,
        so a Δt sweep silently returned the first Δt's result."""
        a = get_result("KTH", "online", ExperimentConfig(n_jobs=120, seed=7, delta_t=900.0))
        b = get_result("KTH", "online", ExperimentConfig(n_jobs=120, seed=7, delta_t=1800.0))
        assert a is not b

    def test_every_config_field_joins_the_key(self):
        base = RunSpec.normalized("KTH", "online", TINY)
        for override in (
            {"n_jobs": 121},
            {"seed": 8},
            {"tau": 450.0},
            {"delta_t": 1800.0},
            {"q_slots": 96},
            {"batch_scheduler": "fcfs"},
        ):
            from dataclasses import replace

            other = RunSpec.normalized("KTH", "online", replace(TINY, **override))
            assert other.key != base.key, override

    def test_rho_and_coordinates_join_the_key(self):
        base = RunSpec.normalized("KTH", "online", TINY)
        assert RunSpec.normalized("KTH", "online", TINY, rho=0.5).key != base.key
        assert RunSpec.normalized("CTC", "online", TINY).key != base.key
        assert RunSpec.normalized("KTH", "easy", TINY).key != base.key

    def test_batch_alias_shares_the_comparator_key(self):
        assert (
            RunSpec.normalized("KTH", "batch", TINY).key
            == RunSpec.normalized("KTH", "easy", TINY).key
        )

    def test_fingerprint_invalidates_keys(self, monkeypatch):
        spec = RunSpec.normalized("KTH", "online", TINY)
        old = spec.key
        monkeypatch.setattr(
            "repro.experiments.store._fingerprint_cache", "0" * 16
        )
        assert spec.key != old


class TestPayloadRoundTrip:
    def test_serialize_deserialize_is_identity(self):
        result = tiny_result()
        clone = SimResult.from_payload(result.to_payload())
        assert clone == result  # dataclass equality: every field and record
        assert clone.record_checksum() == result.record_checksum()

    def test_json_round_trip_is_identity(self):
        # what actually hits disk: payload -> JSON text -> payload
        result = tiny_result()
        clone = SimResult.from_payload(json.loads(json.dumps(result.to_payload())))
        assert clone == result

    def test_unknown_format_rejected(self):
        payload = tiny_result().to_payload()
        payload["format"] = RESULT_FORMAT + 1
        with pytest.raises(ValueError, match="format"):
            SimResult.from_payload(payload)


class TestDiskTier:
    def test_round_trip_checksum_identical(self, tmp_path):
        spec = RunSpec.normalized("KTH", "online", TINY)
        writer = ResultStore(tmp_path)
        computed = writer.get_or_compute(spec)
        reader = ResultStore(tmp_path)  # fresh memory tier: must hit disk
        loaded = reader.get(spec)
        assert loaded is not None
        assert loaded == computed
        assert loaded.record_checksum() == computed.record_checksum()

    def test_memory_tier_returns_same_object(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RunSpec.normalized("KTH", "online", TINY)
        assert store.get_or_compute(spec) is store.get_or_compute(spec)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = RunSpec.normalized("KTH", "online", TINY)
        store = ResultStore(tmp_path)
        store.get_or_compute(spec)
        path = store._entry_path(spec.key)
        path.write_bytes(b"not gzip at all")
        fresh = ResultStore(tmp_path)
        assert fresh.get(spec) is None
        # and get_or_compute recovers by recomputing, not crashing
        assert fresh.get_or_compute(spec).record_checksum()

    def test_truncated_gzip_is_a_miss(self, tmp_path):
        spec = RunSpec.normalized("KTH", "online", TINY)
        store = ResultStore(tmp_path)
        store.get_or_compute(spec)
        path = store._entry_path(spec.key)
        path.write_bytes(path.read_bytes()[:40])
        assert ResultStore(tmp_path).get(spec) is None

    def test_old_format_entry_is_a_miss(self, tmp_path):
        spec = RunSpec.normalized("KTH", "online", TINY)
        store = ResultStore(tmp_path)
        result = store.get_or_compute(spec)
        payload = result.to_payload()
        payload["format"] = RESULT_FORMAT - 1  # e.g. written by older code
        entry = {"key": spec.key, "spec": spec.describe(), "payload": payload}
        with gzip.open(store._entry_path(spec.key), "wt", encoding="utf-8") as fh:
            json.dump(entry, fh)
        assert ResultStore(tmp_path).get(spec) is None

    def test_mismatched_key_is_a_miss(self, tmp_path):
        # an entry renamed/copied to the wrong address must not be served
        spec = RunSpec.normalized("KTH", "online", TINY)
        other = RunSpec.normalized("KTH", "easy", TINY)
        store = ResultStore(tmp_path)
        store.get_or_compute(spec)
        store._entry_path(spec.key).rename(store._entry_path(other.key))
        assert ResultStore(tmp_path).get(other) is None

    def test_no_cache_dir_is_memory_only(self):
        store = ResultStore(cache_dir="")
        assert store.cache_dir is None
        spec = RunSpec.normalized("KTH", "online", TINY)
        store.get_or_compute(spec)
        assert store.info()["disk_entries"] == 0
        assert store.info()["memory_entries"] == 1

    def test_env_var_enables_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = ResultStore()
        assert store.cache_dir == tmp_path

    def test_clear_and_info(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get_or_compute(RunSpec.normalized("KTH", "online", TINY))
        info = store.info()
        assert info["disk_entries"] == 1 and info["disk_bytes"] > 0
        assert info["fingerprint"] == code_fingerprint()
        assert store.clear() == 1
        assert store.info()["disk_entries"] == 0
        assert store.info()["memory_entries"] == 0
