"""Integration tests for the experiment harness (tiny scale).

These validate plumbing — every module renders, data shapes line up,
the cache works — not the paper's quantitative shapes, which the
benchmark suite gates at realistic scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    ExperimentConfig,
    clear_cache,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    get_result,
    make_scheduler,
    run_all,
    table1,
    table2,
)

TINY = ExperimentConfig(n_jobs=120, seed=7)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_results_are_cached(self):
        a = get_result("KTH", "online", TINY)
        b = get_result("KTH", "online", TINY)
        assert a is b

    def test_batch_alias(self):
        a = get_result("KTH", "batch", TINY)
        b = get_result("KTH", "easy", TINY)
        assert a is b

    def test_rho_distinguishes_cache_entries(self):
        a = get_result("KTH", "online", TINY, rho=0.0)
        b = get_result("KTH", "online", TINY, rho=0.5)
        assert a is not b

    def test_make_scheduler_kinds(self):
        for kind in ("online", "fcfs", "easy", "conservative"):
            sched = make_scheduler(kind, "KTH", TINY)
            assert sched.n_servers == 128

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lottery", "KTH", TINY)

    def test_r_max_follows_paper(self):
        assert TINY.r_max == TINY.q_slots // 2

    def test_scales_exist(self):
        assert set(SCALES) == {"smoke", "default", "full"}
        assert SCALES["full"].n_jobs is None


class TestArtifacts:
    def test_table1_renders_with_all_workloads(self):
        out = table1.run(TINY)
        for token in ("CTC", "KTH", "HPC2N", "512", "128", "240"):
            assert token in out

    def test_fig3_series_shapes(self):
        lefts, curves = fig3.series(TINY)
        assert set(curves) == {"KTH-online", "KTH-batch"}
        assert all(len(v) == len(lefts) for v in curves.values())

    def test_fig4_frequencies_normalized(self):
        _, wait_curves = fig4.waiting_distributions(TINY)
        for name, freq in wait_curves.items():
            assert freq.sum() == pytest.approx(1.0), name
        _, dur_curves = fig4.duration_distributions(TINY)
        for name, freq in dur_curves.items():
            assert freq.sum() == pytest.approx(1.0), name

    def test_fig5_axes_aligned(self):
        lefts, curves = fig5.series("KTH", TINY)
        assert all(len(v) == len(lefts) for v in curves.values())

    def test_table2_groups_are_paper_style(self):
        data = table2.rows(TINY)
        for table in data.values():
            for lo, hi in table:
                assert hi - lo == 50
                assert lo % 50 == 0

    def test_fig6_includes_batch_reference(self):
        _, curves = fig6.series("KTH", TINY)
        assert "KTH-batch" in curves
        assert len(curves) == len(fig6.RHOS) + 1

    @pytest.mark.slow
    def test_fig7_series_cover_all_workloads(self):
        rhos, waits = fig7.waiting_series(TINY)
        assert set(waits) == {"CTC", "KTH", "HPC2N"}
        assert all(len(v) == len(rhos) for v in waits.values())
        _, ops = fig7.ops_series(TINY)
        assert all((v > 0).all() for v in ops.values())

    @pytest.mark.slow
    def test_run_all_renders_everything(self):
        out = run_all(TINY)
        for token in ("Table 1", "Figure 3", "Figure 4", "Figure 5",
                      "Table 2", "Figure 6", "Figure 7"):
            assert token in out
