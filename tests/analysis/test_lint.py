"""Fixture-driven tests for the RAxxx lint rules.

Each fixture under ``fixtures/repro/`` contains exactly one violation;
the ``repro`` path component makes :func:`module_path` scope them as if
they lived inside the package (``core/…``, ``sim/…``, ``apps/…``).
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths, lint_source
from repro.analysis.lint import module_path

FIXTURES = Path(__file__).parent / "fixtures" / "repro"

#: (fixture, the one rule it must trip, the exact line)
CASES = [
    ("core/bad_front_pop.py", "RA001", 7),
    ("core/bad_sort_loop.py", "RA002", 7),
    ("core/bad_time_mod.py", "RA003", 5),
    ("core/bad_time_eq.py", "RA004", 5),
    ("core/bad_wall_clock.py", "RA005", 7),
    ("sim/bad_unseeded.py", "RA006", 7),
    ("apps/bad_internals.py", "RA007", 5),
    ("apps/bad_outcome.py", "RA008", 8),
    ("service/bad_actor_call.py", "RA009", 5),
    ("service/bad_lost_update.py", "RA201", 8),
    ("service/bad_blocking.py", "RA202", 7),
    ("service/bad_fire_forget.py", "RA203", 7),
    ("service/bad_unbounded_read.py", "RA204", 7),
]


@pytest.mark.parametrize("rel,rule_id,line", CASES)
def test_fixture_trips_exactly_its_rule(rel, rule_id, line):
    report = lint_paths([FIXTURES / rel])
    assert [(v.rule_id, v.line) for v in report.violations] == [(rule_id, line)]
    assert not report.ok
    assert report.violations[0].hint  # every rule ships a fix hint


def test_clean_fixture_passes_every_rule():
    report = lint_paths([FIXTURES / "core" / "clean.py"])
    assert report.ok
    assert report.files_checked == 1


def test_noqa_fixture_fully_suppressed():
    report = lint_paths([FIXTURES / "core" / "suppressed.py"])
    assert report.ok


def test_clean_async_fixture_passes_every_concurrency_rule():
    report = lint_paths([FIXTURES / "service" / "clean_async.py"])
    assert report.ok, report.to_text()


def test_noqa_colon_form_scopes_to_listed_rules():
    source = (
        "import time\n\n\n"
        "async def nap(d):\n"
        "    time.sleep(d)  # repro: noqa: RA202  -- measured: sub-ms tick\n"
    )
    assert lint_source(source, module="service/x.py") == []
    # listing a different (known) rule does not suppress RA202
    other = source.replace("RA202", "RA201")
    assert [v.rule_id for v in lint_source(other, module="service/x.py")] == ["RA202"]


def test_unknown_rule_id_in_noqa_is_ra010():
    violations = lint_source("x = 1  # repro: noqa: RA999\n", module="core/x.py")
    assert [(v.rule_id, v.line) for v in violations] == [("RA010", 1)]
    assert "RA999" in violations[0].message


def test_bare_noqa_is_never_ra010():
    assert lint_source("x = 1  # repro: noqa\n", module="core/x.py") == []


def test_known_rule_ids_cover_every_engine():
    from repro.analysis import KNOWN_RULE_IDS

    assert {"RA001", "RA009", "RA201", "RA204", "RA205", "RA206"} <= KNOWN_RULE_IDS
    assert "RA101" in KNOWN_RULE_IDS  # audit checks are suppressible ids too
    assert "RA999" not in KNOWN_RULE_IDS


def test_noqa_listing_other_rule_does_not_suppress():
    source = "def f(queue, st, tau):\n    return queue.pop(0) + st % tau  # repro: noqa RA003\n"
    violations = lint_source(source, module="core/x.py")
    assert [v.rule_id for v in violations] == ["RA001"]


def test_bare_noqa_suppresses_everything_on_the_line():
    source = "def f(queue, st, tau):\n    return queue.pop(0) + st % tau  # repro: noqa\n"
    assert lint_source(source, module="core/x.py") == []


def test_hot_path_rules_silent_outside_scope():
    source = "def f(items):\n    for batch in items:\n        batch.sort()\n"
    assert lint_source(source, module="apps/x.py") == []
    assert [v.rule_id for v in lint_source(source, module="core/x.py")] == ["RA002"]


def test_ra009_exempts_actor_and_non_service_modules():
    actor = "async def _actor_loop(self):\n    self.scheduler.commit(None)\n"
    assert lint_source(actor, module="service/server.py") == []
    handler = "async def ingest(self):\n    self.scheduler.commit(None)\n"
    assert [v.rule_id for v in lint_source(handler, module="service/server.py")] == ["RA009"]
    assert lint_source(handler, module="apps/server.py") == []


def test_ra009_ignores_sync_helpers():
    source = "def _apply_reserve(self, payload):\n    return self.scheduler.commit(payload)\n"
    assert lint_source(source, module="service/server.py") == []


def test_syntax_error_reported_as_ra000():
    violations = lint_source("def f(:\n", path="broken.py")
    assert [v.rule_id for v in violations] == ["RA000"]


def test_module_path_strips_through_repro():
    assert module_path("src/repro/core/calendar.py") == "core/calendar.py"
    assert module_path("/x/site-packages/repro/sim/replay.py") == "sim/replay.py"
    assert module_path("scripts/helper.py") == "helper.py"


def test_shipped_package_is_lint_clean():
    report = lint_paths([Path(repro.__file__).parent])
    assert report.ok, report.to_text()
