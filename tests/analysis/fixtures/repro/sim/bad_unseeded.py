"""Fixture: exactly one RA006 violation (module-level RNG draw)."""

import random


def jitter(delay: float) -> float:
    return delay * random.random()
