"""Fixture: exactly one RA003 violation (float modulo on a time value)."""


def slot_offset(st: float, tau: float) -> float:
    return st % tau
