"""Fixture: violations silenced by ``# repro: noqa`` pragmas."""


def drain(queue: list[int], st: float, tau: float) -> float:
    first = queue.pop(0)  # repro: noqa RA001 -- bounded: len(queue) <= 4
    offset = st % tau  # repro: noqa
    return first + offset
