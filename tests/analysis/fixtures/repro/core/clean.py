"""Fixture: near-miss patterns that every rule must leave alone."""

import random
from time import perf_counter


def near_misses(values: list[float], st: float, et: float, tau: float) -> float:
    values.pop()  # back pop is O(1)
    values.pop(1)  # not the front
    ordered = sorted(values)  # single sort outside any loop
    if st == et:  # stored floats, not derived arithmetic
        return 0.0
    q = int(st // tau)
    while q * tau > st:  # ordered comparison against the product
        q -= 1
    rng = random.Random(42)  # seeded: reproducible
    t0 = perf_counter()  # measuring wall time is allowed
    return ordered[0] + rng.random() + (perf_counter() - t0)
