"""Fixture: exactly one RA004 violation (equality against a derived time)."""


def ends_exactly(st: float, lr: float, et: float) -> bool:
    return st + lr == et
