"""Fixture: exactly one RA005 violation (wall-clock read in the simulator)."""

import time


def stamp() -> float:
    return time.time()
