"""Fixture: exactly one RA002 violation (sorted() inside a loop)."""


def tops(batches: list[list[int]]) -> list[int]:
    best = []
    for batch in batches:
        best.append(sorted(batch)[-1])
    return best
