"""Fixture: exactly one RA001 violation (front-of-list pop)."""


def drain(queue: list[int]) -> list[int]:
    drained = []
    while queue:
        drained.append(queue.pop(0))
    return drained
