"""Fixture: exactly one RA007 violation (slot-tree internals reached)."""


def root_key(tree):
    return tree._root.key
