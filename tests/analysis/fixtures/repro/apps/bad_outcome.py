"""Fixture: exactly one RA008 violation (outcome consumer reads r_max)."""


def attempts_used(scheduler, request) -> int:
    outcome = scheduler.schedule_detailed(request)
    if outcome.allocation is not None:
        return outcome.attempts
    return scheduler.r_max
