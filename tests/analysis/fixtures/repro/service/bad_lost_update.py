"""Fixture: RMW of self state across an await — exactly one RA201."""


class Metrics:
    async def bump(self, sampler):
        depth = self.depth
        await sampler.flush()
        self.depth = depth + 1
