"""Fixture: async near-misses every RA2xx rule must leave alone."""

import asyncio


class Actor:
    async def _actor_loop(self, queue):
        # the single writer may carry state across awaits (RA201 exempt)
        depth = self.depth
        await queue.join()
        self.depth = depth + 1

    async def refresh(self, sampler):
        # read and write in the same post-await segment: no lost update
        await sampler.flush()
        self.depth = self.depth + 1

    async def overwrite(self, sampler):
        # the written value does not derive from a pre-await read
        await sampler.flush()
        self.depth = 0


async def well_behaved(host, port, job, proc):
    reader, writer = await asyncio.open_connection(host, port, limit=1 << 20)
    line = await reader.readline()  # awaited stream read, not a sync file
    await asyncio.sleep(0.01)  # the async sleep, not time.sleep
    task = asyncio.create_task(job())  # retained, observed, awaited
    task.add_done_callback(lambda t: t.exception())
    await asyncio.to_thread(proc.wait)  # blocking call pushed off-loop
    writer.close()
    return line, await task
