"""Fixture: dropped create_task — exactly one RA203."""

import asyncio


async def kick(job):
    asyncio.create_task(job())
