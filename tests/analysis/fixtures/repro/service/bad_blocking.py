"""Fixture: time.sleep inside a coroutine — exactly one RA202."""

import time


async def throttle(interval):
    time.sleep(interval)
