"""Fixture: a connection handler committing directly — exactly one RA009."""


async def handle_connection(scheduler, request, writer):
    allocation = scheduler.commit(request)
    writer.write(repr(allocation).encode())
    await writer.drain()
