"""Fixture: open_connection with the 64 KiB default — exactly one RA204."""

import asyncio


async def connect(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    return reader, writer
