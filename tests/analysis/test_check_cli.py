"""End-to-end tests for the ``repro check`` subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


@pytest.fixture(autouse=True)
def _no_ambient_audit(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT", raising=False)


class TestLintMode:
    def test_violating_file_exits_nonzero(self, capsys):
        rc = main(["check", str(FIXTURES / "core" / "bad_front_pop.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RA001" in out and "hint:" in out

    def test_clean_file_exits_zero(self, capsys):
        rc = main(["check", str(FIXTURES / "core" / "clean.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_shipped_package_is_clean_by_default(self, capsys):
        assert main(["check"]) == 0

    def test_json_format_and_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "report.json"
        rc = main(
            [
                "check",
                str(FIXTURES / "core" / "bad_time_mod.py"),
                "--format",
                "json",
                "--out",
                str(artifact),
            ]
        )
        assert rc == 1
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(artifact.read_text())
        assert printed == written
        assert printed["ok"] is False
        assert [v["rule"] for v in printed["lint"]["violations"]] == ["RA003"]


class TestConcurrencyMode:
    def test_shipped_service_conforms(self, capsys):
        rc = main(["check", "--no-lint", "--concurrency"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conform to the registry" in out

    def test_combined_lint_and_protocol_over_src(self, capsys):
        rc = main(["check", "--concurrency", "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True
        assert report["lint"]["ok"] is True
        assert report["protocol"]["ok"] is True

    @pytest.mark.parametrize(
        "kind,check_id",
        [
            ("drop-field", "RA205"),
            ("unknown-op", "RA206"),
            ("drop-handler", "RA206"),
        ],
    )
    def test_injected_drift_is_caught(self, capsys, kind, check_id):
        # --concurrency is implied by a protocol injection kind
        rc = main(["check", "--no-lint", "--inject", kind, "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 1  # an injected run never exits 0
        assert report["protocol"]["injected"]["caught"] is True
        assert check_id in {v["rule"] for v in report["protocol"]["violations"]}


class TestSarifOutput:
    def test_sarif_format_on_violations(self, capsys):
        rc = main(
            ["check", str(FIXTURES / "core" / "bad_front_pop.py"), "--format", "sarif"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "RA001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 7 and region["startColumn"] >= 1
        assert any(r["id"] == "RA001" for r in run["tool"]["driver"]["rules"])

    def test_sarif_out_artifact_alongside_text(self, capsys, tmp_path):
        artifact = tmp_path / "check.sarif"
        rc = main(
            [
                "check",
                str(FIXTURES / "core" / "clean.py"),
                "--concurrency",
                "--sarif-out",
                str(artifact),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(artifact.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"] == []


class TestAuditMode:
    def test_clean_audit_exits_zero(self, capsys):
        rc = main(
            [
                "check",
                "--no-lint",
                "--audit",
                "--audit-requests",
                "120",
                "--audit-servers",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit: clean" in out

    @pytest.mark.parametrize(
        "kind,check_id", [("size", "RA101"), ("seckey", "RA106"), ("uidmap", "RA105")]
    )
    def test_injected_corruption_is_caught(self, capsys, kind, check_id):
        rc = main(
            [
                "check",
                "--no-lint",
                "--audit",
                "--audit-requests",
                "120",
                "--audit-servers",
                "8",
                "--inject",
                kind,
                "--format",
                "json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["audit"]["caught"] is True
        assert check_id in {f["check"] for f in report["audit"]["findings"]}
