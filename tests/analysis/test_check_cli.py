"""End-to-end tests for the ``repro check`` subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


@pytest.fixture(autouse=True)
def _no_ambient_audit(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT", raising=False)


class TestLintMode:
    def test_violating_file_exits_nonzero(self, capsys):
        rc = main(["check", str(FIXTURES / "core" / "bad_front_pop.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RA001" in out and "hint:" in out

    def test_clean_file_exits_zero(self, capsys):
        rc = main(["check", str(FIXTURES / "core" / "clean.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_shipped_package_is_clean_by_default(self, capsys):
        assert main(["check"]) == 0

    def test_json_format_and_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "report.json"
        rc = main(
            [
                "check",
                str(FIXTURES / "core" / "bad_time_mod.py"),
                "--format",
                "json",
                "--out",
                str(artifact),
            ]
        )
        assert rc == 1
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(artifact.read_text())
        assert printed == written
        assert printed["ok"] is False
        assert [v["rule"] for v in printed["lint"]["violations"]] == ["RA003"]


class TestAuditMode:
    def test_clean_audit_exits_zero(self, capsys):
        rc = main(
            [
                "check",
                "--no-lint",
                "--audit",
                "--audit-requests",
                "120",
                "--audit-servers",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit: clean" in out

    @pytest.mark.parametrize(
        "kind,check_id", [("size", "RA101"), ("seckey", "RA106"), ("uidmap", "RA105")]
    )
    def test_injected_corruption_is_caught(self, capsys, kind, check_id):
        rc = main(
            [
                "check",
                "--no-lint",
                "--audit",
                "--audit-requests",
                "120",
                "--audit-servers",
                "8",
                "--inject",
                kind,
                "--format",
                "json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["audit"]["caught"] is True
        assert check_id in {f["check"] for f in report["audit"]["findings"]}
