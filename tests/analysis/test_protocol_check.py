"""Tests for the RA205/RA206 wire-protocol conformance checker.

Unit tests drive :func:`scan_send_sites` on synthetic sources; the
drift tests copy the real service modules into a tmp tree and break
them, proving the checker catches exactly that bug class; the inject
tests exercise the self-test registry end to end.
"""

import shutil
from pathlib import Path

import pytest

import repro.errors
import repro.service
from repro.analysis.protocol_check import (
    GATEWAY_SEND_SITE_MODULES,
    PROTOCOL_INJECTIONS,
    SEND_SITE_MODULES,
    collect_model,
    run_protocol_check,
    scan_send_sites,
)

SERVICE_DIR = Path(repro.service.__file__).resolve().parent
ERRORS_PATH = Path(repro.errors.__file__).resolve()


def _copy_tree(tmp_path: Path) -> tuple[Path, Path]:
    """The real service modules + errors.py, copied so tests can break them."""
    service_dir = tmp_path / "service"
    service_dir.mkdir()
    for name in SEND_SITE_MODULES:
        shutil.copy(SERVICE_DIR / name, service_dir / name)
    errors_path = tmp_path / "errors.py"
    shutil.copy(ERRORS_PATH, errors_path)
    return service_dir, errors_path


class TestSendSites:
    def test_conforming_message_is_clean(self):
        src = 'm = {"op": "cancel", "rid": 7, "seq": 3}\n'
        assert scan_send_sites(src) == []

    def test_unknown_op(self):
        src = 'm = {"op": "resrve", "rid": 7}\n'
        (v,) = scan_send_sites(src)
        assert v.rule_id == "RA205" and "resrve" in v.message

    def test_unknown_field(self):
        src = 'm = {"op": "cancel", "rid": 7, "ird": 7}\n'
        (v,) = scan_send_sites(src)
        assert "'ird'" in v.message and "known fields" in v.message

    def test_missing_required_field(self):
        src = 'm = {"op": "cancel"}\n'
        (v,) = scan_send_sites(src)
        assert "required field 'rid' missing" in v.message

    def test_splat_may_supply_required_fields(self):
        src = 'm = {"op": "reserve", "rid": rid, **entry}\n'
        assert scan_send_sites(src) == []

    def test_wrong_literal_type(self):
        src = 'm = {"op": "cancel", "rid": "seven"}\n'
        (v,) = scan_send_sites(src)
        assert "wire type 'int'" in v.message

    def test_bool_is_not_an_int(self):
        src = 'm = {"op": "cancel", "rid": True}\n'
        (v,) = scan_send_sites(src)
        assert v.rule_id == "RA205"

    def test_non_literal_values_are_runtime_business(self):
        src = 'm = {"op": "cancel", "rid": request.rid}\n'
        assert scan_send_sites(src) == []

    def test_responses_only_checked_for_known_op(self):
        ok = 'r = {"ok": True, "op": "cancel", "released": 3}\n'
        assert scan_send_sites(ok) == []
        bad = 'r = {"ok": True, "op": "cancell"}\n'
        (v,) = scan_send_sites(bad)
        assert "unknown op" in v.message

    def test_dicts_without_literal_op_are_not_messages(self):
        assert scan_send_sites('d = {"rid": 7}\n') == []
        assert scan_send_sites('d = {"op": op_name}\n') == []


class TestConformance:
    def test_shipped_service_conforms(self):
        report = run_protocol_check()
        assert report.ok, report.to_text()
        gateway_dir = SERVICE_DIR.parent / "gateway"
        gateway_present = sum(
            1 for name in GATEWAY_SEND_SITE_MODULES if (gateway_dir / name).exists()
        )
        assert report.files_checked == len(SEND_SITE_MODULES) + gateway_present + 1
        assert report.injected is None

    def test_model_tables_are_complete(self):
        model = collect_model()
        public = {n for n, s in model.registry.items() if s.role == "public"}
        internal = {n for n, s in model.registry.items() if s.role == "shard"}
        follower = {n for n, s in model.registry.items() if s.role == "follower"}
        assert set(model.server_handlers) == public
        assert set(model.shard_handlers) == internal
        if model.follower_present:
            assert set(model.follower_handlers) == follower
        assert set(model.error_codes) - model.mapped_codes == {"OK"}


class TestDrift:
    def test_removed_handler_is_ra206(self, tmp_path):
        service_dir, errors_path = _copy_tree(tmp_path)
        server = service_dir / "server.py"
        server.write_text(
            server.read_text().replace("_actor_apply_cancel", "_actor_apply_cancelled")
        )
        report = run_protocol_check(service_dir=service_dir, errors_path=errors_path)
        assert not report.ok
        messages = [v.message for v in report.violations]
        assert any("'cancel' has no _actor_apply_cancel" in m for m in messages)
        assert any("_actor_apply_cancelled serves an op missing" in m for m in messages)
        assert all(v.rule_id == "RA206" for v in report.violations)

    def test_rogue_send_site_is_ra205(self, tmp_path):
        service_dir, errors_path = _copy_tree(tmp_path)
        loadgen = service_dir / "loadgen.py"
        loadgen.write_text(
            loadgen.read_text()
            + '\n\ndef rogue(rid):\n    return {"op": "cancel", "rid": rid, "force": 1}\n'
        )
        report = run_protocol_check(service_dir=service_dir, errors_path=errors_path)
        assert [v.rule_id for v in report.violations] == ["RA205"]
        assert "'force'" in report.violations[0].message

    def test_noqa_suppresses_a_protocol_finding(self, tmp_path):
        service_dir, errors_path = _copy_tree(tmp_path)
        loadgen = service_dir / "loadgen.py"
        loadgen.write_text(
            loadgen.read_text()
            + "\n\ndef rogue(rid):\n"
            + '    return {"op": "cancel", "rid": rid, "force": 1}  # repro: noqa: RA205\n'
        )
        report = run_protocol_check(service_dir=service_dir, errors_path=errors_path)
        assert report.ok, report.to_text()

    def test_unmapped_error_code_is_ra206(self, tmp_path):
        service_dir, errors_path = _copy_tree(tmp_path)
        errors_path.write_text(
            errors_path.read_text().replace(
                "code = ErrorCode.CONFLICT", "code = ErrorCode.REJECTED"
            )
        )
        report = run_protocol_check(service_dir=service_dir, errors_path=errors_path)
        assert any(
            v.rule_id == "RA206" and "ErrorCode.CONFLICT" in v.message
            for v in report.violations
        )


class TestInjections:
    @pytest.mark.parametrize("kind", sorted(PROTOCOL_INJECTIONS))
    def test_injected_drift_is_caught(self, kind):
        report = run_protocol_check(inject=kind)
        assert not report.ok  # an injected run never passes
        assert report.injected is not None
        assert report.injected["caught"] is True
        expected = PROTOCOL_INJECTIONS[kind][1]
        assert report.injected["expected"] == expected
        assert any(v.rule_id == expected for v in report.violations)
        assert kind in report.to_text() and "caught" in report.to_text()

    def test_injection_registry_shape(self):
        assert set(PROTOCOL_INJECTIONS) == {
            "drop-field",
            "unknown-op",
            "drop-handler",
            "drop-follower-handler",
        }
        for mutate, expected in PROTOCOL_INJECTIONS.values():
            assert callable(mutate)
            assert expected in {"RA205", "RA206"}
