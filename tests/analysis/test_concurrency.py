"""Unit tests for the await-segmentation engine behind RA201…RA204.

The fixtures in ``fixtures/repro/service`` cover the rule layer; these
tests drive :mod:`repro.analysis.concurrency` directly on the corners
the segmentation model has to get right — augmented one-liners, branch
merging, loop re-walks, and the data-flow taint that keeps unrelated
post-await writes from false-firing.
"""

import ast

from repro.analysis.concurrency import (
    awaited_call_ids,
    find_lost_updates,
    iter_coroutines,
    self_attribute_path,
    walk_body,
)
from repro.analysis.lint import lint_source


def _coroutine(source: str) -> ast.AsyncFunctionDef:
    (fn,) = iter_coroutines(ast.parse(source))
    return fn


def _lost(source: str) -> list[tuple[str, int]]:
    fn = _coroutine(source)
    return [(f.path, f.node.lineno) for f in find_lost_updates(fn)]


def test_plain_rmw_across_await_detected():
    src = (
        "async def f(self):\n"
        "    d = self.depth\n"
        "    await self.flush()\n"
        "    self.depth = d + 1\n"
    )
    assert _lost(src) == [("self.depth", 4)]


def test_augassign_with_awaited_value_is_one_line_lost_update():
    src = "async def f(self):\n    self.depth += await self.sample()\n"
    assert _lost(src) == [("self.depth", 2)]


def test_augassign_without_await_is_atomic():
    src = "async def f(self):\n    await self.flush()\n    self.depth += 1\n"
    assert _lost(src) == []


def test_same_segment_rmw_is_clean():
    src = "async def f(self):\n    await self.flush()\n    self.depth = self.depth + 1\n"
    assert _lost(src) == []


def test_unrelated_post_await_write_is_clean():
    src = (
        "async def f(self):\n"
        "    d = self.depth\n"
        "    await self.flush()\n"
        "    self.depth = 0\n"
        "    return d\n"
    )
    assert _lost(src) == []


def test_reassignment_before_await_kills_the_taint():
    src = (
        "async def f(self):\n"
        "    d = self.depth\n"
        "    d = 0\n"
        "    await self.flush()\n"
        "    self.depth = d\n"
    )
    assert _lost(src) == []


def test_await_inside_if_branch_still_separates_segments():
    src = (
        "async def f(self, fast):\n"
        "    d = self.depth\n"
        "    if fast:\n"
        "        await self.flush()\n"
        "    self.depth = d + 1\n"
    )
    assert _lost(src) == [("self.depth", 5)]


def test_suspending_loop_catches_cross_iteration_hazard():
    # the read happens on iteration k, the write on iteration k with the
    # await of iteration k-1 in between — only a loop re-walk sees it
    src = (
        "async def f(self, items):\n"
        "    for item in items:\n"
        "        d = self.depth\n"
        "        await self.put(item)\n"
        "        self.depth = d + 1\n"
    )
    assert _lost(src) == [("self.depth", 5)]


def test_non_suspending_loop_is_atomic():
    src = (
        "async def f(self, items):\n"
        "    for item in items:\n"
        "        self.depth = self.depth + item\n"
    )
    assert _lost(src) == []


def test_nested_function_bodies_are_not_walked():
    src = (
        "async def f(self):\n"
        "    def helper():\n"
        "        import time\n"
        "        time.sleep(1)\n"
        "    await self.run(helper)\n"
    )
    fn = _coroutine(src)
    assert all(not isinstance(n, ast.Call) or n.func.attr != "sleep"
               for n in walk_body(fn) if isinstance(n, ast.Call)
               and isinstance(n.func, ast.Attribute))
    # and the rule layer agrees: a sync helper may block off-loop
    assert lint_source(src, module="service/x.py") == []


def test_awaited_call_ids_only_cover_direct_awaits():
    src = (
        "async def f(reader):\n"
        "    line = await reader.readline()\n"
        "    peek = reader.readline()\n"
    )
    fn = _coroutine(src)
    calls = [n for n in ast.walk(fn) if isinstance(n, ast.Call)]
    awaited = awaited_call_ids(fn)
    assert sum(1 for c in calls if id(c) in awaited) == 1


def test_self_attribute_path_roots_and_chains():
    read = ast.parse("self.a.b").body[0].value
    assert self_attribute_path(read) == "self.a.b"
    other = ast.parse("conn.a").body[0].value
    assert self_attribute_path(other) is None


def test_actor_coroutines_exempt_from_ra201():
    src = (
        "async def _actor_loop(self):\n"
        "    d = self.depth\n"
        "    await self.flush()\n"
        "    self.depth = d + 1\n"
    )
    assert lint_source(src, module="service/x.py") == []
    # identical body under a non-actor name fires
    fired = lint_source(src.replace("_actor_loop", "handle"), module="service/x.py")
    assert [v.rule_id for v in fired] == ["RA201"]


def test_ra202_import_alias_resolution():
    src = "from time import sleep\n\n\nasync def f(d):\n    sleep(d)\n"
    assert [v.rule_id for v in lint_source(src, module="service/x.py")] == ["RA202"]


def test_ra202_asyncio_wait_not_mistaken_for_popen_wait():
    src = (
        "import asyncio\n\n\n"
        "async def f(tasks):\n"
        "    done, pending = await asyncio.wait(tasks)\n"
        "    return done, pending\n"
    )
    assert lint_source(src, module="service/x.py") == []


def test_ra203_taskgroup_create_task_exempt():
    src = (
        "import asyncio\n\n\n"
        "async def f(job):\n"
        "    async with asyncio.TaskGroup() as tg:\n"
        "        tg.create_task(job())\n"
    )
    assert lint_source(src, module="service/x.py") == []


def test_rules_scoped_to_async_packages():
    src = "import time\n\n\nasync def f(d):\n    time.sleep(d)\n"
    assert [v.rule_id for v in lint_source(src, module="verify/x.py")] == ["RA202"]
    assert lint_source(src, module="apps/x.py") == []
