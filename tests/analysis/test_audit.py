"""Tests for the structural audit engine and the mutation auditor.

The mutation tests corrupt a live, replay-populated calendar and assert
that the audit reports exactly the check ID documented for that breakage
(RA101 size fields, RA105 uid map, RA106 secondary keys, …).
"""

import pytest

from repro.analysis.audit import (
    AuditError,
    MutationAuditor,
    audit_calendar,
    audit_tree,
    corrupt_secondary_key,
    corrupt_size_field,
    corrupt_uid_map,
)
from repro.core.calendar import AvailabilityCalendar
from repro.core.types import INF, IdlePeriod
from repro.schedulers import OnlineScheduler
from repro.sim.replay import _audit_stride_from_env, replay
from repro.workloads.stress import stress_workload


@pytest.fixture(autouse=True)
def _no_ambient_audit(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT", raising=False)


def populated(n_requests=200, n_servers=8):
    """An OnlineScheduler whose calendar went through a stress replay."""
    scheduler = OnlineScheduler(n_servers=n_servers, tau=900.0, q_slots=96)
    requests = stress_workload(n_requests, n_servers, rho=0.3, seed=7)
    result = replay(scheduler, requests, record_latencies=False)
    assert result.accepted > 0
    return scheduler


def check_ids(findings):
    return {f.check_id for f in findings}


class TestTreeCorruptions:
    def test_replayed_calendar_audits_clean(self):
        assert audit_calendar(populated().calendar) == []

    def test_corrupt_size_field_reports_ra101(self):
        cal = populated().calendar
        corrupt_size_field(cal)
        assert "RA101" in check_ids(audit_calendar(cal))

    def test_corrupt_secondary_key_reports_ra106(self):
        cal = populated().calendar
        corrupt_secondary_key(cal)
        assert "RA106" in check_ids(audit_calendar(cal))

    def test_corrupt_uid_map_reports_ra105(self):
        cal = populated().calendar
        corrupt_uid_map(cal)
        assert "RA105" in check_ids(audit_calendar(cal))

    def test_validate_raises_audit_error_which_is_assertion_error(self):
        cal = populated().calendar
        corrupt_size_field(cal)
        with pytest.raises(AssertionError) as excinfo:
            cal.validate()
        assert isinstance(excinfo.value, AuditError)
        assert "RA101" in check_ids(excinfo.value.findings)

    def test_single_tree_audit_localizes_the_corruption(self):
        cal = populated().calendar
        clean_before = all(not audit_tree(t) for t in cal._trees.values())
        assert clean_before
        corrupt_size_field(cal)
        dirty = [q for q, t in cal._trees.items() if audit_tree(t)]
        assert len(dirty) == 1


class TestCalendarCorruptions:
    def test_desynced_key_array_reports_ra111(self):
        cal = populated().calendar
        cal._server_keys[0].append(1e12)
        assert "RA111" in check_ids(audit_calendar(cal))

    def test_missing_tree_entry_reports_ra112(self):
        cal = populated().calendar
        period = next(
            p
            for tree in cal._trees.values()
            for p in tree.periods()
            if p.et != INF
        )
        tree = next(t for t in cal._trees.values() if period in t)
        tree.remove(period)
        assert "RA112" in check_ids(audit_calendar(cal))

    def test_fabricated_pending_entry_reports_ra113(self):
        cal = populated().calendar
        ghost = IdlePeriod(server=0, st=0.0, et=cal.horizon_end + 100.0)
        cal._pending[ghost.uid] = ghost
        assert "RA113" in check_ids(audit_calendar(cal))

    def test_tail_index_desync_reports_ra115(self):
        cal = populated().calendar
        assert cal._inf_periods, "replayed calendar should keep trailing periods"
        cal._inf_periods.pop(0)
        assert "RA115" in check_ids(audit_calendar(cal))


class TestMutationAuditor:
    def test_full_stride_replay_stays_clean(self):
        scheduler = OnlineScheduler(n_servers=8, tau=900.0, q_slots=96)
        requests = stress_workload(150, 8, rho=0.3, seed=11)
        result = replay(scheduler, requests, record_latencies=False, audit_stride=1)
        assert result.accepted > 0

    def test_auditing_does_not_change_outcomes(self):
        requests = stress_workload(150, 8, rho=0.3, seed=11)
        plain = replay(
            OnlineScheduler(n_servers=8, tau=900.0, q_slots=96),
            requests,
            record_latencies=False,
        )
        audited = replay(
            OnlineScheduler(n_servers=8, tau=900.0, q_slots=96),
            requests,
            record_latencies=False,
            audit_stride=1,
        )
        assert audited.outcome_checksum == plain.outcome_checksum

    def test_ledger_tampering_reports_ra114(self):
        cal = AvailabilityCalendar(n_servers=4, tau=900.0, q_slots=96)
        auditor = MutationAuditor(cal)
        auditor.audit_now()  # fresh calendar passes
        hs = cal.horizon_start
        auditor._busy[0].append((hs + 10.0, hs + 20.0))  # busy nothing allocated
        with pytest.raises(AuditError) as excinfo:
            auditor.audit_now()
        assert check_ids(excinfo.value.findings) == {"RA114"}

    def test_detach_restores_the_calendar_methods(self):
        cal = AvailabilityCalendar(n_servers=4, tau=900.0, q_slots=96)
        auditor = MutationAuditor(cal)
        assert "allocate" in cal.__dict__
        auditor.detach()
        assert "allocate" not in cal.__dict__

    def test_stride_must_be_positive(self):
        cal = AvailabilityCalendar(n_servers=2, tau=900.0, q_slots=24)
        with pytest.raises(ValueError):
            MutationAuditor(cal, stride=0)


class TestEnvDecoding:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("", None),
            ("0", None),
            ("off", None),
            ("no", None),
            ("all", 1),
            ("every", 1),
            ("1", 1000),
            ("on", 1000),
            ("true", 1000),
            ("250", 250),
            ("junk", 1000),
        ],
    )
    def test_repro_audit_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_AUDIT", raw)
        assert _audit_stride_from_env() == expected

    def test_env_attaches_auditor_and_keeps_checksum(self, monkeypatch):
        requests = stress_workload(100, 8, rho=0.3, seed=3)
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        plain = replay(
            OnlineScheduler(n_servers=8, tau=900.0, q_slots=96),
            requests,
            record_latencies=False,
        )
        monkeypatch.setenv("REPRO_AUDIT", "all")
        audited = replay(
            OnlineScheduler(n_servers=8, tau=900.0, q_slots=96),
            requests,
            record_latencies=False,
        )
        assert audited.outcome_checksum == plain.outcome_checksum
