"""Unit tests for job records."""

import pytest

from repro.metrics.records import JobRecord


def rec(start=100.0, sr=40.0, lr=60.0, nr=4):
    return JobRecord(
        rid=1, qr=40.0, sr=sr, lr=lr, nr=nr, start=start, attempts=2, ops=10, scheduler="online"
    )


class TestJobRecord:
    def test_waiting_time(self):
        assert rec().waiting_time == 60.0

    def test_temporal_penalty(self):
        # P^l = W / l = 60 / 60
        assert rec().temporal_penalty == 1.0

    def test_end_and_turnaround(self):
        r = rec()
        assert r.end == 160.0
        assert r.turnaround == 120.0

    def test_zero_wait(self):
        r = rec(start=40.0)
        assert r.waiting_time == 0.0
        assert r.temporal_penalty == 0.0

    def test_rejected_record(self):
        r = rec(start=None)
        assert r.rejected
        with pytest.raises(ValueError, match="rejected"):
            _ = r.waiting_time
        with pytest.raises(ValueError, match="rejected"):
            _ = r.end

    def test_accepted_flag(self):
        assert not rec().rejected
