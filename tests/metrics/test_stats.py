"""Unit tests for the Section 5 statistics."""

import numpy as np
import pytest

from repro.metrics.records import JobRecord
from repro.metrics.stats import (
    HOUR,
    attempts_by_spatial_bin,
    avg_waiting_by_spatial,
    duration_histogram,
    summarize,
    temporal_penalty_by_duration,
    waiting_time_histogram,
)


def rec(rid=0, wait_h=1.0, lr_h=2.0, nr=4, attempts=1, rejected=False):
    sr = 0.0
    return JobRecord(
        rid=rid,
        qr=sr,
        sr=sr,
        lr=lr_h * HOUR,
        nr=nr,
        start=None if rejected else sr + wait_h * HOUR,
        attempts=attempts,
        ops=5,
        scheduler="test",
    )


class TestSummarize:
    def test_basic_numbers(self):
        records = [rec(rid=i, wait_h=float(i)) for i in range(5)]  # waits 0..4 h
        s = summarize(records)
        assert s.jobs == 5 and s.accepted == 5
        assert s.mean_wait == pytest.approx(2.0)
        assert s.median_wait == pytest.approx(2.0)
        assert s.max_wait == pytest.approx(4.0)

    def test_rejections_excluded_from_waits(self):
        records = [rec(rid=0, wait_h=2.0), rec(rid=1, rejected=True)]
        s = summarize(records)
        assert s.jobs == 2 and s.accepted == 1
        assert s.mean_wait == pytest.approx(2.0)
        assert s.acceptance_rate == pytest.approx(0.5)

    def test_empty(self):
        s = summarize([])
        assert s.jobs == 0 and s.acceptance_rate == 1.0

    def test_all_rejected(self):
        s = summarize([rec(rejected=True)])
        assert s.accepted == 0 and s.mean_wait == 0.0


class TestWaitingHistogram:
    def test_frequencies_sum_to_one(self):
        records = [rec(rid=i, wait_h=float(i % 7)) for i in range(70)]
        _, freq = waiting_time_histogram(records, bin_hours=1.0, max_hours=10.0)
        assert freq.sum() == pytest.approx(1.0)

    def test_tail_lands_in_last_bin(self):
        records = [rec(wait_h=500.0)]
        lefts, freq = waiting_time_histogram(records, bin_hours=1.0, max_hours=10.0)
        assert freq[-1] == pytest.approx(1.0)
        assert lefts[-1] == 9.0

    def test_tail_lands_in_last_bin_non_multiple_max(self):
        # max_hours=14 is not a multiple of bin_hours=1.5: the last edge
        # overshoots (edges end at 15.0) and the old max_hours-relative
        # clip dropped the tail into the second-to-last bin
        records = [rec(wait_h=500.0)]
        lefts, freq = waiting_time_histogram(records, bin_hours=1.5, max_hours=14.0)
        assert freq[-1] == pytest.approx(1.0)
        assert freq[:-1].sum() == pytest.approx(0.0)

    def test_zero_wait_in_first_bin(self):
        _, freq = waiting_time_histogram([rec(wait_h=0.0)], bin_hours=1.0, max_hours=4.0)
        assert freq[0] == pytest.approx(1.0)

    def test_empty_records(self):
        lefts, freq = waiting_time_histogram([])
        assert lefts.size == 0 and freq.size == 0


class TestDurationHistogram:
    def test_distribution_shape(self):
        records = [rec(rid=i, lr_h=1.0) for i in range(3)] + [rec(rid=9, lr_h=5.0)]
        lefts, freq = duration_histogram(records, bin_hours=2.0, max_hours=8.0)
        assert freq[0] == pytest.approx(0.75)  # [0, 2): the three 1-hour jobs
        assert freq[2] == pytest.approx(0.25)  # [4, 6): the 5-hour job

    def test_includes_rejected_jobs(self):
        # Figure 4(b) describes the workload, not the outcome
        _, freq = duration_histogram([rec(rejected=True, lr_h=1.0)])
        assert freq.sum() == pytest.approx(1.0)

    def test_tail_lands_in_last_bin_non_multiple_max(self):
        _, freq = duration_histogram([rec(lr_h=999.0)], bin_hours=1.5, max_hours=14.0)
        assert freq[-1] == pytest.approx(1.0)
        assert freq[:-1].sum() == pytest.approx(0.0)


class TestTemporalPenalty:
    def test_penalty_binned_by_duration(self):
        records = [
            rec(rid=0, wait_h=2.0, lr_h=0.5),  # penalty 4, bin [0,1)
            rec(rid=1, wait_h=2.0, lr_h=4.5),  # penalty 0.444, bin [4,5)
        ]
        lefts, means = temporal_penalty_by_duration(records, bin_hours=1.0, max_hours=6.0)
        assert means[0] == pytest.approx(4.0)
        assert means[4] == pytest.approx(2.0 / 4.5)
        assert np.isnan(means[2])

    def test_small_jobs_show_higher_penalty(self):
        # same absolute wait -> smaller jobs are penalized more (Figure 3)
        records = [rec(rid=i, wait_h=1.0, lr_h=l) for i, l in enumerate([0.5, 2.5, 8.5])]
        _, means = temporal_penalty_by_duration(records, bin_hours=1.0, max_hours=10.0)
        valid = means[~np.isnan(means)]
        assert (np.diff(valid) < 0).all()


class TestSpatialMetrics:
    def test_avg_waiting_by_spatial(self):
        records = [
            rec(rid=0, wait_h=1.0, nr=10),
            rec(rid=1, wait_h=3.0, nr=20),
            rec(rid=2, wait_h=10.0, nr=30),
        ]
        lefts, means = avg_waiting_by_spatial(records, bin_width=25)
        assert means[0] == pytest.approx(2.0 * HOUR)  # nr 10 and 20
        assert means[1] == pytest.approx(10.0 * HOUR)  # nr 30

    def test_avg_waiting_by_spatial_uses_half_open_bins(self):
        # the paper's groups are (lo, hi]: a job of exactly bin_width
        # servers belongs to the FIRST bin, one more to the second
        records = [
            rec(rid=0, wait_h=1.0, nr=25),  # boundary: (0, 25]
            rec(rid=1, wait_h=3.0, nr=26),  # (25, 50]
            rec(rid=2, wait_h=5.0, nr=50),  # boundary: (25, 50]
        ]
        lefts, means = avg_waiting_by_spatial(records, bin_width=25)
        assert list(lefts) == [0, 25]
        assert means[0] == pytest.approx(1.0 * HOUR)
        assert means[1] == pytest.approx(4.0 * HOUR)

    def test_avg_waiting_matches_attempts_grouping(self):
        # both spatial metrics must agree on which bin a boundary job is in
        records = [rec(rid=0, wait_h=2.0, nr=50, attempts=3)]
        lefts, means = avg_waiting_by_spatial(records, bin_width=50)
        table = attempts_by_spatial_bin(records, bin_width=50)
        assert list(table.keys()) == [(0, 50)]
        assert list(lefts) == [0] and means[0] == pytest.approx(2.0 * HOUR)

    def test_attempts_by_spatial_bin_matches_paper_grouping(self):
        records = [
            rec(rid=0, nr=10, attempts=2),
            rec(rid=1, nr=50, attempts=4),  # 50 belongs to (0, 50]
            rec(rid=2, nr=51, attempts=8),  # 51 belongs to (50, 100]
        ]
        table = attempts_by_spatial_bin(records, bin_width=50)
        assert table[(0, 50)] == pytest.approx(3.0)
        assert table[(50, 100)] == pytest.approx(8.0)

    def test_empty_groups_absent(self):
        table = attempts_by_spatial_bin([rec(nr=10)], bin_width=50)
        assert list(table.keys()) == [(0, 50)]

    def test_rejected_jobs_excluded(self):
        table = attempts_by_spatial_bin([rec(rejected=True)], bin_width=50)
        assert table == {}
