"""Unit tests for the text table renderer."""

import math

from repro.metrics.report import fmt, format_series, format_table


class TestFmt:
    def test_float_precision(self):
        assert fmt(3.14159, 2) == "3.14"

    def test_nan_and_none(self):
        assert fmt(float("nan")) == "—"
        assert fmt(None) == "—"

    def test_inf(self):
        assert fmt(math.inf) == "inf"

    def test_passthrough(self):
        assert fmt("CTC") == "CTC"
        assert fmt(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        header_cols = lines[0].index("value")
        assert lines[2].index("1") == header_cols
        assert lines[3].index("22") == header_cols

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestFormatSeries:
    def test_one_row_per_x(self):
        out = format_series(
            [1, 2, 3],
            {"online": [0.1, 0.2, 0.3], "batch": [0.4, 0.5, 0.6]},
            "hours",
            sparks=False,
        )
        lines = out.splitlines()
        assert len(lines) == 5
        assert "online" in lines[0] and "batch" in lines[0]

    def test_short_series_padded(self):
        out = format_series([1, 2], {"y": [0.5]}, "x")
        assert "—" in out

    def test_spark_legend_appended(self):
        out = format_series([1, 2, 3], {"rising": [1.0, 2.0, 3.0]}, "x")
        assert out.splitlines()[-1] == "rising  ▁▄█"
