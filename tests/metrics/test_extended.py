"""Unit tests for the extended metrics."""

import numpy as np
import pytest

from repro.metrics.extended import (
    bounded_slowdown,
    jain_fairness,
    mean_bounded_slowdown,
    spatial_penalty,
    utilization_timeline,
)
from repro.metrics.records import JobRecord
from repro.metrics.report import sparkline


def rec(rid=0, wait=0.0, lr=100.0, nr=4, rejected=False):
    return JobRecord(
        rid=rid, qr=0.0, sr=0.0, lr=lr, nr=nr,
        start=None if rejected else wait, attempts=1, ops=0, scheduler="t",
    )


class TestBoundedSlowdown:
    def test_no_wait_is_unity(self):
        assert bounded_slowdown(rec(wait=0.0, lr=100.0)) == 1.0

    def test_formula(self):
        # (wait + lr) / lr for long jobs
        assert bounded_slowdown(rec(wait=100.0, lr=100.0)) == 2.0

    def test_bound_protects_tiny_jobs(self):
        # a 1-second job waiting 10s: slowdown 11/10 with bound, not 11
        assert bounded_slowdown(rec(wait=10.0, lr=1.0), bound=10.0) == pytest.approx(1.1)

    def test_mean_over_accepted_only(self):
        records = [rec(rid=0, wait=100.0, lr=100.0), rec(rid=1, rejected=True)]
        assert mean_bounded_slowdown(records) == 2.0

    def test_empty(self):
        assert mean_bounded_slowdown([]) == 1.0


class TestSpatialPenalty:
    def test_wait_per_processor(self):
        records = [rec(rid=0, wait=100.0, nr=4), rec(rid=1, wait=100.0, nr=1)]
        assert spatial_penalty(records) == pytest.approx((25.0 + 100.0) / 2)

    def test_empty(self):
        assert spatial_penalty([]) == 0.0


class TestJainFairness:
    def test_equal_waits_are_fair(self):
        records = [rec(rid=i, wait=50.0) for i in range(5)]
        assert jain_fairness(records) == pytest.approx(1.0)

    def test_single_sufferer_is_unfair(self):
        records = [rec(rid=0, wait=100.0)] + [rec(rid=i, wait=0.0) for i in range(1, 10)]
        assert jain_fairness(records) == pytest.approx(0.1)

    def test_all_zero_waits_fair(self):
        records = [rec(rid=i, wait=0.0) for i in range(5)]
        assert jain_fairness(records) == 1.0

    def test_empty(self):
        assert jain_fairness([]) == 1.0


class TestUtilizationTimeline:
    def test_single_job(self):
        times, busy = utilization_timeline([rec(wait=10.0, lr=100.0, nr=4)], n_servers=8)
        assert list(times) == [10.0, 110.0]
        assert list(busy) == [4, 0]

    def test_overlap_stacks(self):
        records = [rec(rid=0, wait=0.0, lr=100.0, nr=2), rec(rid=1, wait=50.0, lr=100.0, nr=3)]
        times, busy = utilization_timeline(records, n_servers=8)
        assert list(times) == [0.0, 50.0, 100.0, 150.0]
        assert list(busy) == [2, 5, 3, 0]

    def test_simultaneous_events_merge(self):
        records = [rec(rid=0, wait=0.0, lr=100.0, nr=2), rec(rid=1, wait=100.0, lr=50.0, nr=2)]
        times, busy = utilization_timeline(records, n_servers=8)
        assert list(times) == [0.0, 100.0, 150.0]
        assert list(busy) == [2, 2, 0]

    def test_empty(self):
        times, busy = utilization_timeline([], n_servers=4)
        assert list(busy) == [0]

    def test_bad_server_count(self):
        with pytest.raises(ValueError):
            utilization_timeline([], n_servers=0)


class TestSparkline:
    def test_monotone_series(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out == "▁▂▃▄▅▆▇█"

    def test_constant_series_mid_height(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_nan_renders_blank(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_downsampling(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10
        assert out[0] == "▁" and out[-1] == "█"
