"""Tests for DAG workflow scheduling."""

import pytest

from repro.apps.workflow import (
    CycleError,
    Stage,
    WorkflowScheduler,
    topological_order,
)

HOUR = 3600.0


def diamond():
    """ingest -> {simA, simB} -> merge."""
    return [
        Stage("ingest", nr=2, lr=HOUR),
        Stage("simA", nr=4, lr=2 * HOUR, depends_on=("ingest",)),
        Stage("simB", nr=4, lr=3 * HOUR, depends_on=("ingest",)),
        Stage("merge", nr=2, lr=HOUR, depends_on=("simA", "simB")),
    ]


def make(n=8, **kw):
    return WorkflowScheduler(n_servers=n, tau=900.0, q_slots=96, **kw)


class TestTopologicalOrder:
    def test_orders_dependencies_first(self):
        order = [s.name for s in topological_order(diamond())]
        assert order.index("ingest") < order.index("simA")
        assert order.index("simA") < order.index("merge")
        assert order.index("simB") < order.index("merge")

    def test_deterministic(self):
        a = [s.name for s in topological_order(diamond())]
        b = [s.name for s in topological_order(list(reversed(diamond())))]
        assert a == b

    def test_cycle_rejected(self):
        stages = [
            Stage("a", nr=1, lr=1.0, depends_on=("b",)),
            Stage("b", nr=1, lr=1.0, depends_on=("a",)),
        ]
        with pytest.raises(CycleError, match="cycle"):
            topological_order(stages)

    def test_self_dependency_rejected(self):
        with pytest.raises(CycleError, match="itself"):
            Stage("a", nr=1, lr=1.0, depends_on=("a",))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            topological_order([Stage("a", nr=1, lr=1.0, depends_on=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            topological_order([Stage("a", nr=1, lr=1.0), Stage("a", nr=1, lr=2.0)])


class TestPlanning:
    def test_stages_respect_dependencies(self):
        plan = make().submit(diamond())
        assert plan is not None
        assert plan.stages["simA"].start >= plan.stages["ingest"].end
        assert plan.stages["simB"].start >= plan.stages["ingest"].end
        assert plan.stages["merge"].start >= plan.stages["simA"].end
        assert plan.stages["merge"].start >= plan.stages["simB"].end

    def test_parallel_branches_overlap(self):
        plan = make().submit(diamond())
        a, b = plan.stages["simA"], plan.stages["simB"]
        assert a.start < b.end and b.start < a.end  # they run concurrently

    def test_makespan_and_critical_path(self):
        plan = make().submit(diamond())
        # critical path goes through the longer branch simB
        assert plan.critical_path() == ["ingest", "simB", "merge"]
        assert plan.makespan == pytest.approx(5 * HOUR)

    def test_earliest_start_honoured(self):
        plan = make().submit(diamond(), earliest_start=4 * HOUR)
        assert plan.start >= 4 * HOUR

    def test_deadline_met_or_rejected(self):
        sched = make()
        tight = sched.submit(diamond(), deadline=4 * HOUR)
        assert tight is None  # critical path alone needs 5 h
        ok = sched.submit(diamond(), deadline=8 * HOUR)
        assert ok is not None and ok.end <= 8 * HOUR

    def test_unplaceable_stage_rolls_back_everything(self):
        sched = make(n=4)
        # simA/simB need 4 servers each concurrently... they serialize;
        # a 5-server stage is simply impossible
        stages = diamond()[:1] + [Stage("huge", nr=5, lr=HOUR, depends_on=("ingest",))]
        assert sched.submit(stages) is None
        # rollback: the full machine is free again right now
        follow_up = sched.submit([Stage("probe", nr=4, lr=HOUR)])
        assert follow_up is not None and follow_up.start == 0.0

    def test_two_workflows_share_the_pool(self):
        sched = make(n=8)
        a = sched.submit(diamond())
        b = sched.submit(diamond())
        assert a is not None and b is not None
        # the machine can't run both sim pairs at once: b is pushed back
        assert b.end >= a.end

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            make().submit([])


class TestCancellation:
    def test_cancel_releases_all_stages(self):
        sched = make(n=8)
        plan = sched.submit(diamond())
        util_before = sched.utilization(0.0, plan.end)
        sched.cancel(plan.workflow_id)
        assert sched.utilization(0.0, plan.end) < util_before
        again = sched.submit(diamond())
        assert again is not None and again.start == plan.start

    def test_cancel_unknown_raises(self):
        with pytest.raises(KeyError):
            make().cancel(404)


class TestStageValidation:
    def test_bad_stage_parameters(self):
        with pytest.raises(ValueError, match="name"):
            Stage("", nr=1, lr=1.0)
        with pytest.raises(ValueError, match="server"):
            Stage("s", nr=0, lr=1.0)
        with pytest.raises(ValueError, match="duration"):
            Stage("s", nr=1, lr=0.0)
