"""Tests for the atomic cross-site co-allocation broker."""

import pytest

from repro.apps.multisite import CommitRace, MultiSiteBroker, Site
from repro.core.types import Request
from repro.facade import CoAllocationScheduler

HOUR = 3600.0


def make_site(name, n, tau=900.0, q=96):
    return Site(name=name, scheduler=CoAllocationScheduler(n_servers=n, tau=tau, q_slots=q))


def make_broker(sizes=(8, 4, 4)):
    sites = [make_site(f"site-{i}", n) for i, n in enumerate(sizes)]
    return MultiSiteBroker(sites, delta_t=900.0, r_max=8), sites


class TestPlan:
    def _avail(self, broker, counts):
        return {
            name: broker.sites[name].scheduler.range_search(0.0, HOUR)[: counts[i]]
            for i, name in enumerate(broker.sites)
        }

    def test_single_site_preferred(self):
        broker, _ = make_broker((8, 4, 4))
        shares = broker.plan(self._avail(broker, (8, 4, 4)), 6)
        assert shares == {"site-0": 6}

    def test_spills_to_second_site(self):
        broker, _ = make_broker((8, 4, 4))
        shares = broker.plan(self._avail(broker, (8, 4, 4)), 11)
        assert shares == {"site-0": 8, "site-1": 3}

    def test_insufficient_capacity(self):
        broker, _ = make_broker((8, 4, 4))
        assert broker.plan(self._avail(broker, (8, 4, 4)), 17) is None

    def test_zero_request_rejected(self):
        broker, _ = make_broker()
        with pytest.raises(ValueError, match="positive"):
            broker.plan({}, 0)


class TestAllocate:
    def test_fits_on_one_site(self):
        broker, _ = make_broker()
        alloc = broker.allocate(6, duration=HOUR)
        assert alloc is not None
        assert alloc.sites == ("site-0",)
        assert alloc.total_servers == 6

    def test_spans_sites_atomically(self):
        broker, sites = make_broker((8, 4, 4))
        alloc = broker.allocate(14, duration=HOUR)
        assert alloc is not None
        assert alloc.total_servers == 14
        assert len(alloc.sites) >= 2
        # every part holds the same window — the co-allocation property
        for part in alloc.parts.values():
            assert part.start == alloc.start and part.end == alloc.end
        for site in sites:
            site.scheduler.calendar.validate()

    def test_retries_on_congestion(self):
        broker, sites = make_broker((4, 4))
        # local users fill both sites for the first hour
        for site in sites:
            site.scheduler.schedule(Request(qr=0.0, sr=0.0, lr=HOUR, nr=4, rid=99))
        alloc = broker.allocate(8, duration=HOUR)
        assert alloc is not None
        assert alloc.start == HOUR  # first rung after the local jobs end

    def test_exhausts_ladder(self):
        broker, sites = make_broker((4,))
        sites[0].scheduler.schedule(
            Request(qr=0.0, sr=0.0, lr=24 * HOUR, nr=4, rid=1)
        )
        assert broker.allocate(4, duration=HOUR) is None  # 8 rungs cover only 2h

    def test_oversized_never_succeeds(self):
        broker, _ = make_broker((4, 4))
        assert broker.allocate(9, duration=HOUR) is None

    def test_release_restores_all_sites(self):
        broker, sites = make_broker((4, 4))
        alloc = broker.allocate(8, duration=HOUR)
        broker.release(alloc.rid)
        for site in sites:
            site.scheduler.calendar.validate()
        again = broker.allocate(8, duration=HOUR)
        assert again is not None and again.start == alloc.start

    def test_release_unknown_raises(self):
        broker, _ = make_broker()
        with pytest.raises(KeyError):
            broker.release(12345)

    def test_min_per_site_respected(self):
        broker, _ = make_broker((8, 4, 4))
        alloc = broker.allocate(10, duration=HOUR, min_per_site=3)
        assert alloc is not None
        assert all(part.nr >= 3 for part in alloc.parts.values())


class TestCommitRace:
    def test_race_rolls_back_and_retries(self):
        """A local job lands on site-1 between probe and commit; the
        broker must roll back site-0's part and succeed on a later rung
        (or another distribution) — never leave a dangling half."""
        broker, sites = make_broker((4, 4))
        real_probe = broker.probe
        raced = {"done": False}

        def racing_probe(start, end):
            availability = real_probe(start, end)
            if not raced["done"]:
                raced["done"] = True
                # a local user grabs all of site-1 *after* the probe
                sites[1].scheduler.schedule(
                    Request(qr=broker.now, sr=start, lr=end - start, nr=4, rid=77)
                )
            return availability

        broker.probe = racing_probe  # type: ignore[method-assign]
        alloc = broker.allocate(8, duration=HOUR)
        # the first attempt must have raced; the final state is consistent
        assert raced["done"]
        for site in sites:
            site.scheduler.calendar.validate()
        # the retry after the race must succeed: the local job ends after
        # one hour, and the ladder reaches past it
        assert alloc is not None
        assert alloc.total_servers == 8
        # crucially: no orphaned reservation survives from the raced
        # attempt — outside the final allocation and the local job, every
        # server-hour is free again
        probe_lo = alloc.end + 900.0
        for site in sites:
            free = site.scheduler.range_search(probe_lo, probe_lo + 900.0)
            assert len(free) == site.n_servers

    def test_commit_race_exception_type(self):
        broker, sites = make_broker((2,))
        availability = broker.probe(0.0, HOUR)
        # steal the resources before the commit
        sites[0].scheduler.schedule(Request(qr=0.0, sr=0.0, lr=HOUR, nr=2, rid=5))
        with pytest.raises(CommitRace):
            broker._commit({"site-0": 2}, availability, 0.0, HOUR, rid=1)
        sites[0].scheduler.calendar.validate()


class TestConstruction:
    def test_needs_sites(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiSiteBroker([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiSiteBroker([make_site("x", 2), make_site("x", 2)])

    def test_total_servers(self):
        broker, _ = make_broker((8, 4, 4))
        assert broker.total_servers == 16

    def test_advance_moves_all_sites(self):
        broker, sites = make_broker((2, 2))
        broker.advance(5000.0)
        assert all(s.scheduler.now == 5000.0 for s in sites)
