"""Tests for the lambda-grid (wavelength co-allocation) application."""

import networkx as nx
import pytest

from repro.apps.lambda_grid import LambdaGridScheduler


def line_graph():
    g = nx.Graph()
    g.add_edges_from([("a", "b"), ("b", "c"), ("c", "d")])
    return g


def ring_graph():
    g = nx.Graph()
    g.add_cycle = None  # silence lint; use explicit edges
    g.add_edges_from([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
    return g


def make(graph=None, wavelengths=2, **kw):
    return LambdaGridScheduler(graph or line_graph(), n_wavelengths=wavelengths, **kw)


class TestAdmission:
    def test_lightpath_granted_on_free_network(self):
        pce = make()
        lp = pce.request_lightpath("a", "d", duration=1800.0, window_start=0.0)
        assert lp is not None
        assert lp.path == ("a", "b", "c", "d")
        assert lp.links == (("a", "b"), ("b", "c"), ("c", "d"))
        assert lp.start == 0.0 and lp.end == 1800.0

    def test_wavelength_continuity(self):
        # one wavelength, a-b-c busy on the only lambda -> a->c blocked
        pce = make(wavelengths=1)
        first = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        assert first is not None
        second = pce.request_lightpath("a", "b", duration=3600.0, window_start=0.0)
        assert second is None  # same window, same lambda, link a-b taken

    def test_second_wavelength_used(self):
        pce = make(wavelengths=2)
        a = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        b = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        assert a is not None and b is not None
        assert a.wavelength != b.wavelength

    def test_alternate_path_on_ring(self):
        pce = make(ring_graph(), wavelengths=1)
        a = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        b = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        assert a is not None and b is not None
        assert set(a.links).isdisjoint(set(b.links))  # went the other way round

    def test_window_flexibility_delays_start(self):
        pce = make(wavelengths=1, tau=900.0)
        pce.request_lightpath("a", "b", duration=1800.0, window_start=0.0)
        lp = pce.request_lightpath(
            "a", "b", duration=1800.0, window_start=0.0, window_end=7200.0
        )
        assert lp is not None
        assert lp.start == 1800.0  # next slot rung after the first teardown

    def test_exhausted_window_fails(self):
        pce = make(wavelengths=1)
        pce.request_lightpath("a", "b", duration=36000.0, window_start=0.0)
        lp = pce.request_lightpath("a", "b", duration=600.0, window_start=0.0, window_end=1800.0)
        assert lp is None

    def test_all_links_committed_atomically(self):
        pce = make(wavelengths=1)
        lp = pce.request_lightpath("a", "d", duration=3600.0, window_start=0.0)
        for u, v in lp.links:
            assert pce.link_utilization(u, v, 0.0, 3600.0) == pytest.approx(1.0)


class TestRelease:
    def test_release_restores_capacity(self):
        pce = make(wavelengths=1)
        lp = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        pce.release_lightpath(lp.rid)
        again = pce.request_lightpath("a", "c", duration=3600.0, window_start=0.0)
        assert again is not None

    def test_release_unknown_raises(self):
        pce = make()
        with pytest.raises(KeyError):
            pce.release_lightpath(999)


class TestValidation:
    def test_bad_duration(self):
        pce = make()
        with pytest.raises(ValueError, match="duration"):
            pce.request_lightpath("a", "b", duration=0.0, window_start=0.0)

    def test_inverted_window(self):
        pce = make()
        with pytest.raises(ValueError, match="window"):
            pce.request_lightpath("a", "b", duration=10.0, window_start=100.0, window_end=0.0)

    def test_unknown_link(self):
        pce = make()
        with pytest.raises(KeyError, match="no link"):
            pce.resource_id("a", "d", 0)

    def test_wavelength_out_of_range(self):
        pce = make(wavelengths=2)
        with pytest.raises(ValueError, match="wavelength"):
            pce.resource_id("a", "b", 5)

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError, match="links"):
            LambdaGridScheduler(nx.Graph(), n_wavelengths=2)
