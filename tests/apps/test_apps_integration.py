"""Cross-app integration tests at moderate scale.

Each application is driven through a realistic session and the shared
calendar invariants are re-validated afterwards — the apps exercise code
paths (range-search + commit, release/merge, advance reservations,
rollback) in combinations the unit tests don't.
"""

import random

import networkx as nx
import pytest

from repro.apps.lambda_grid import LambdaGridScheduler
from repro.apps.mapreduce import MapReduceScheduler
from repro.apps.vcl import ReservationDenied, VCLManager
from repro.apps.workflow import Stage, WorkflowScheduler

HOUR = 3600.0


class TestVCLSession:
    def test_semester_day(self):
        """A day of interleaved classes, HPC jobs and cancellations."""
        rng = random.Random(4)
        vcl = VCLManager(n_machines=24, setup_time=900.0)
        reservations = []
        denied = 0
        for hour in range(8, 18):  # booking sweep for a teaching day
            count = rng.randint(4, 12)
            try:
                res = vcl.reserve_desktops(count, start=hour * HOUR, duration=HOUR)
                reservations.append(res)
            except ReservationDenied as err:
                denied += 1
                assert isinstance(err.alternatives, list)
        # a couple of HPC batches contend with the classes
        for _ in range(3):
            res = vcl.request_hpc(rng.randint(2, 6), duration=rng.uniform(2, 5) * HOUR)
            reservations.append(res)
        # cancel every other reservation
        for res in reservations[::2]:
            vcl.cancel(res)
        vcl.scheduler.calendar.validate()
        assert 0.0 <= vcl.pool_utilization(8 * HOUR, 18 * HOUR) <= 1.0

    def test_machines_never_double_booked(self):
        vcl = VCLManager(n_machines=6)
        taken: list = []
        for i in range(8):
            try:
                res = vcl.reserve_desktops(2, start=2 * HOUR, duration=HOUR)
            except ReservationDenied:
                continue
            for m in res.machines:
                assert m not in taken, f"machine {m} double booked"
                taken.append(m)


class TestLambdaGridSession:
    def test_mesh_under_churn(self):
        rng = random.Random(7)
        graph = nx.random_regular_graph(3, 10, seed=3)
        pce = LambdaGridScheduler(graph, n_wavelengths=3, k_paths=2)
        nodes = list(graph.nodes())
        active = []
        admitted = blocked = 0
        t = 0.0
        for i in range(40):
            t += rng.uniform(0, 900.0)
            pce.advance(t)
            if active and rng.random() < 0.3:
                lp = active.pop(rng.randrange(len(active)))
                if lp.end > pce.calendar.now:
                    pce.release_lightpath(lp.rid)
                continue
            src, dst = rng.sample(nodes, 2)
            lp = pce.request_lightpath(
                src, dst, duration=rng.uniform(900.0, 7200.0),
                window_start=t, window_end=t + 4 * HOUR,
            )
            if lp is None:
                blocked += 1
            else:
                admitted += 1
                active.append(lp)
                # wavelength continuity on the granted path
                assert len(set(lp.path)) == len(lp.path)
        pce.calendar.validate()
        assert admitted > 0

    def test_no_wavelength_double_booked(self):
        graph = nx.path_graph(4)
        pce = LambdaGridScheduler(graph, n_wavelengths=2)
        grants = []
        for _ in range(10):
            lp = pce.request_lightpath(0, 3, duration=HOUR, window_start=0.0,
                                       window_end=3 * HOUR)
            if lp:
                grants.append(lp)
        seen = {}
        for lp in grants:
            for link in lp.links:
                key = (link, lp.wavelength)
                for other_start, other_end in seen.get(key, []):
                    assert lp.end <= other_start or lp.start >= other_end
                seen.setdefault(key, []).append((lp.start, lp.end))


class TestMixedGangWorkload:
    def test_mapreduce_and_workflows_share_nothing_but_fit(self):
        """Independent schedulers on independent pools behave; within one
        pool, gang plans and DAG plans coexist."""
        mr = MapReduceScheduler(n_nodes=16, slots_per_node=2, tau=900.0, q_slots=96)
        plans = [
            mr.submit(rng_tasks, 1800.0, max(1, rng_tasks // 4), 900.0)
            for rng_tasks in (8, 16, 24, 32)
        ]
        assert all(p is not None for p in plans)
        mr.scheduler.calendar.validate()

        wf = WorkflowScheduler(n_servers=16, tau=900.0, q_slots=96)
        chain = [
            Stage("a", nr=8, lr=HOUR),
            Stage("b", nr=16, lr=HOUR, depends_on=("a",)),
            Stage("c", nr=4, lr=2 * HOUR, depends_on=("b",)),
        ]
        first = wf.submit(chain)
        second = wf.submit(chain)
        assert first is not None and second is not None
        wf.scheduler.calendar.validate()
        # stage b needs the whole machine: the two runs cannot overlap there
        b1, b2 = first.stages["b"], second.stages["b"]
        assert b1.end <= b2.start or b2.end <= b1.start
