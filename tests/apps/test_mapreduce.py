"""Tests for MapReduce gang allocation."""

import pytest

from repro.apps.mapreduce import MapReduceScheduler


def make(n=8, slots=2, **kw):
    return MapReduceScheduler(n_nodes=n, slots_per_node=slots, **kw)


class TestPlanning:
    def test_basic_two_wave_plan(self):
        mr = make()
        plan = mr.submit(n_map_tasks=8, map_duration=600.0, n_reduce_tasks=4, reduce_duration=300.0)
        assert plan is not None
        assert plan.map_allocation.nr == 4  # 8 tasks / 2 slots
        assert plan.reduce_allocation.nr == 2
        assert plan.shuffle_time == plan.map_allocation.end
        assert plan.reduce_allocation.start >= plan.shuffle_time
        assert plan.makespan >= 900.0

    def test_nodes_for_ceil_division(self):
        mr = make(slots=2)
        assert mr.nodes_for(1) == 1
        assert mr.nodes_for(2) == 1
        assert mr.nodes_for(3) == 2

    def test_reduce_wave_reserved_in_advance(self):
        mr = make(n=4)
        plan = mr.submit(4, 600.0, 4, 600.0)
        # reducers start exactly at the shuffle barrier when nodes are free
        assert plan.reduce_allocation.start == plan.shuffle_time

    def test_oversized_job_declined(self):
        mr = make(n=2, slots=1)
        assert mr.submit(5, 600.0, 1, 300.0) is None

    def test_atomic_rollback_when_reduce_fails(self):
        mr = make(n=2, slots=1, tau=300.0, q_slots=12)  # 1-hour horizon
        # the map wave runs past the horizon, so the reduce wave's start
        # (the shuffle barrier) is unschedulable -> whole job declined
        plan = mr.submit(2, 3900.0, 2, 300.0)
        assert plan is None
        # rollback freed the nodes: a small job fits immediately
        ok = mr.submit(2, 300.0, 2, 300.0)
        assert ok is not None and ok.start == 0.0

    def test_two_jobs_share_cluster(self):
        mr = make(n=8, slots=1)
        a = mr.submit(4, 600.0, 2, 300.0)
        b = mr.submit(4, 600.0, 2, 300.0)
        assert a is not None and b is not None
        assert set(a.map_allocation.servers).isdisjoint(b.map_allocation.servers)


class TestDeadlines:
    def test_deadline_met(self):
        mr = make()
        plan = mr.submit(4, 600.0, 2, 300.0, deadline=1800.0)
        assert plan is not None and plan.end <= 1800.0

    def test_impossible_deadline_declined(self):
        mr = make()
        assert mr.submit(4, 600.0, 2, 300.0, deadline=600.0) is None

    def test_deadline_declines_when_cluster_busy(self):
        mr = make(n=2, slots=1)
        mr.submit(2, 3600.0, 2, 600.0)
        late = mr.submit(2, 600.0, 2, 600.0, deadline=1800.0)
        assert late is None


class TestCancellation:
    def test_cancel_frees_both_waves(self):
        mr = make(n=2, slots=1)
        plan = mr.submit(2, 600.0, 2, 600.0)
        mr.cancel(plan.job_id)
        again = mr.submit(2, 600.0, 2, 600.0)
        assert again is not None and again.start == 0.0

    def test_cancel_unknown_raises(self):
        mr = make()
        with pytest.raises(KeyError):
            mr.cancel(42)


class TestValidation:
    def test_bad_task_count(self):
        mr = make()
        with pytest.raises(ValueError, match="positive"):
            mr.nodes_for(0)

    def test_bad_slots(self):
        with pytest.raises(ValueError, match="slot"):
            make(slots=0)

    def test_utilization_reflects_plans(self):
        mr = make(n=2, slots=1)
        plan = mr.submit(2, 600.0, 2, 600.0)
        util = mr.cluster_utilization(plan.start, plan.end)
        assert util > 0.9
