"""Tests for the VCL reservation manager."""

import pytest

from repro.apps.vcl import ReservationDenied, VCLManager


def make(n=8, setup=0.0):
    return VCLManager(n_machines=n, tau=900.0, q_slots=96, setup_time=setup)


HOUR = 3600.0


class TestDesktopReservations:
    def test_class_reservation_granted(self):
        vcl = make()
        res = vcl.reserve_desktops(4, start=2 * HOUR, duration=HOUR)
        assert res.count == 4
        assert res.start == 2 * HOUR and res.end == 3 * HOUR
        assert len(res.access_token) == 16

    def test_rigid_start_denied_with_alternatives(self):
        vcl = make(n=4)
        vcl.reserve_desktops(4, start=2 * HOUR, duration=HOUR)
        with pytest.raises(ReservationDenied) as err:
            vcl.reserve_desktops(2, start=2 * HOUR, duration=HOUR)
        assert err.value.alternatives, "denial must carry alternative times"
        # the suggested times actually work
        res = vcl.reserve_desktops(2, start=err.value.alternatives[0], duration=HOUR)
        assert res.count == 2

    def test_overlapping_classes_on_disjoint_machines(self):
        vcl = make(n=8)
        a = vcl.reserve_desktops(4, start=2 * HOUR, duration=HOUR)
        b = vcl.reserve_desktops(4, start=2 * HOUR, duration=HOUR)
        assert set(a.machines).isdisjoint(b.machines)

    def test_setup_time_blocks_preceding_window(self):
        vcl = make(n=1, setup=900.0)
        vcl.reserve_desktops(1, start=2 * HOUR, duration=HOUR)
        # the machine is held from 1:45 for image deployment
        with pytest.raises(ReservationDenied):
            vcl.reserve_desktops(1, start=2 * HOUR - 1800.0, duration=1800.0)

    def test_past_reservation_rejected(self):
        vcl = make()
        vcl.advance(HOUR)
        with pytest.raises(ValueError, match="past"):
            vcl.reserve_desktops(1, start=1800.0, duration=HOUR)

    def test_tokens_are_unique(self):
        vcl = make()
        a = vcl.reserve_desktops(1, start=HOUR, duration=HOUR)
        b = vcl.reserve_desktops(1, start=HOUR, duration=HOUR)
        assert a.access_token != b.access_token


class TestHPCRequests:
    def test_on_demand_runs_immediately(self):
        vcl = make()
        res = vcl.request_hpc(8, duration=4 * HOUR)
        assert res.start == 0.0 and res.count == 8

    def test_on_demand_waits_behind_class(self):
        vcl = make(n=2)
        vcl.reserve_desktops(2, start=900.0, duration=HOUR)
        res = vcl.request_hpc(2, duration=2 * HOUR)
        # can't fit 2h before the class, must follow it
        assert res.start >= 900.0 + HOUR

    def test_mixed_workload_shares_pool(self):
        vcl = make(n=4)
        cls = vcl.reserve_desktops(2, start=HOUR, duration=HOUR)
        hpc = vcl.request_hpc(2, duration=3 * HOUR)
        assert hpc.start == 0.0
        assert set(hpc.machines).isdisjoint(cls.machines)


class TestCancellation:
    def test_cancel_frees_machines(self):
        vcl = make(n=1)
        res = vcl.reserve_desktops(1, start=HOUR, duration=HOUR)
        vcl.cancel(res)
        again = vcl.reserve_desktops(1, start=HOUR, duration=HOUR)
        assert again.count == 1

    def test_double_cancel_raises(self):
        vcl = make()
        res = vcl.reserve_desktops(1, start=HOUR, duration=HOUR)
        vcl.cancel(res)
        with pytest.raises(KeyError):
            vcl.cancel(res)


class TestUtilization:
    def test_pool_utilization(self):
        vcl = make(n=2)
        vcl.reserve_desktops(2, start=0.0, duration=2 * HOUR)
        assert vcl.pool_utilization(0.0, 2 * HOUR) == pytest.approx(1.0)
        assert vcl.pool_utilization(0.0, 4 * HOUR) == pytest.approx(0.5)
