"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_artifacts(self):
        args = build_parser().parse_args(["experiment", "table1", "--scale", "smoke"])
        assert args.artifact == "table1" and args.scale == "smoke"

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "KTH" and args.scheduler == "online"
        assert args.rho == 0.0 and not args.reclaim


class TestSimulate(object):
    def test_online_summary(self, capsys):
        rc = main(["simulate", "--jobs", "120", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scheduler:    online" in out
        assert "waiting time" in out and "utilization" in out

    def test_batch_summary(self, capsys):
        rc = main(["simulate", "--scheduler", "easy", "--jobs", "120"])
        assert rc == 0
        assert "easy" in capsys.readouterr().out

    def test_rho_and_reclaim_flags(self, capsys):
        rc = main(
            ["simulate", "--jobs", "100", "--rho", "0.5",
             "--inaccurate-estimates", "--reclaim"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rho 0.5" in out and "+reclaim" in out


class TestGenerateAndInfo:
    def test_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "kth.swf"
        rc = main(["generate", "--jobs", "150", "--out", str(out_file)])
        assert rc == 0 and out_file.exists()
        capsys.readouterr()
        rc = main(["swf-info", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "jobs:        150 (150 usable)" in out
        assert "Computer: repro synthetic KTH" in out

    def test_generated_swf_feeds_simulator(self, tmp_path):
        from repro.schedulers import OnlineScheduler
        from repro.sim.driver import run_simulation
        from repro.workloads.swf import read_swf, swf_to_requests

        out_file = tmp_path / "ctc.swf"
        main(["generate", "--workload", "CTC", "--jobs", "100", "--out", str(out_file)])
        jobs, _ = read_swf(out_file)
        requests = swf_to_requests(jobs)
        result = run_simulation(OnlineScheduler(n_servers=512, tau=900.0, q_slots=96), requests)
        assert len(result.records) == 100


class TestExperimentCommand:
    def test_table1_smoke(self, capsys):
        rc = main(["experiment", "table1", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out and "CTC" in out


class TestProfileCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.requests == 20_000 and args.servers == 512
        assert args.sort == "cumulative" and args.dump is None

    def test_profile_prints_hot_functions(self, tmp_path, capsys):
        dump = tmp_path / "hotpath.prof"
        rc = main(
            ["profile", "--requests", "60", "--servers", "16",
             "--limit", "5", "--dump", str(dump)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "replayed 60 requests on 16 servers" in out
        assert "cumulative time" in out  # the pstats table made it out
        assert dump.exists()
