"""Tests for the command-line interface."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_artifacts(self):
        args = build_parser().parse_args(["experiment", "table1", "--scale", "smoke"])
        assert args.artifact == "table1" and args.scale == "smoke"

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "KTH" and args.scheduler == "online"
        assert args.rho == 0.0 and not args.reclaim


class TestSimulate(object):
    def test_online_summary(self, capsys):
        rc = main(["simulate", "--jobs", "120", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scheduler:    online" in out
        assert "waiting time" in out and "utilization" in out

    def test_batch_summary(self, capsys):
        rc = main(["simulate", "--scheduler", "easy", "--jobs", "120"])
        assert rc == 0
        assert "easy" in capsys.readouterr().out

    def test_rho_and_reclaim_flags(self, capsys):
        rc = main(
            ["simulate", "--jobs", "100", "--rho", "0.5",
             "--inaccurate-estimates", "--reclaim"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rho 0.5" in out and "+reclaim" in out


class TestGenerateAndInfo:
    def test_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "kth.swf"
        rc = main(["generate", "--jobs", "150", "--out", str(out_file)])
        assert rc == 0 and out_file.exists()
        capsys.readouterr()
        rc = main(["swf-info", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "jobs:        150 (150 usable)" in out
        assert "Computer: repro synthetic KTH" in out

    def test_generated_swf_feeds_simulator(self, tmp_path):
        from repro.schedulers import OnlineScheduler
        from repro.sim.driver import run_simulation
        from repro.workloads.swf import read_swf, swf_to_requests

        out_file = tmp_path / "ctc.swf"
        main(["generate", "--workload", "CTC", "--jobs", "100", "--out", str(out_file)])
        jobs, _ = read_swf(out_file)
        requests = swf_to_requests(jobs)
        result = run_simulation(OnlineScheduler(n_servers=512, tau=900.0, q_slots=96), requests)
        assert len(result.records) == 100


class TestExperimentCommand:
    def test_table1_smoke(self, capsys):
        rc = main(["experiment", "table1", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out and "CTC" in out

    def test_artifact_or_all_required(self, capsys):
        rc = main(["experiment"])
        assert rc == 2
        assert "--all" in capsys.readouterr().err

    def test_all_flag_accepted(self):
        args = build_parser().parse_args(["experiment", "--all", "--parallel", "4"])
        assert args.all_artifacts and args.artifact is None
        assert args.parallel == 4

    @pytest.mark.slow
    def test_parallel_with_cache_dir(self, tmp_path, capsys):
        import repro.experiments.store as store_mod

        old = store_mod._default_store
        try:
            rc = main(
                ["experiment", "table2", "--scale", "smoke", "--parallel", "2",
                 "--cache-dir", str(tmp_path)]
            )
        finally:
            store_mod._default_store = old
        captured = capsys.readouterr()
        assert rc == 0
        assert "Table 2" in captured.out
        assert "done in" in captured.err  # progress lines on stderr
        assert list(tmp_path.glob("*.json.gz"))  # disk tier populated


class TestCacheCommand:
    def test_info_empty_dir(self, tmp_path, capsys):
        rc = main(["cache", "info", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert '"disk_entries": 0' in out and str(tmp_path) in out

    def test_clear_round_trip(self, tmp_path, capsys):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.store import ResultStore, RunSpec

        store = ResultStore(tmp_path)
        store.get_or_compute(
            RunSpec.normalized("KTH", "online", ExperimentConfig(n_jobs=100, seed=3))
        )
        rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0 and "removed 1 entries" in out
        assert not list(tmp_path.glob("*.json.gz"))

    def test_clear_without_dir_is_noop(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        rc = main(["cache", "clear"])
        assert rc == 0
        assert "no cache dir configured" in capsys.readouterr().out


class TestServiceParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0 and args.servers == 64
        assert args.max_queue == 1024 and args.max_batch == 64
        assert args.snapshot_path is None and args.metrics_interval == 0.0

    def test_loadgen_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])
        args = build_parser().parse_args(["loadgen", "--port", "9"])
        assert args.out == "BENCH_service.json" and not args.shutdown

    def test_reserve_requires_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reserve", "--port", "9"])
        args = build_parser().parse_args(
            ["reserve", "--port", "9", "--start", "0", "--duration", "60", "--nodes", "2"]
        )
        assert args.duration == 60.0 and args.nodes == 2


class TestReserveExitCodes:
    def test_malformed_is_exit_2_without_contacting_a_server(self, capsys):
        rc = main(
            ["reserve", "--port", "1", "--start", "0", "--duration", "-5", "--nodes", "2"]
        )
        assert rc == 2
        assert "malformed" in capsys.readouterr().err


@pytest.fixture()
def served():
    """A tiny `repro serve` subprocess on an ephemeral port (N=2, horizon 40)."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ, PYTHONPATH=src_dir)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--servers", "2", "--tau", "10", "--q-slots", "4"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    assert "listening on" in line, line
    port = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
    try:
        yield port
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=10)


class TestServiceEndToEnd:
    def test_reserve_ok_then_rejected_exit_codes(self, served, capsys):
        rc = main(
            ["reserve", "--port", str(served), "--rid", "1",
             "--start", "0", "--duration", "40", "--nodes", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["ok"] is True

        # the horizon is now full: a well-formed request gets exit code 3
        rc = main(
            ["reserve", "--port", str(served), "--rid", "2",
             "--start", "0", "--duration", "40", "--nodes", "2"]
        )
        response = json.loads(capsys.readouterr().out)
        assert rc == 3
        assert response["error"]["code"] == "REJECTED"

    def test_loadgen_smoke_against_live_server(self, served, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main(
            ["loadgen", "--port", str(served), "--jobs", "30", "--seed", "5",
             "--window", "8", "--out", str(out), "--shutdown"]
        )
        printed = capsys.readouterr().out
        assert rc == 0
        assert "30/30 answered" in printed and "accepted checksum" in printed
        report = json.loads(out.read_text())
        assert report["violations_total"] == 0
        assert report["completed"] == 30


class TestProfileCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.requests == 20_000 and args.servers == 512
        assert args.sort == "cumulative" and args.dump is None

    def test_profile_prints_hot_functions(self, tmp_path, capsys):
        dump = tmp_path / "hotpath.prof"
        rc = main(
            ["profile", "--requests", "60", "--servers", "16",
             "--limit", "5", "--dump", str(dump)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "replayed 60 requests on 16 servers" in out
        assert "cumulative time" in out  # the pstats table made it out
        assert dump.exists()
