"""Unit tests for the public CoAllocationScheduler facade."""

import pytest

from repro import CoAllocationScheduler, Request


def make(n=8, tau=10.0, q=24, **kw):
    return CoAllocationScheduler(n_servers=n, tau=tau, q_slots=q, **kw)


class TestDefaults:
    def test_paper_defaults(self):
        sched = make(q=24)
        assert sched.allocator.delta_t == 10.0  # tau
        assert sched.allocator.r_max == 12  # Q/2

    def test_overrides(self):
        sched = make(delta_t=5.0, r_max=3)
        assert sched.allocator.delta_t == 5.0
        assert sched.allocator.r_max == 3

    def test_n_servers(self):
        assert make(n=8).n_servers == 8


class TestScheduleAndCancel:
    def test_schedule_and_cancel_roundtrip(self):
        sched = make(n=1)
        a = sched.schedule(Request(qr=0.0, sr=0.0, lr=100.0, nr=1, rid=1))
        assert a is not None
        assert sched.schedule(Request(qr=0.0, sr=0.0, lr=100.0, nr=1, rid=2)) is None or True
        sched.cancel(1)
        b = sched.schedule(Request(qr=0.0, sr=0.0, lr=100.0, nr=1, rid=3))
        assert b is not None and b.start == 0.0

    def test_cancel_unknown_raises(self):
        with pytest.raises(KeyError):
            make().cancel(77)

    def test_cancel_running_allocation_frees_remainder(self):
        sched = make(n=1)
        sched.schedule(Request(qr=0.0, sr=0.0, lr=100.0, nr=1, rid=1))
        sched.advance(50.0)
        sched.cancel(1)  # only [50, 100) can come back
        a = sched.schedule(Request(qr=50.0, sr=50.0, lr=50.0, nr=1, rid=2))
        assert a is not None and a.start == 50.0

    def test_release_early_reclaims_tail(self):
        sched = make(n=1)
        sched.schedule(Request(qr=0.0, sr=0.0, lr=100.0, nr=1, rid=1))
        sched.advance(40.0)
        sched.release_early(1, at_time=40.0)
        a = sched.schedule(Request(qr=40.0, sr=40.0, lr=60.0, nr=1, rid=2))
        assert a is not None and a.start == 40.0

    def test_release_early_outside_window_raises(self):
        sched = make()
        sched.schedule(Request(qr=0.0, sr=0.0, lr=100.0, nr=1, rid=1))
        with pytest.raises(ValueError, match="outside"):
            sched.release_early(1, at_time=150.0)


class TestSuggestions:
    def test_suggestions_when_busy(self):
        sched = make(n=1)
        sched.schedule(Request(qr=0.0, sr=0.0, lr=35.0, nr=1, rid=1))
        suggestions = sched.suggest_alternatives(
            Request(qr=0.0, sr=0.0, lr=10.0, nr=1, rid=2), max_suggestions=2
        )
        assert suggestions == [40.0, 50.0]

    def test_suggestions_do_not_commit(self):
        sched = make()
        sched.suggest_alternatives(Request(qr=0.0, sr=0.0, lr=10.0, nr=8, rid=1))
        a = sched.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=8, rid=2))
        assert a is not None

    def test_no_suggestions_when_impossible(self):
        sched = make(n=1)
        out = sched.suggest_alternatives(Request(qr=0.0, sr=0.0, lr=10.0, nr=5, rid=1))
        assert out == []


class TestUtilization:
    def test_utilization_window(self):
        sched = make(n=2)
        sched.schedule(Request(qr=0.0, sr=0.0, lr=60.0, nr=1, rid=1))
        assert sched.utilization(0.0, 60.0) == pytest.approx(0.5)
        assert sched.utilization(0.0, 120.0) == pytest.approx(0.25)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError, match="empty"):
            make().utilization(5.0, 5.0)


class TestOpsCounter:
    def test_counter_accumulates(self):
        sched = make()
        before = sched.counter.total()
        sched.schedule(Request(qr=0.0, sr=0.0, lr=10.0, nr=4, rid=1))
        assert sched.counter.total() > before
