"""Command-line interface.

Installed as ``repro`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.  Subcommands:

``repro experiment <artifact>``
    Regenerate one paper artifact (``table1``, ``table2``, ``fig3`` …
    ``fig7``) or ``all``/``--all``, at a chosen scale.  ``--parallel N``
    fans the distinct simulations out over worker processes;
    ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) persists results across
    runs in the content-addressed store.

``repro cache info|clear``
    Inspect or empty the on-disk result store.

``repro simulate``
    Replay one workload through one scheduler and print the summary —
    the quickest way to poke at a what-if (load, ρ, reclamation…).

``repro generate``
    Synthesize a workload and write it as an SWF file, so other tools
    (or a colleague's scheduler) can consume it.

``repro swf-info``
    Summarize an SWF file: jobs, processors, duration/size statistics.

``repro profile``
    Replay a heavy-traffic stress workload under cProfile and print the
    hot functions of the scheduling fast path.

``repro check``
    Domain-aware static analysis (AST lint rules ``RA001``…``RA009``,
    async-actor rules ``RA201``…``RA204``) over the source tree;
    ``--concurrency`` adds the wire-protocol conformance pass
    (``RA205``/``RA206``) that cross-checks every literal send site and
    handler table against the declarative registry in
    ``service/protocol.py``; ``--audit`` replays a stress workload with
    deep structural invariant audits after every calendar mutation.
    Exits non-zero on any finding; ``--format json`` emits the
    machine-readable report CI uploads as an artifact and
    ``--format sarif`` (or ``--sarif-out``) renders findings as SARIF
    2.1.0 for code-scanning annotation.

``repro serve``
    Run the online co-allocation server: a live calendar behind a
    single-writer asyncio actor, speaking NDJSON over TCP (``reserve``,
    ``probe``, ``cancel``, ``status``, ``snapshot``, ``shutdown``) with
    bounded admission, micro-batching, and checksummed snapshot/restore.
    See ``docs/service.md``.

``repro loadgen``
    Replay an SWF-derived trace against a running server at a target
    open-loop rate, re-verify every accepted reservation in a
    client-side shadow ledger, and write a ``BENCH_service.json``
    latency/throughput report.  Exits non-zero on ledger violations.

``repro fuzz``
    Differential-oracle fuzzing: replay seeded request streams against
    both the production scheduler and an obviously-correct reference
    implementation, comparing every decision and the full calendar
    state; ``--shrink`` delta-debugs any divergence to a minimal repro,
    ``--inject`` self-tests the detector against a deliberately broken
    Phase-2 selection, and ``--chaos`` drives a real server subprocess
    through deterministic fault plans (kill/restart, duplicate and
    reordered sends).  See ``docs/testing.md``.

``repro reserve``
    One-shot client: submit a single reservation to a running server.
    Exit codes are the shared :class:`repro.errors.ErrorCode` enum — 0
    granted, 2 malformed request, 3 rejected after the ``R_max`` retry
    policy, 6 load-shed (``BUSY``).

``repro gateway``
    The production front door: an asyncio HTTP/1.1 server translating
    JSON endpoints (``POST /v1/reserve|probe|cancel``, ``GET
    /v1/status``) onto the TCP service, with bearer-token tenancy,
    per-tenant token-bucket rate limits, ``/healthz`` and Prometheus
    ``/metrics``.  See ``docs/gateway.md``.

``repro follow``
    A warm-standby follower: tails the primary's decision log
    (``log_tail``) to maintain a replica calendar, verifying every
    replayed verdict, and exposes a control port for ``follower_status``
    and ``promote``.

``repro promote``
    Failover client: tell a follower to stop tailing and serve its
    replayed state as a primary.  Prints the promoted service's port,
    replication cursor and accepted checksum.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .errors import ErrorCode

__all__ = ["main", "build_parser"]

_ARTIFACTS = ("table1", "fig3", "fig4", "fig5", "table2", "fig6", "fig7", "all")
_SCHEDULERS = ("online", "easy", "conservative", "fcfs")
_WORKLOADS = ("CTC", "KTH", "HPC2N")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPDC'09 resource co-allocation reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("artifact", nargs="?", choices=_ARTIFACTS, default=None)
    exp.add_argument(
        "--all",
        action="store_true",
        dest="all_artifacts",
        help="regenerate every artifact (same as the 'all' positional)",
    )
    exp.add_argument("--scale", choices=("smoke", "default", "full"), default="default")
    exp.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="fan the distinct simulations out over N worker processes "
        "(0 = sequential in-process execution)",
    )
    exp.add_argument(
        "--cache-dir",
        default=None,
        help="persist simulation results here (defaults to $REPRO_CACHE_DIR; "
        "unset = in-memory cache only)",
    )

    sim = sub.add_parser("simulate", help="replay a workload through a scheduler")
    sim.add_argument("--workload", choices=_WORKLOADS, default="KTH")
    sim.add_argument("--scheduler", choices=_SCHEDULERS, default="online")
    sim.add_argument("--jobs", type=int, default=2000)
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument("--load", type=float, default=None, help="offered-load override")
    sim.add_argument("--rho", type=float, default=0.0, help="advance-reservation fraction")
    sim.add_argument(
        "--inaccurate-estimates",
        action="store_true",
        help="give jobs actual runtimes below their estimates",
    )
    sim.add_argument(
        "--reclaim",
        action="store_true",
        help="online scheduler releases unused reservation tails",
    )

    gen = sub.add_parser("generate", help="synthesize a workload as SWF")
    gen.add_argument("--workload", choices=_WORKLOADS, default="KTH")
    gen.add_argument("--jobs", type=int, default=2000)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--load", type=float, default=None)
    gen.add_argument("--out", required=True, help="output SWF path")

    info = sub.add_parser("swf-info", help="summarize an SWF file")
    info.add_argument("path")

    prof = sub.add_parser("profile", help="cProfile the scheduling hot path")
    prof.add_argument("--requests", type=int, default=20_000)
    prof.add_argument("--servers", type=int, default=512)
    prof.add_argument("--rho", type=float, default=0.3, help="advance-reservation fraction")
    prof.add_argument("--load", type=float, default=0.9, help="offered load vs capacity")
    prof.add_argument("--seed", type=int, default=7)
    prof.add_argument("--tau", type=float, default=900.0)
    prof.add_argument("--q-slots", type=int, default=288)
    prof.add_argument(
        "--sort", default="cumulative", help="pstats sort key (cumulative, tottime, ...)"
    )
    prof.add_argument("--limit", type=int, default=25, help="rows of the pstats table")
    prof.add_argument("--dump", default=None, help="also write the binary profile here")

    cache = sub.add_parser("cache", help="inspect or clear the result store")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="store location (defaults to $REPRO_CACHE_DIR)",
    )

    chk = sub.add_parser("check", help="static lint + structural invariant audit")
    chk.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    chk.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    chk.add_argument("--out", default=None, help="also write the JSON report to this path")
    chk.add_argument(
        "--sarif-out",
        default=None,
        help="also write a SARIF 2.1.0 report to this path",
    )
    chk.add_argument("--no-lint", action="store_true", help="skip the static lint pass")
    chk.add_argument(
        "--concurrency",
        action="store_true",
        help="run the wire-protocol conformance pass (RA205/RA206) over "
        "the service send sites and handler tables",
    )
    chk.add_argument(
        "--audit",
        action="store_true",
        help="replay a stress workload auditing every calendar mutation",
    )
    chk.add_argument("--audit-requests", type=int, default=2000)
    chk.add_argument("--audit-servers", type=int, default=64)
    chk.add_argument("--audit-seed", type=int, default=7)
    chk.add_argument("--audit-tau", type=float, default=900.0)
    chk.add_argument("--audit-q-slots", type=int, default=96)
    chk.add_argument(
        "--audit-stride",
        type=int,
        default=1,
        help="audit every k-th mutation (1 = every mutation)",
    )
    chk.add_argument(
        "--inject",
        choices=(
            "size",
            "seckey",
            "uidmap",
            "drop-field",
            "unknown-op",
            "drop-handler",
            "drop-follower-handler",
        ),
        default=None,
        help="self-test: corrupt the audited calendar (size/seckey/uidmap, "
        "needs --audit) or the protocol model (drop-field/unknown-op/"
        "drop-handler/drop-follower-handler, needs --concurrency) and "
        "require the check to catch it",
    )

    srv = sub.add_parser("serve", help="run the online co-allocation server")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    srv.add_argument("--servers", type=int, default=64, help="system size N")
    srv.add_argument("--tau", type=float, default=900.0, help="slot length τ (s)")
    srv.add_argument("--q-slots", type=int, default=96, help="slots Q in the horizon")
    srv.add_argument("--delta-t", type=float, default=None, help="retry increment Δt")
    srv.add_argument("--r-max", type=int, default=None, help="max scheduling attempts")
    srv.add_argument(
        "--snapshot-path",
        default=None,
        help="snapshot file; restored at boot if present, written on shutdown",
    )
    srv.add_argument(
        "--max-queue", type=int, default=1024, help="admission queue depth bound"
    )
    srv.add_argument(
        "--max-delay",
        type=float,
        default=5.0,
        help="admission delay budget (s): shed once expected queue wait exceeds it",
    )
    srv.add_argument(
        "--max-batch", type=int, default=64, help="actor micro-batch size bound"
    )
    srv.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="log a JSON metrics line to stderr this often (0 = off)",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="partition the calendar across K shard subprocesses "
        "(1 = single in-process calendar; decisions are identical either way)",
    )
    srv.add_argument(
        "--log-dir",
        default=None,
        help="decision-log directory for follower replication "
        "(None disables the log and the log_tail op)",
    )
    srv.add_argument(
        "--log-segment-bytes",
        type=int,
        default=1 << 20,
        help="rotate decision-log segments at this size",
    )
    srv.add_argument(
        "--log-cursor-ttl",
        type=float,
        default=900.0,
        help="forget a follower cursor idle this many seconds, so a dead "
        "follower stops pinning decision-log compaction",
    )
    srv.add_argument(
        "--autoscale",
        choices=("step", "target", "hysteresis"),
        default=None,
        metavar="POLICY",
        help="enable telemetry-driven auto-scaling with this policy "
        "(step, target or hysteresis; off by default)",
    )
    srv.add_argument(
        "--autoscale-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds between autoscaler ticks",
    )
    srv.add_argument(
        "--autoscale-min",
        type=int,
        default=1,
        metavar="N",
        help="never drain below this many active servers",
    )
    srv.add_argument(
        "--autoscale-max",
        type=int,
        default=4096,
        metavar="N",
        help="never grow past this many active servers",
    )
    srv.add_argument(
        "--autoscale-step",
        type=int,
        default=1,
        metavar="N",
        help="servers added (and per-tick scale-in cap) per action",
    )
    srv.add_argument(
        "--autoscale-high-delay",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="queue-delay EWMA above which the pool scales out",
    )
    srv.add_argument(
        "--autoscale-low-delay",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="queue-delay EWMA below which the pool may scale in",
    )
    srv.add_argument(
        "--autoscale-high-shed",
        type=float,
        default=0.05,
        metavar="RATE",
        help="shed-rate EWMA above which the pool scales out",
    )
    srv.add_argument(
        "--autoscale-patience",
        type=int,
        default=3,
        metavar="TICKS",
        help="hysteresis policy: consecutive breaching ticks before acting",
    )
    srv.add_argument(
        "--autoscale-dry-run",
        action="store_true",
        help="log what the autoscaler would do without touching the pool",
    )

    lg = sub.add_parser("loadgen", help="replay a trace against a running server")
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, required=True)
    lg.add_argument(
        "--transport",
        choices=("tcp", "http"),
        default="tcp",
        help="tcp = NDJSON to the service; http = pipelined POST /v1/reserve "
        "through a repro gateway at --host:--port",
    )
    lg.add_argument(
        "--token", default=None, help="bearer token (http transport only)"
    )
    lg.add_argument("--swf", default=None, help="replay this SWF log")
    lg.add_argument("--workload", choices=_WORKLOADS, default="KTH")
    lg.add_argument("--jobs", type=int, default=2000)
    lg.add_argument("--seed", type=int, default=42)
    lg.add_argument("--rho", type=float, default=0.0, help="advance-reservation fraction")
    lg.add_argument(
        "--rate", type=float, default=0.0, help="open-loop sends/sec (0 = flat out)"
    )
    lg.add_argument(
        "--window", type=int, default=0, help="max unacknowledged in flight (0 = unbounded)"
    )
    lg.add_argument("--offset", type=int, default=0, help="skip this many requests")
    lg.add_argument("--limit", type=int, default=None, help="send at most this many")
    lg.add_argument("--ledger-in", default=None, help="preload this shadow ledger")
    lg.add_argument("--ledger-out", default=None, help="dump the final shadow ledger here")
    lg.add_argument("--out", default="BENCH_service.json", help="report JSON path")
    lg.add_argument(
        "--shutdown", action="store_true", help="send a shutdown op after the replay"
    )

    fz = sub.add_parser(
        "fuzz",
        help="differential-oracle fuzzing and deterministic fault injection",
    )
    fz.add_argument("--ops", type=int, default=2000, help="operations per stream")
    fz.add_argument(
        "--seed",
        default="0",
        help="comma-separated list of stream seeds (e.g. 0,1,2)",
    )
    fz.add_argument(
        "--profile",
        default="dense",
        help="comma-separated workload profiles, or 'all' "
        "(dense, sparse, ties — see repro.verify.genstream)",
    )
    fz.add_argument(
        "--chaos",
        action="store_true",
        help="drive a real `repro serve` subprocess through deterministic "
        "fault plans instead of the in-process differ",
    )
    fz.add_argument(
        "--plan",
        default="all",
        help="chaos plan: kill-restart, duplicate, reorder, kill-shard, "
        "front-door (replay through a repro gateway over HTTP), "
        "kill-promote (SIGKILL the primary, promote a log-tailing "
        "follower), or all (the first three, plus kill-shard when "
        "sharded; front-door and kill-promote are explicit-only)",
    )
    fz.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug any divergence to a 1-minimal repro trace",
    )
    fz.add_argument(
        "--inject",
        choices=("reverse-tiebreak", "latest-ending"),
        default=None,
        help="self-test: break the production Phase-2 selection and require "
        "the differ to catch it (exit 0 = bug caught)",
    )
    fz.add_argument(
        "--state-stride",
        type=int,
        default=1,
        help="compare full per-server idle state every k ops (1 = every op)",
    )
    fz.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="K",
        help="fuzz the K-sharded scheduler against the oracle (0 = unsharded); "
        "with --chaos, runs the server with --shards K and adds a kill-shard plan",
    )
    fz.add_argument(
        "--scale-events",
        action="store_true",
        help="interleave runtime pool mutations (add_servers/drain/remove/"
        "pool_status) into the generated streams",
    )
    fz.add_argument("--trace", default=None, help="replay this trace file instead of generating")
    fz.add_argument("--out", default=None, help="write the JSON report here")
    fz.add_argument(
        "--emit-test",
        default=None,
        help="write a ready-to-paste failing pytest here on (shrunk) divergence",
    )

    rsv = sub.add_parser("reserve", help="submit one reservation to a running server")
    rsv.add_argument("--host", default="127.0.0.1")
    rsv.add_argument("--port", type=int, required=True)
    rsv.add_argument("--rid", type=int, default=0)
    rsv.add_argument("--start", type=float, required=True, help="earliest start s_r")
    rsv.add_argument("--duration", type=float, required=True, help="temporal size l_r")
    rsv.add_argument("--nodes", type=int, required=True, help="spatial size n_r")
    rsv.add_argument("--deadline", type=float, default=None)

    gw = sub.add_parser("gateway", help="run the HTTP/JSON front door")
    gw.add_argument("--host", default="127.0.0.1")
    gw.add_argument("--port", type=int, default=0, help="HTTP port (0 = ephemeral)")
    gw.add_argument("--backend-host", default="127.0.0.1")
    gw.add_argument(
        "--backend-port", type=int, required=True, help="the TCP service to front"
    )
    gw.add_argument(
        "--token-file",
        default=None,
        help="token:tenant lines; omitted = open mode (every caller is "
        "tenant 'anonymous')",
    )
    gw.add_argument(
        "--rate", type=float, default=1000.0, help="token-bucket refill per tenant (req/s)"
    )
    gw.add_argument(
        "--burst", type=float, default=2000.0, help="token-bucket capacity per tenant"
    )

    fol = sub.add_parser("follow", help="run a warm-standby decision-log follower")
    fol.add_argument("--host", default="127.0.0.1")
    fol.add_argument("--port", type=int, default=0, help="control port (0 = ephemeral)")
    fol.add_argument("--primary-host", default="127.0.0.1")
    fol.add_argument(
        "--primary-port", type=int, required=True, help="the primary's TCP port"
    )
    fol.add_argument("--follower-id", default="follower-1")
    fol.add_argument(
        "--poll-interval", type=float, default=0.25, help="seconds between empty polls"
    )
    fol.add_argument(
        "--batch-limit", type=int, default=512, help="records per log_tail request"
    )
    fol.add_argument(
        "--bootstrap-snapshot",
        default=None,
        help="primary snapshot to bootstrap from (omitted = fresh, from the "
        "primary's status geometry; requires an uncompacted log)",
    )
    fol.add_argument(
        "--snapshot-path",
        default=None,
        help="snapshot file for the service started on promotion",
    )
    fol.add_argument(
        "--log-dir",
        default=None,
        help="decision-log directory for the service started on promotion",
    )
    fol.add_argument(
        "--promote-port",
        type=int,
        default=0,
        help="default TCP port for the promoted service (0 = ephemeral)",
    )

    pro = sub.add_parser("promote", help="promote a follower to serving primary")
    pro.add_argument("--host", default="127.0.0.1")
    pro.add_argument("--port", type=int, required=True, help="the follower's control port")
    pro.add_argument(
        "--promote-port",
        type=int,
        default=0,
        help="TCP port for the promoted service (0 = follower's default)",
    )

    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import SCALES, configure_default_store, run_all
    from .experiments.parallel import ARTIFACTS, enumerate_runs, warm_store

    artifact = args.artifact or ("all" if args.all_artifacts else None)
    if artifact is None:
        print("experiment: name an artifact or pass --all", file=sys.stderr)
        return int(ErrorCode.MALFORMED)
    config = SCALES[args.scale]
    store = configure_default_store(args.cache_dir) if args.cache_dir else None

    wanted = list(ARTIFACTS) if artifact == "all" else [artifact]
    if args.parallel > 0:
        # warm the store for every distinct run first; rendering below
        # then consumes cached results only
        report = warm_store(
            enumerate_runs(wanted, config),
            workers=args.parallel,
            store=store,
            progress=lambda line: print(line, file=sys.stderr),
        )
        for failure in report.failures:
            print(f"run failed: {failure.label}: {failure.error}", file=sys.stderr)
        if report.failures:
            return 1

    if artifact == "all":
        print(run_all(config))
    else:
        print(ARTIFACTS[artifact].run(config))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .experiments.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "info":
        print(json.dumps(store.info(), indent=2))
        return 0
    if store.cache_dir is None:
        print("cache: no cache dir configured (set --cache-dir or $REPRO_CACHE_DIR)")
        return 0
    removed = store.clear()
    print(f"cache: removed {removed} entries from {store.cache_dir}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .metrics.stats import summarize
    from .schedulers import (
        ConservativeBackfillScheduler,
        EasyBackfillScheduler,
        FCFSScheduler,
        OnlineScheduler,
    )
    from .sim.driver import run_simulation
    from .workloads.archive import WORKLOADS, generate_workload
    from .workloads.models import EstimateAccuracy
    from .workloads.reservations import with_advance_reservations

    accuracy = EstimateAccuracy() if args.inaccurate_estimates else None
    requests = generate_workload(
        args.workload,
        n_jobs=args.jobs,
        seed=args.seed,
        offered_load=args.load,
        accuracy=accuracy,
    )
    if args.rho > 0.0:
        requests = with_advance_reservations(requests, args.rho, seed=args.seed)
    n_servers = WORKLOADS[args.workload].n_servers
    if args.scheduler == "online":
        scheduler = OnlineScheduler(
            n_servers=n_servers, tau=900.0, q_slots=288, reclaim_early=args.reclaim
        )
    else:
        factory = {
            "easy": EasyBackfillScheduler,
            "conservative": ConservativeBackfillScheduler,
            "fcfs": FCFSScheduler,
        }[args.scheduler]
        scheduler = factory(n_servers)
    result = run_simulation(scheduler, requests)
    s = summarize(result.records)
    print(f"workload:     {args.workload} ({args.jobs} jobs, seed {args.seed}, rho {args.rho:g})")
    print(f"scheduler:    {result.scheduler}{' +reclaim' if args.reclaim else ''}")
    print(f"accepted:     {s.accepted}/{s.jobs} ({s.acceptance_rate:.1%})")
    print(f"waiting time: mean {s.mean_wait:.2f} h, median {s.median_wait:.2f} h, "
          f"max {s.max_wait:.1f} h")
    print(f"penalty P^l:  mean {s.mean_penalty:.2f}")
    print(f"attempts:     mean {s.mean_attempts:.2f}")
    print(f"utilization:  {result.utilization:.1%}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .workloads.archive import WORKLOADS, generate_workload
    from .workloads.swf import SWFJob, write_swf

    requests = generate_workload(
        args.workload, n_jobs=args.jobs, seed=args.seed, offered_load=args.load
    )
    jobs = [
        SWFJob(
            job_number=r.rid + 1,
            submit_time=r.qr,
            wait_time=-1.0,
            run_time=r.runtime,
            allocated_processors=r.nr,
            requested_processors=r.nr,
            requested_time=r.lr,
        )
        for r in requests
    ]
    metadata = {
        "Computer": f"repro synthetic {args.workload}",
        "MaxProcs": str(WORKLOADS[args.workload].n_servers),
        "MaxJobs": str(len(jobs)),
        "Seed": str(args.seed),
    }
    write_swf(jobs, args.out, metadata=metadata)
    print(f"wrote {len(jobs)} jobs to {args.out}")
    return 0


def _cmd_swf_info(args: argparse.Namespace) -> int:
    from .workloads.swf import read_swf, swf_to_requests

    jobs, meta = read_swf(args.path)
    requests = swf_to_requests(jobs)
    if meta:
        for key, value in meta.items():
            print(f"; {key}: {value}")
    print(f"jobs:        {len(jobs)} ({len(requests)} usable)")
    if requests:
        durations = np.array([r.lr for r in requests]) / 3600.0
        sizes = np.array([r.nr for r in requests])
        span = (requests[-1].qr - requests[0].qr) / 86400.0
        print(f"span:        {span:.1f} days")
        print(f"duration:    mean {durations.mean():.2f} h, median "
              f"{np.median(durations):.2f} h, max {durations.max():.1f} h")
        print(f"size:        mean {sizes.mean():.1f}, median {np.median(sizes):.0f}, "
              f"max {sizes.max()}")
        print(f"< 2 h jobs:  {(durations < 2.0).mean():.1%}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import importlib.util
    import os

    # cProfile only sees python frames: under a compiled (mypyc) core the
    # entire kernel would vanish from the hot list and the report would be
    # silently empty.  Detect the compiled extension *before* the core is
    # imported and force the pure-python fallback for this process — the
    # two are checksum-equivalent, so the pure profile names the same hot
    # path the compiled build runs.
    note = None
    kernel_spec = importlib.util.find_spec("repro.core._kernel")
    kernel_compiled = (
        kernel_spec is not None
        and kernel_spec.origin is not None
        and not kernel_spec.origin.endswith(".py")
    )
    if kernel_compiled and "repro.core.slot_tree" not in sys.modules:
        os.environ["REPRO_PURE_CORE"] = "1"
    from .core.slot_tree import backend_info
    from .schedulers.online import OnlineScheduler
    from .schedulers.profile import profile_call
    from .sim.replay import replay
    from .workloads.stress import stress_workload

    backend = backend_info()
    if kernel_compiled and not backend["compiled"]:
        note = (
            "compiled core detected: profiling the pure-python fallback "
            "(compiled frames are invisible to cProfile; outcomes are "
            "checksum-identical across backends)"
        )
    elif bool(backend["compiled"]):  # pragma: no cover - import-order guard
        note = (
            "WARNING: the compiled core was already imported before profiling "
            "could force the fallback — the hot list below will miss every "
            "compiled frame; re-run with REPRO_PURE_CORE=1"
        )

    requests = stress_workload(
        n_requests=args.requests,
        n_servers=args.servers,
        rho=args.rho,
        seed=args.seed,
        tau=args.tau,
        load=args.load,
    )
    scheduler = OnlineScheduler(n_servers=args.servers, tau=args.tau, q_slots=args.q_slots)
    report = profile_call(replay, scheduler, requests, record_latencies=False)
    result = report.result
    if note:
        print(note)
    print(
        f"replayed {args.requests} requests on {args.servers} servers "
        f"(rho {args.rho:g}, load {args.load:g}, {backend['backend']} core): "
        f"{result.requests_per_sec:.1f} req/s under cProfile"
    )
    print(report.stats_text(sort=args.sort, limit=args.limit))
    if args.dump:
        report.dump(args.dump)
        print(f"wrote binary profile to {args.dump}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis.protocol_check import PROTOCOL_INJECTIONS

    protocol_inject = args.inject if args.inject in PROTOCOL_INJECTIONS else None
    if protocol_inject is not None:
        # a protocol self-test only makes sense inside the protocol pass
        args.concurrency = True

    report: dict[str, object] = {}
    failed = False
    text_sections: list[str] = []
    sarif_findings: list = []

    if not args.no_lint:
        from .analysis.lint import lint_paths

        paths = args.paths
        if not paths:
            # default: the installed package itself, wherever it lives
            paths = [str(Path(__file__).resolve().parent)]
        lint_report = lint_paths(paths)
        report["lint"] = lint_report.to_json()
        text_sections.append(lint_report.to_text())
        sarif_findings.extend(lint_report.violations)
        failed = failed or not lint_report.ok

    if args.concurrency:
        from .analysis.protocol_check import run_protocol_check

        protocol_report = run_protocol_check(inject=protocol_inject)
        report["protocol"] = protocol_report.to_json()
        text_sections.append(protocol_report.to_text())
        sarif_findings.extend(protocol_report.violations)
        failed = failed or not protocol_report.ok

    if args.audit:
        audit_section, audit_text, audit_ok = _run_audit_replay(args)
        report["audit"] = audit_section
        text_sections.append(audit_text)
        failed = failed or not audit_ok

    report["ok"] = not failed
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if args.sarif_out or args.format == "sarif":
        from .analysis.sarif import render_sarif

        sarif_doc = render_sarif(sarif_findings)
        if args.sarif_out:
            Path(args.sarif_out).write_text(sarif_doc)
    if args.format == "json":
        print(json.dumps(report, indent=2))
    elif args.format == "sarif":
        print(sarif_doc, end="")
    else:
        print("\n\n".join(text_sections) if text_sections else "nothing to check")
    return 1 if failed else 0


def _run_audit_replay(args: argparse.Namespace) -> tuple[dict, str, bool]:
    """Replay a stress workload with per-mutation audits; returns
    ``(json_section, text, ok)``."""
    from .analysis.audit import CORRUPTIONS, AuditError, audit_calendar
    from .schedulers.online import OnlineScheduler
    from .sim.replay import replay
    from .workloads.stress import stress_workload

    requests = stress_workload(
        n_requests=args.audit_requests,
        n_servers=args.audit_servers,
        rho=0.3,
        seed=args.audit_seed,
        tau=args.audit_tau,
    )
    scheduler = OnlineScheduler(
        n_servers=args.audit_servers, tau=args.audit_tau, q_slots=args.audit_q_slots
    )
    section: dict[str, object] = {
        "requests": args.audit_requests,
        "servers": args.audit_servers,
        "stride": args.audit_stride,
    }
    try:
        result = replay(
            scheduler, requests, record_latencies=False, audit_stride=args.audit_stride
        )
    except AuditError as exc:
        section["findings"] = [f.to_dict() for f in exc.findings]
        text = "audit: FAILED during replay\n" + "\n".join(
            f"  {f!r}" for f in exc.findings[:20]
        )
        return section, text, False
    section["outcome_checksum"] = result.outcome_checksum
    section["accepted"] = result.accepted

    if args.inject in CORRUPTIONS:
        corrupt, expected_id = CORRUPTIONS[args.inject]
        assert scheduler.calendar is not None
        description = corrupt(scheduler.calendar)
        findings = audit_calendar(scheduler.calendar)
        section["injected"] = {"kind": args.inject, "description": description}
        section["findings"] = [f.to_dict() for f in findings]
        caught = any(f.check_id == expected_id for f in findings)
        section["caught"] = caught
        lines = [f"audit: injected corruption ({args.inject}): {description}"]
        lines += [f"  {f!r}" for f in findings[:20]]
        lines.append(
            f"audit: corruption {'caught' if caught else 'MISSED'} "
            f"(expected {expected_id})"
        )
        # an injected corruption must always fail the check; missing it
        # entirely is itself a (worse) failure
        return section, "\n".join(lines), False

    section["findings"] = []
    text = (
        f"audit: clean — {args.audit_requests} requests on {args.audit_servers} "
        f"servers, every {args.audit_stride} mutation(s) audited, "
        f"checksum {result.outcome_checksum}"
    )
    return section, text, True


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import ServiceConfig, serve_forever

    autoscale = None
    if args.autoscale is not None:
        from .service.autoscale import AutoScaleConfig

        autoscale = AutoScaleConfig(
            policy=args.autoscale,
            interval=args.autoscale_interval,
            min_servers=args.autoscale_min,
            max_servers=args.autoscale_max,
            step=args.autoscale_step,
            high_delay=args.autoscale_high_delay,
            low_delay=args.autoscale_low_delay,
            high_shed_rate=args.autoscale_high_shed,
            patience=args.autoscale_patience,
            dry_run=args.autoscale_dry_run,
        )
        try:
            autoscale.validate()
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return int(ErrorCode.MALFORMED)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        n_servers=args.servers,
        tau=args.tau,
        q_slots=args.q_slots,
        delta_t=args.delta_t,
        r_max=args.r_max,
        snapshot_path=args.snapshot_path,
        max_queue=args.max_queue,
        max_delay=args.max_delay,
        max_batch=args.max_batch,
        metrics_interval=args.metrics_interval,
        shards=args.shards,
        log_dir=args.log_dir,
        log_segment_bytes=args.log_segment_bytes,
        log_cursor_ttl=args.log_cursor_ttl,
        autoscale=autoscale,
    )
    try:
        crashed = asyncio.run(serve_forever(config))
    except KeyboardInterrupt:
        # the serve_forever cancellation path already snapshots on the
        # graceful stop, so ^C is a clean exit
        return int(ErrorCode.OK)
    return int(ErrorCode.INTERNAL) if crashed else int(ErrorCode.OK)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .service.loadgen import LoadgenConfig, run_loadgen

    if args.transport == "http" and args.shutdown:
        print(
            "loadgen: --shutdown needs --transport tcp "
            "(the gateway deliberately exposes no shutdown endpoint)",
            file=sys.stderr,
        )
        return int(ErrorCode.MALFORMED)
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        swf=args.swf,
        workload=args.workload,
        jobs=args.jobs,
        seed=args.seed,
        rho=args.rho,
        rate=args.rate,
        window=args.window,
        offset=args.offset,
        limit=args.limit,
        ledger_in=args.ledger_in,
        ledger_out=args.ledger_out,
        out=args.out,
        shutdown=args.shutdown,
        transport=args.transport,
        token=args.token,
    )
    report = asyncio.run(run_loadgen(config))
    lat = report["latency_ms"]
    print(
        f"loadgen: {report['completed']}/{report['requests']} answered "
        f"({report['accepted']} accepted, {report['rejected']} rejected, "
        f"{report['busy']} busy) in {report['wall_s']}s "
        f"({report['throughput_rps']} req/s); "
        f"latency p50 {lat['p50_ms']}ms p95 {lat['p95_ms']}ms p99 {lat['p99_ms']}ms"
    )
    print(f"loadgen: accepted checksum {report['accepted_checksum']}; report -> {args.out}")
    if report["violations_total"]:
        print(
            f"loadgen: {report['violations_total']} SHADOW-LEDGER VIOLATION(S)",
            file=sys.stderr,
        )
        for violation in report["violations"]:
            print(f"  {violation}", file=sys.stderr)
        return int(ErrorCode.INTERNAL)
    return int(ErrorCode.OK)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .verify.chaos import default_plans, run_chaos
    from .verify.differ import (
        emit_pytest,
        load_trace,
        run_stream,
        shrink_stream,
    )
    from .verify.genstream import PROFILES, generate_stream

    try:
        seeds = [int(s) for s in str(args.seed).split(",") if s.strip() != ""]
    except ValueError:
        print(f"fuzz: bad --seed list {args.seed!r}", file=sys.stderr)
        return int(ErrorCode.MALFORMED)
    profile_names = (
        list(PROFILES) if args.profile == "all" else args.profile.split(",")
    )
    unknown = [p for p in profile_names if p not in PROFILES]
    if unknown:
        print(
            f"fuzz: unknown profile(s) {', '.join(unknown)} "
            f"(have: {', '.join(PROFILES)})",
            file=sys.stderr,
        )
        return int(ErrorCode.MALFORMED)

    if args.trace:
        streams = [load_trace(args.trace)]
    else:
        streams = [
            generate_stream(profile, seed, args.ops, scale_events=args.scale_events)
            for profile in profile_names
            for seed in seeds
        ]

    report: dict[str, object] = {
        "mode": "chaos" if args.chaos else "differential",
        "ops": args.ops,
        "seeds": seeds,
        "profiles": profile_names,
        "inject": args.inject,
        "shards": args.shards,
        "scale_events": args.scale_events,
        "runs": [],
    }
    runs: list[dict[str, object]] = report["runs"]  # type: ignore[assignment]
    divergences = 0
    failures = 0

    if args.chaos:
        for stream in streams:
            for plan in default_plans(args.plan, shards=args.shards):
                chaos_report = run_chaos(stream, plan, shards=args.shards)
                runs.append(chaos_report)
                verdict = "ok" if chaos_report["passed"] else "FAILED"
                if not chaos_report["passed"]:
                    failures += 1
                print(
                    f"fuzz --chaos [{stream.profile}/seed={stream.seed}] "
                    f"plan={plan.kind}: {chaos_report['ops']} ops, "
                    f"{chaos_report['accepted']} accepted, "
                    f"{chaos_report['restarts']} restart(s), "
                    f"{len(chaos_report['ledger_violations'])} ledger violation(s), "
                    f"checksum {chaos_report['checksums']['service_shutdown']} — {verdict}"
                )
    else:
        for stream in streams:
            result = run_stream(
                stream,
                inject=args.inject,
                state_stride=max(1, args.state_stride),
                shards=args.shards,
            )
            entry: dict[str, object] = {
                "profile": stream.profile,
                "seed": stream.seed,
                **result.to_dict(),
            }
            label = f"[{stream.profile}/seed={stream.seed}" + (
                f"/shards={args.shards}]" if args.shards else "]"
            )
            if result.divergence is None:
                print(
                    f"fuzz {label}: {result.ops_run} ops, "
                    f"{result.accepted} accepted, {result.rejected} rejected, "
                    f"{result.cancelled} cancelled, {result.probes} probes, "
                    f"{result.restores} restores — no divergence"
                )
            else:
                divergences += 1
                print(f"fuzz {label}: DIVERGENCE at op {result.divergence.index}")
                print(result.divergence.describe())
                if args.shrink:
                    shrunk = shrink_stream(stream, inject=args.inject, shards=args.shards)
                    assert shrunk is not None
                    entry["shrunk"] = shrunk.to_dict()
                    print(
                        f"fuzz {label}: shrunk to {len(shrunk.stream.ops)} op(s) "
                        f"in {shrunk.evaluations} evaluation(s)"
                    )
                    test_source = emit_pytest(shrunk)
                    entry["pytest"] = test_source
                    if args.emit_test:
                        with open(args.emit_test, "w", encoding="utf-8") as fh:
                            fh.write(test_source)
                        print(f"fuzz {label}: failing test -> {args.emit_test}")
            runs.append(entry)

    report["divergences"] = divergences
    report["failures"] = failures
    if args.inject and not args.chaos:
        # self-test semantics: the injected bug must be caught in every run
        caught = divergences == len(streams)
        report["injection_caught"] = caught
        print(
            f"fuzz --inject {args.inject}: "
            f"{'caught in every run' if caught else 'MISSED in at least one run'}"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fuzz: report -> {args.out}")

    if args.inject and not args.chaos:
        return int(ErrorCode.OK) if report["injection_caught"] else int(ErrorCode.INTERNAL)
    if divergences or failures:
        return int(ErrorCode.INTERNAL)
    return int(ErrorCode.OK)


def _cmd_reserve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .service.loadgen import _rpc

    if args.duration <= 0 or args.nodes <= 0:
        print(
            f"reserve: malformed request (duration {args.duration}, nodes {args.nodes})",
            file=sys.stderr,
        )
        return int(ErrorCode.MALFORMED)

    async def _one_shot() -> dict:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        message = {
            "op": "reserve",
            "rid": args.rid,
            "sr": args.start,
            "lr": args.duration,
            "nr": args.nodes,
        }
        if args.deadline is not None:
            message["deadline"] = args.deadline
        response = await _rpc(reader, writer, message)
        writer.close()
        return response

    response = asyncio.run(_one_shot())
    print(json.dumps(response, indent=2, sort_keys=True))
    if response.get("ok"):
        return int(ErrorCode.OK)
    return int((response.get("error") or {}).get("exit_code", ErrorCode.INTERNAL))


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from .gateway import GatewayConfig, serve_gateway

    config = GatewayConfig(
        host=args.host,
        port=args.port,
        backend_host=args.backend_host,
        backend_port=args.backend_port,
        token_file=args.token_file,
        rate=args.rate,
        burst=args.burst,
    )
    try:
        asyncio.run(serve_gateway(config))
    except KeyboardInterrupt:
        pass
    return int(ErrorCode.OK)


def _cmd_follow(args: argparse.Namespace) -> int:
    import asyncio

    from .gateway import FollowerConfig, serve_follower

    config = FollowerConfig(
        host=args.host,
        port=args.port,
        primary_host=args.primary_host,
        primary_port=args.primary_port,
        follower_id=args.follower_id,
        poll_interval=args.poll_interval,
        batch_limit=args.batch_limit,
        bootstrap_snapshot=args.bootstrap_snapshot,
        snapshot_path=args.snapshot_path,
        log_dir=args.log_dir,
        promote_port=args.promote_port,
    )
    try:
        crashed = asyncio.run(serve_follower(config))
    except KeyboardInterrupt:
        return int(ErrorCode.OK)
    return int(ErrorCode.INTERNAL) if crashed else int(ErrorCode.OK)


def _cmd_promote(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .service.loadgen import _rpc
    from .service.protocol import MAX_LINE_BYTES

    async def _one_shot() -> dict:
        reader, writer = await asyncio.open_connection(
            args.host, args.port, limit=MAX_LINE_BYTES
        )
        message: dict = {"op": "promote"}
        if args.promote_port:
            message["port"] = args.promote_port
        response = await _rpc(reader, writer, message)
        writer.close()
        return response

    response = asyncio.run(_one_shot())
    print(json.dumps(response, indent=2, sort_keys=True))
    if response.get("ok"):
        return int(ErrorCode.OK)
    return int((response.get("error") or {}).get("exit_code", ErrorCode.INTERNAL))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "experiment": _cmd_experiment,
        "simulate": _cmd_simulate,
        "generate": _cmd_generate,
        "swf-info": _cmd_swf_info,
        "profile": _cmd_profile,
        "check": _cmd_check,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "fuzz": _cmd_fuzz,
        "reserve": _cmd_reserve,
        "gateway": _cmd_gateway,
        "follow": _cmd_follow,
        "promote": _cmd_promote,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
