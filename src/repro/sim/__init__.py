"""Discrete-event simulation substrate.

* :class:`~repro.sim.engine.Engine` — event-heap simulator;
* :class:`~repro.sim.cluster.Cluster` — fungible-processor pool for the
  batch baselines;
* :func:`~repro.sim.driver.run_simulation` — replay a workload through a
  scheduler and collect per-job records.
"""

from .cluster import Cluster
from .driver import SimResult, run_simulation
from .job import Job, JobState
from .engine import Engine, EventHandle
from .timeline import Segment, gantt, server_timeline

__all__ = [
    "Cluster",
    "Engine",
    "EventHandle",
    "Job",
    "JobState",
    "Segment",
    "SimResult",
    "gantt",
    "run_simulation",
    "server_timeline",
]
