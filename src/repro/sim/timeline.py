"""Schedule inspection: per-server timelines and text Gantt charts.

Operators debugging a packing decision want to *see* the schedule.  This
module converts a calendar (or a set of reservations) into:

* a structured per-server timeline (list of busy/idle segments) suitable
  for JSON export or programmatic checks;
* a text Gantt chart, one row per server, time bucketed into columns.

Both views are derived purely from public calendar state, so they are
also used by tests as an independent cross-check of the internal
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.calendar import AvailabilityCalendar

__all__ = ["Segment", "server_timeline", "gantt"]


@dataclass(frozen=True, slots=True)
class Segment:
    """One homogeneous stretch of a server's schedule."""

    server: int
    start: float
    end: float  # math.inf for the trailing idle stretch
    busy: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


def server_timeline(
    calendar: AvailabilityCalendar, server: int, until: float | None = None
) -> list[Segment]:
    """The server's schedule from the horizon start as busy/idle segments.

    Busy segments are inferred as the gaps between idle periods — the
    calendar's idle list is authoritative, so this works for any mix of
    running jobs and advance reservations.  ``until`` clips the timeline
    (default: the calendar horizon end).
    """
    clip = until if until is not None else calendar.horizon_end
    cursor = calendar.horizon_start
    segments: list[Segment] = []
    for idle in calendar.idle_periods(server):
        lo, hi = max(idle.st, cursor), idle.et
        if lo > cursor:
            segments.append(Segment(server=server, start=cursor, end=lo, busy=True))
        if hi > lo:
            segments.append(Segment(server=server, start=lo, end=min(hi, clip), busy=False))
        cursor = hi
        if cursor >= clip:
            break
    if cursor < clip:
        segments.append(Segment(server=server, start=cursor, end=clip, busy=True))
    # drop empty artifacts from clipping
    return [s for s in segments if s.duration > 0]


def gantt(
    calendar: AvailabilityCalendar,
    start: float | None = None,
    end: float | None = None,
    width: int = 72,
    busy_char: str = "#",
    idle_char: str = "·",
) -> str:
    """A text Gantt chart of every server over ``[start, end)``.

    Each column covers ``(end - start) / width`` time units; a column is
    drawn busy when the server is busy for at least half of it.
    """
    lo = start if start is not None else calendar.horizon_start
    hi = end if end is not None else min(calendar.horizon_end, lo + 96 * calendar.tau)
    if not lo < hi:
        raise ValueError(f"gantt window [{lo}, {hi}) is empty")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    step = (hi - lo) / width
    label_width = len(str(calendar.n_servers - 1))
    lines = [f"t = [{lo:g}, {hi:g})  ({step:g} per column)"]
    for server in range(calendar.n_servers):
        segments = [s for s in server_timeline(calendar, server, until=hi) if s.busy]
        row = []
        for col in range(width):
            c_lo = lo + col * step
            c_hi = c_lo + step
            busy_time = sum(
                min(s.end, c_hi) - max(s.start, c_lo)
                for s in segments
                if s.start < c_hi and s.end > c_lo
            )
            row.append(busy_char if busy_time * 2 >= step else idle_char)
        lines.append(f"{server:>{label_width}} {''.join(row)}")
    return "\n".join(lines)
