"""Cluster state for the batch-scheduler simulations.

Batch schedulers (FCFS and its backfilling variants) treat the machine's
processors as fungible: a job needs ``n`` of them, identity irrelevant.
:class:`Cluster` therefore tracks a free-processor *count* plus the
busy-time integral needed for utilization reporting.  The online
co-allocator does not use this class — it assigns concrete servers through
the availability calendar.
"""

from __future__ import annotations

__all__ = ["Cluster"]


class Cluster:
    """``n_servers`` fungible processors with utilization accounting."""

    def __init__(self, n_servers: int, start_time: float = 0.0) -> None:
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        self.n_servers = n_servers
        self.free = n_servers
        self._busy_area = 0.0
        self._last_change = float(start_time)

    @property
    def busy(self) -> int:
        return self.n_servers - self.free

    def _account(self, now: float) -> None:
        if now < self._last_change:
            raise ValueError(f"time went backwards ({now} < {self._last_change})")
        self._busy_area += self.busy * (now - self._last_change)
        self._last_change = now

    def acquire(self, n: int, now: float) -> None:
        """Take ``n`` processors; raises if fewer are free."""
        if n <= 0:
            raise ValueError(f"must acquire a positive count, got {n}")
        if n > self.free:
            raise RuntimeError(f"requested {n} processors but only {self.free} free")
        self._account(now)
        self.free -= n

    def release(self, n: int, now: float) -> None:
        """Return ``n`` processors to the pool."""
        if n <= 0:
            raise ValueError(f"must release a positive count, got {n}")
        if self.free + n > self.n_servers:
            raise RuntimeError(
                f"releasing {n} would exceed capacity ({self.free} free of {self.n_servers})"
            )
        self._account(now)
        self.free += n

    def busy_area(self, now: float) -> float:
        """Integral of busy processors over time, up to ``now``."""
        return self._busy_area + self.busy * (now - self._last_change)

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Average fraction of processors busy over ``[since, now]``.

        ``since`` must predate any acquire/release for the figure to be
        exact; the common case is the full simulation span.
        """
        span = now - since
        if span <= 0:
            return 0.0
        return self.busy_area(now) / (span * self.n_servers)
