"""Instrumented trace replay for benchmarking the admission hot path.

:func:`replay` pushes a request stream through a scheduler exactly as
:func:`repro.sim.driver.run_simulation` would — submissions in ``q_r``
order, the clock advanced to each arrival — but times every ``submit``
call individually, which the event-heap driver cannot do without
polluting the measurement with heap bookkeeping.  It exists for the
benchmark harness (``benchmarks/bench_hotpath.py``) and the ``repro
profile`` CLI; experiments keep using ``run_simulation``.

Only schedulers that decide at submission time and schedule no internal
events can be replayed this way (the online co-allocator with reclamation
off).  Batch baselines need the event heap and are rejected.

The :class:`ReplayResult` carries an ``outcome_checksum`` — a digest over
every job's ``(rid, start, servers)`` outcome — so performance work on
the calendar can assert that replays stay bit-identical across changes.

Setting ``REPRO_AUDIT`` in the environment attaches a
:class:`~repro.analysis.audit.MutationAuditor` to the scheduler's
calendar for the whole replay: every ``stride``-th calendar mutation is
followed by a full structural + conservation audit, and a final full
audit runs after the last submission.  ``REPRO_AUDIT=all`` audits every
mutation; ``REPRO_AUDIT=<k>`` audits every ``k``-th; ``REPRO_AUDIT=1``
(or ``on``/``true``) uses the sampled default stride of 1000, cheap
enough for the 100k-request benchmark workload.  Audits never mutate
anything, so the outcome checksum is unchanged by auditing.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from time import perf_counter, perf_counter_ns

from ..core.types import Request
from ..sim.engine import Engine
from ..sim.job import Job, JobState

__all__ = ["ReplayResult", "replay"]

#: sampled audit stride used for ``REPRO_AUDIT=1``/``on``/``true``
_DEFAULT_AUDIT_STRIDE = 1000


def _audit_stride_from_env() -> int | None:
    """Decode ``REPRO_AUDIT``: ``None`` (off), or the mutation stride."""
    raw = os.environ.get("REPRO_AUDIT", "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return None
    if raw in ("all", "every", "full"):
        return 1
    if raw in ("1", "on", "true", "yes"):
        return _DEFAULT_AUDIT_STRIDE
    try:
        return max(1, int(raw))
    except ValueError:
        return _DEFAULT_AUDIT_STRIDE


@dataclass(slots=True)
class ReplayResult:
    """Outcome and timing of one instrumented replay."""

    n_requests: int
    accepted: int
    elapsed_sec: float
    #: per-submit wall-clock latencies, microseconds, submission order
    latencies_us: list[float]
    #: digest over every job outcome; equal digests == identical schedules
    outcome_checksum: str
    mean_attempts: float
    jobs: list[Job]

    @property
    def requests_per_sec(self) -> float:
        if self.elapsed_sec <= 0.0:
            return 0.0
        return self.n_requests / self.elapsed_sec

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.n_requests if self.n_requests else 1.0

    def latency_percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of per-request latency, in µs."""
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        idx = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]


def _checksum(jobs: list[Job]) -> str:
    digest = hashlib.sha256()
    for job in jobs:
        digest.update(
            f"{job.rid}:{job.state}:{job.start_time}:{job.servers}\n".encode()
        )
    return digest.hexdigest()[:16]


def replay(
    scheduler,
    requests: list[Request],
    record_latencies: bool = True,
    audit_stride: int | None = None,
) -> ReplayResult:
    """Replay ``requests`` through ``scheduler``, timing each submission.

    The scheduler must resolve every job inside ``submit`` (no pending
    internal events afterwards); the online scheduler satisfies this with
    ``reclaim_early`` off.

    ``audit_stride`` attaches a mutation auditor to the scheduler's
    calendar (see the module docstring); when ``None``, the
    ``REPRO_AUDIT`` environment variable decides.  Auditing raises
    :class:`~repro.analysis.audit.AuditError` on the first violated
    invariant and leaves outcomes bit-identical otherwise.
    """
    if getattr(scheduler, "reclaim_early", False):
        raise ValueError("replay() cannot honour reclamation events; use run_simulation")
    ordered = sorted(requests, key=lambda r: (r.qr, r.rid))
    if not ordered:
        return ReplayResult(0, 0, 0.0, [], _checksum([]), 0.0, [])
    engine = Engine(start_time=ordered[0].qr)
    scheduler.bind(engine)
    if audit_stride is None:
        audit_stride = _audit_stride_from_env()
    auditor = None
    if audit_stride is not None:
        calendar = getattr(scheduler, "calendar", None)
        if calendar is not None:
            from ..analysis.audit import MutationAuditor

            auditor = MutationAuditor(calendar, stride=audit_stride)
    jobs = [Job(req) for req in ordered]
    latencies: list[float] = []
    submit = scheduler.submit
    t_begin = perf_counter()
    if record_latencies:
        for job in jobs:
            engine.now = job.request.qr
            t0 = perf_counter_ns()
            submit(job)
            latencies.append((perf_counter_ns() - t0) / 1e3)
    else:
        for job in jobs:
            engine.now = job.request.qr
            submit(job)
    elapsed = perf_counter() - t_begin
    assert engine.pending() == 0, "replayed scheduler left internal events pending"
    if auditor is not None:
        auditor.audit_now()  # final full audit of the end state
        auditor.detach()

    done = [job for job in jobs if job.state == JobState.DONE]
    attempts = [job.attempts for job in done]
    return ReplayResult(
        n_requests=len(jobs),
        accepted=len(done),
        elapsed_sec=elapsed,
        latencies_us=latencies,
        outcome_checksum=_checksum(jobs),
        mean_attempts=sum(attempts) / len(attempts) if attempts else 0.0,
        jobs=jobs,
    )
