"""Simulation driver: replay a workload through a scheduler.

``run_simulation`` is the single entry point every experiment uses: it
wires a scheduler to an event engine, submits each request at its
submission time ``q_r``, drains the event heap, and returns the per-job
:class:`~repro.metrics.records.JobRecord` list plus summary statistics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.types import Request
from ..metrics.records import JobRecord
from .engine import Engine
from .job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from ..schedulers.base import SchedulerBase

__all__ = ["RESULT_FORMAT", "SimResult", "run_simulation"]

#: (de)serialization layout version for :meth:`SimResult.to_payload`.
#: Bump whenever the payload shape or the record row layout changes; the
#: result store treats entries with any other version as misses.
RESULT_FORMAT = 1


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulation run."""

    scheduler: str
    records: list[JobRecord]
    utilization: float
    makespan: float
    rejected: int = 0
    unfinished: int = 0
    total_ops: int = field(default=0)

    @property
    def accepted(self) -> list[JobRecord]:
        """Records of jobs that received a start time."""
        return [r for r in self.records if not r.rejected]

    @property
    def acceptance_rate(self) -> float:
        if not self.records:
            return 1.0
        return 1.0 - self.rejected / len(self.records)

    def to_payload(self) -> dict[str, Any]:
        """Versioned, JSON-able form (the result store's disk format).

        Floats survive JSON exactly (``repr`` round-trips IEEE doubles),
        so ``from_payload(to_payload(r))`` reproduces ``r`` bit for bit.
        """
        return {
            "format": RESULT_FORMAT,
            "scheduler": self.scheduler,
            "utilization": self.utilization,
            "makespan": self.makespan,
            "rejected": self.rejected,
            "unfinished": self.unfinished,
            "total_ops": self.total_ops,
            "records": [r.to_row() for r in self.records],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`to_payload`; raises ``ValueError`` on any
        other format version (callers treat that as a cache miss)."""
        version = payload.get("format")
        if version != RESULT_FORMAT:
            raise ValueError(f"unsupported SimResult format {version!r}")
        scheduler = payload["scheduler"]
        return cls(
            scheduler=scheduler,
            records=[JobRecord.from_row(row, scheduler) for row in payload["records"]],
            utilization=float(payload["utilization"]),
            makespan=float(payload["makespan"]),
            rejected=int(payload["rejected"]),
            unfinished=int(payload["unfinished"]),
            total_ops=int(payload["total_ops"]),
        )

    def record_checksum(self) -> str:
        """Digest over every per-job outcome plus the summary fields.

        Equal checksums mean identical results: the parallel harness and
        the benchmark use this to prove worker-process and disk-cache
        paths reproduce the in-process simulation exactly.
        """
        digest = hashlib.sha256()
        digest.update(
            f"{self.scheduler}:{self.utilization!r}:{self.makespan!r}:"
            f"{self.rejected}:{self.unfinished}:{self.total_ops}\n".encode()
        )
        for r in self.records:
            digest.update(
                f"{r.rid}:{r.qr!r}:{r.sr!r}:{r.lr!r}:{r.nr}:"
                f"{r.start!r}:{r.attempts}:{r.ops}\n".encode()
            )
        return digest.hexdigest()[:16]


def run_simulation(scheduler: "SchedulerBase", requests: list[Request]) -> SimResult:
    """Replay ``requests`` (any order; sorted by ``q_r`` internally).

    The engine runs until every queue drains, so batch schedulers finish
    all accepted work; the makespan is the time of the last event.
    """
    ordered = sorted(requests, key=lambda r: (r.qr, r.rid))
    if not ordered:
        return SimResult(scheduler=scheduler.name, records=[], utilization=0.0, makespan=0.0)
    t0 = ordered[0].qr
    engine = Engine(start_time=t0)
    scheduler.bind(engine)
    jobs = [Job(req) for req in ordered]
    for job in jobs:
        engine.at(job.request.qr, lambda job=job: scheduler.submit(job))
    engine.run()
    scheduler.finalize()
    # batch runs drain at the last completion event; online runs commit the
    # future at submission, so the span must cover the furthest commitment
    makespan = max(
        [engine.now] + [job.end_time for job in jobs if job.end_time is not None]
    )

    records: list[JobRecord] = []
    rejected = unfinished = total_ops = 0
    for job in jobs:
        if job.state == JobState.REJECTED:
            rejected += 1
        elif job.start_time is None:
            unfinished += 1  # should not happen: the heap drained
        total_ops += job.ops
        records.append(
            JobRecord(
                rid=job.rid,
                qr=job.request.qr,
                sr=job.request.sr,
                lr=job.request.lr,
                nr=job.request.nr,
                start=job.start_time,
                attempts=job.attempts,
                ops=job.ops,
                scheduler=scheduler.name,
            )
        )
    return SimResult(
        scheduler=scheduler.name,
        records=records,
        utilization=scheduler.utilization(makespan, since=t0),
        makespan=makespan,
        rejected=rejected,
        unfinished=unfinished,
        total_ops=total_ops,
    )
