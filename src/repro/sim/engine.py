"""A small discrete-event simulation engine.

The paper evaluates its algorithm "by means of simulation"; this module is
the substrate those simulations run on.  It is a classic event-heap
design:

* :class:`Engine` owns a priority queue of timestamped events and a clock;
* callbacks scheduled for the same instant fire in scheduling order
  (a monotonically increasing sequence number breaks ties), which makes
  runs fully deterministic;
* events can be cancelled via the handle returned by :meth:`Engine.at` /
  :meth:`Engine.after`.

The engine deliberately has no notion of processes or resources — the
cluster and scheduler models build those on top — which keeps the hot
loop small enough to replay hundreds of thousands of trace jobs quickly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("time", "seq", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, engine: "Engine | None" = None) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled()


#: never compact heaps smaller than this — the rebuild isn't worth it
_COMPACT_MIN_HEAP = 64


class Engine:
    """Event-heap simulator with a deterministic tie-break order.

    Cancelled events are discarded lazily on pop, but the engine also
    *compacts* the heap whenever cancelled entries outnumber live ones
    (cancel-heavy workloads — backfilling re-plans, early-completion
    reclamation — would otherwise grow the heap without bound).  A live
    counter keeps :meth:`pending` O(1).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._running = False
        self._cancelled = 0  # cancelled entries still sitting in _heap

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire when the clock reaches ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < now {self.now})")
        handle = EventHandle(time, next(self._seq), self)
        heapq.heappush(self._heap, (time, handle.seq, handle, callback))
        return handle

    def _note_cancelled(self) -> None:
        """Account one newly-cancelled queued event; compact if it tips
        the heap past half-dead."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap) and len(self._heap) >= _COMPACT_MIN_HEAP:
            self._heap = [entry for entry in self._heap if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self.now + delay, callback)

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when nothing is pending."""
        while self._heap:
            time, _seq, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            # the entry left the heap: a late cancel() must not be counted
            handle._engine = None
            self.now = time
            callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Fire events until the heap drains or the clock passes ``until``.

        With ``until`` given, the clock is left exactly at ``until`` (the
        usual "run for this long" contract); events scheduled later stay
        pending.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return len(self._heap) - self._cancelled
