"""Mutable per-job simulation records.

A :class:`Job` wraps an immutable :class:`~repro.core.types.Request` and
accumulates the outcome fields a scheduler fills in.  It lives in the sim
package (not with the schedulers) because it is the contract between the
driver and *any* scheduler implementation.
"""

from __future__ import annotations

from ..core.types import Request

__all__ = ["Job", "JobState"]


class JobState:
    """Lifecycle states of a simulated job."""

    PENDING = "pending"  # submitted, not yet eligible/queued
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    REJECTED = "rejected"


class Job:
    """Mutable simulation record wrapping an immutable request."""

    __slots__ = (
        "request",
        "state",
        "start_time",
        "end_time",
        "estimated_end",
        "attempts",
        "servers",
        "ops",
    )

    def __init__(self, request: Request) -> None:
        self.request = request
        self.state = JobState.PENDING
        self.start_time: float | None = None
        self.end_time: float | None = None  # actual completion
        self.estimated_end: float | None = None  # start + estimate (l_r)
        self.attempts = 0
        self.servers: tuple[int, ...] = ()
        self.ops = 0  # elementary scheduler operations spent on this job

    @property
    def rid(self) -> int:
        return self.request.rid

    @property
    def waiting_time(self) -> float | None:
        """``W_r = start - s_r`` — the paper's QoS metric; None until started."""
        if self.start_time is None:
            return None
        return self.start_time - self.request.sr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job(rid={self.rid}, state={self.state}, start={self.start_time})"
