"""Performance metrics of Section 5: waiting time, penalties, distributions."""

from .extended import (
    bounded_slowdown,
    jain_fairness,
    mean_bounded_slowdown,
    spatial_penalty,
    utilization_timeline,
)
from .records import JobRecord
from .report import format_series, format_table, sparkline
from .stats import (
    HOUR,
    Summary,
    attempts_by_spatial_bin,
    avg_waiting_by_spatial,
    duration_histogram,
    summarize,
    temporal_penalty_by_duration,
    waiting_time_histogram,
)

__all__ = [
    "HOUR",
    "JobRecord",
    "Summary",
    "attempts_by_spatial_bin",
    "avg_waiting_by_spatial",
    "bounded_slowdown",
    "duration_histogram",
    "format_series",
    "format_table",
    "jain_fairness",
    "mean_bounded_slowdown",
    "sparkline",
    "spatial_penalty",
    "summarize",
    "temporal_penalty_by_duration",
    "utilization_timeline",
    "waiting_time_histogram",
]
