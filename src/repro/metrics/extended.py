"""Extended metrics beyond the paper's three.

The paper reports waiting time, temporal penalty and spatial penalty.
This module adds the standard companions from the parallel-scheduling
literature, used by the ablation benchmarks and available to users:

* **bounded slowdown** — ``max(1, (W + l) / max(l, bound))``; the classic
  metric that keeps sub-minute jobs from dominating averages;
* **spatial penalty** ``P^n`` — the paper's name for mean waiting time as
  a function of spatial size, exposed here as a single summary scalar
  (wait per requested processor) alongside the binned curve in
  :mod:`repro.metrics.stats`;
* **Jain fairness index** over per-job waiting times — 1.0 means all jobs
  wait equally, 1/n means one job absorbs all waiting;
* **utilization timeline** — committed processors as a step function,
  for inspecting packing quality over time.
"""

from __future__ import annotations

import numpy as np

from .records import JobRecord

__all__ = [
    "bounded_slowdown",
    "mean_bounded_slowdown",
    "spatial_penalty",
    "jain_fairness",
    "utilization_timeline",
]

#: the conventional 10-second interactivity bound of the literature;
#: records are in seconds
DEFAULT_BOUND = 10.0


def bounded_slowdown(record: JobRecord, bound: float = DEFAULT_BOUND) -> float:
    """Bounded slowdown of one job; raises on rejected jobs."""
    wait = record.waiting_time
    return max(1.0, (wait + record.lr) / max(record.lr, bound))


def mean_bounded_slowdown(records: list[JobRecord], bound: float = DEFAULT_BOUND) -> float:
    """Mean bounded slowdown over accepted jobs (1.0 when none)."""
    accepted = [r for r in records if not r.rejected]
    if not accepted:
        return 1.0
    return float(np.mean([bounded_slowdown(r, bound) for r in accepted]))


def spatial_penalty(records: list[JobRecord]) -> float:
    """``P^n`` summary: mean waiting time per requested processor (s).

    The binned curve (Figure 5) is
    :func:`repro.metrics.stats.avg_waiting_by_spatial`; this scalar is
    its workload-level aggregate — useful for one-line comparisons.
    """
    accepted = [r for r in records if not r.rejected]
    if not accepted:
        return 0.0
    return float(np.mean([r.waiting_time / r.nr for r in accepted]))


def jain_fairness(records: list[JobRecord]) -> float:
    """Jain's index over waiting times: ``(Σw)² / (n·Σw²)`` in ``(0, 1]``.

    Zero-wait jobs are included (they are the fairest outcome); an empty
    or all-zero-wait population scores a perfect 1.0.
    """
    waits = np.array([r.waiting_time for r in records if not r.rejected])
    if waits.size == 0 or not waits.any():
        return 1.0
    return float(waits.sum() ** 2 / (waits.size * (waits**2).sum()))


def utilization_timeline(
    records: list[JobRecord], n_servers: int
) -> tuple[np.ndarray, np.ndarray]:
    """Step function of committed processors over time.

    Returns ``(times, busy)`` where ``busy[i]`` holds from ``times[i]``
    to ``times[i+1]``.  Values never exceed ``n_servers`` for a correct
    scheduler — the property tests rely on that.
    """
    if n_servers <= 0:
        raise ValueError(f"need at least one server, got {n_servers}")
    events: list[tuple[float, int]] = []
    for r in records:
        if r.rejected:
            continue
        events.append((r.start, r.nr))
        events.append((r.end, -r.nr))
    if not events:
        return np.array([0.0]), np.array([0])
    events.sort()
    times = []
    busy = []
    level = 0
    for t, delta in events:
        level += delta
        if times and times[-1] == t:
            busy[-1] = level
        else:
            times.append(t)
            busy.append(level)
    return np.array(times), np.array(busy)
