"""Plain-text table rendering for the experiment harness.

The paper's tables and figure series are regenerated as aligned text
tables (no plotting dependency); every experiment module renders through
these helpers so the benchmark output stays uniform.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["format_table", "format_series", "fmt", "sparkline"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a numeric series as a unicode mini-bar-chart.

    NaNs render as spaces; a constant series renders at mid height.
    With ``width`` given, the series is downsampled by averaging equal
    chunks.  Used by the experiment renders to give figures a visual
    shape even in plain-text output.
    """
    vals = [float(v) for v in values]
    if width is not None and width > 0 and len(vals) > width:
        chunk = len(vals) / width
        vals = [
            _nanmean(vals[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)])
            for i in range(width)
        ]
    finite = [v for v in vals if not math.isnan(v)]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in vals:
        if math.isnan(v):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_BLOCKS[3])
        else:
            idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[idx])
    return "".join(chars)


def _nanmean(chunk: Sequence[float]) -> float:
    finite = [v for v in chunk if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else math.nan


def fmt(value: object, precision: int = 2) -> str:
    """Human-friendly cell formatting (NaN -> '—', floats rounded)."""
    if value is None:
        return "—"
    if isinstance(value, float):
        if math.isnan(value):
            return "—"
        if math.isinf(value):
            return "inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render an aligned text table."""
    cells = [[fmt(c, precision) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[object],
    named_series: dict[str, Sequence[object]],
    x_label: str,
    title: str | None = None,
    precision: int = 3,
    sparks: bool = True,
) -> str:
    """Render one or more y-series against a shared x axis.

    This is the text rendering of a paper *figure*: one row per x value,
    one column per curve, plus (by default) a sparkline legend giving
    each curve's shape at a glance.
    """
    headers = [x_label, *named_series.keys()]
    rows = []
    for i, xv in enumerate(x):
        row: list[object] = [xv]
        for series in named_series.values():
            row.append(series[i] if i < len(series) else None)
        rows.append(row)
    table = format_table(headers, rows, title=title, precision=precision)
    if not sparks or not len(x):
        return table
    width = max(len(name) for name in named_series)
    legend = "\n".join(
        f"{name.ljust(width)}  {sparkline([_as_float(v) for v in series])}"
        for name, series in named_series.items()
    )
    return f"{table}\n{legend}"


def _as_float(value: object) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return math.nan
