"""Per-job outcome records — the raw material of every table and figure."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JobRecord", "RECORD_ROW_FIELDS"]

#: row layout version for :meth:`JobRecord.to_row`; bump on field changes
RECORD_ROW_FIELDS = ("rid", "qr", "sr", "lr", "nr", "start", "attempts", "ops")


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Immutable outcome of one job under one scheduler.

    ``start`` is ``None`` for rejected jobs (only the online scheduler
    rejects — batch queues are unbounded).  Times are seconds.
    """

    rid: int
    qr: float
    sr: float
    lr: float
    nr: int
    start: float | None
    attempts: int
    ops: int
    scheduler: str

    @property
    def rejected(self) -> bool:
        return self.start is None

    def to_row(self) -> list:
        """Compact list form for the result store (scheduler factored out).

        The layout is :data:`RECORD_ROW_FIELDS`; ``scheduler`` is stored
        once per run by :meth:`repro.sim.driver.SimResult.to_payload`
        rather than repeated on every row.
        """
        return [self.rid, self.qr, self.sr, self.lr, self.nr, self.start,
                self.attempts, self.ops]

    @classmethod
    def from_row(cls, row: list, scheduler: str) -> "JobRecord":
        """Inverse of :meth:`to_row`; raises on malformed rows."""
        rid, qr, sr, lr, nr, start, attempts, ops = row
        return cls(
            rid=int(rid),
            qr=float(qr),
            sr=float(sr),
            lr=float(lr),
            nr=int(nr),
            start=None if start is None else float(start),
            attempts=int(attempts),
            ops=int(ops),
            scheduler=scheduler,
        )

    @property
    def waiting_time(self) -> float:
        """``W_r = start - s_r`` (paper Section 5); raises on rejected jobs."""
        if self.start is None:
            raise ValueError(f"job {self.rid} was rejected; it has no waiting time")
        return self.start - self.sr

    @property
    def temporal_penalty(self) -> float:
        """``P^l_r = W_r / l_r`` — waiting time normalized to job duration."""
        return self.waiting_time / self.lr

    @property
    def end(self) -> float:
        """Completion time; raises on rejected jobs."""
        if self.start is None:
            raise ValueError(f"job {self.rid} was rejected; it never completes")
        return self.start + self.lr

    @property
    def turnaround(self) -> float:
        """Time from earliest possible start to completion: ``W_r + l_r``."""
        return self.waiting_time + self.lr
