"""Statistics over job records — the metrics of Section 5.

Everything operates on lists of :class:`~repro.metrics.records.JobRecord`
and returns plain numpy arrays / dataclasses, ready for the experiment
harness to print (or for a notebook to plot).  Rejected jobs are excluded
from waiting-time statistics (they have none) but reported via
``SimResult.acceptance_rate``.

The units convention: records store seconds; every function here reports
**hours** for times (as the paper's axes do) unless noted otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import JobRecord

__all__ = [
    "HOUR",
    "Summary",
    "attempts_by_spatial_bin",
    "avg_waiting_by_spatial",
    "duration_histogram",
    "summarize",
    "temporal_penalty_by_duration",
    "waiting_time_histogram",
]

#: seconds per hour — the records are in seconds, the paper's plots in hours
HOUR = 3600.0


def _accepted(records: list[JobRecord]) -> list[JobRecord]:
    return [r for r in records if not r.rejected]


@dataclass(frozen=True, slots=True)
class Summary:
    """Headline numbers for one scheduler run (times in hours)."""

    jobs: int
    accepted: int
    mean_wait: float
    median_wait: float
    max_wait: float
    mean_penalty: float
    mean_attempts: float

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.jobs if self.jobs else 1.0


def summarize(records: list[JobRecord]) -> Summary:
    """Headline statistics over a run."""
    acc = _accepted(records)
    if not acc:
        return Summary(len(records), 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    waits = np.array([r.waiting_time for r in acc]) / HOUR
    pen = np.array([r.temporal_penalty for r in acc])
    att = np.array([r.attempts for r in acc], dtype=float)
    return Summary(
        jobs=len(records),
        accepted=len(acc),
        mean_wait=float(waits.mean()),
        median_wait=float(np.median(waits)),
        max_wait=float(waits.max()),
        mean_penalty=float(pen.mean()),
        mean_attempts=float(att.mean()),
    )


def waiting_time_histogram(
    records: list[JobRecord], bin_hours: float = 1.0, max_hours: float = 14.0
) -> tuple[np.ndarray, np.ndarray]:
    """Waiting-time distribution (Figures 4(a) and 6).

    Returns ``(bin_lefts, frequency)`` where ``frequency`` sums to 1 over
    *all* accepted jobs; waits beyond ``max_hours`` fall in the last bin,
    so tails remain visible as mass at the right edge.
    """
    acc = _accepted(records)
    if not acc:
        return np.array([]), np.array([])
    waits = np.array([r.waiting_time for r in acc]) / HOUR
    edges = np.arange(0.0, max_hours + bin_hours, bin_hours)
    # clip into the *last bin's* interior — its midpoint — not relative to
    # max_hours: when max_hours is not a multiple of bin_hours the last
    # edge overshoots max_hours and a max_hours-relative clip target
    # lands in the second-to-last bin
    clipped = np.minimum(waits, (edges[-2] + edges[-1]) / 2)
    counts, _ = np.histogram(clipped, bins=edges)
    return edges[:-1], counts / len(acc)


def duration_histogram(
    records: list[JobRecord], bin_hours: float = 2.0, max_hours: float = 44.0
) -> tuple[np.ndarray, np.ndarray]:
    """Temporal-size distribution of the workload itself (Figure 4(b))."""
    if not records:
        return np.array([]), np.array([])
    durs = np.array([r.lr for r in records]) / HOUR
    edges = np.arange(0.0, max_hours + bin_hours, bin_hours)
    # last-bin midpoint, as in waiting_time_histogram: keeps the tail in
    # the final bin for any (bin_hours, max_hours) combination
    clipped = np.minimum(durs, (edges[-2] + edges[-1]) / 2)
    counts, _ = np.histogram(clipped, bins=edges)
    return edges[:-1], counts / len(records)


def temporal_penalty_by_duration(
    records: list[JobRecord], bin_hours: float = 1.0, max_hours: float = 20.0
) -> tuple[np.ndarray, np.ndarray]:
    """Average temporal penalty ``P^l`` per duration bin (Figure 3).

    Returns ``(bin_lefts, mean_penalty)``; bins without jobs carry NaN.
    """
    acc = _accepted(records)
    edges = np.arange(0.0, max_hours + bin_hours, bin_hours)
    lefts = edges[:-1]
    if not acc:
        return lefts, np.full(len(lefts), np.nan)
    durs = np.array([r.lr for r in acc]) / HOUR
    pen = np.array([r.temporal_penalty for r in acc])
    idx = np.clip(np.digitize(durs, edges) - 1, 0, len(lefts) - 1)
    sums = np.bincount(idx, weights=pen, minlength=len(lefts))
    counts = np.bincount(idx, minlength=len(lefts))
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return lefts, means


def avg_waiting_by_spatial(
    records: list[JobRecord], bin_width: int = 25
) -> tuple[np.ndarray, np.ndarray]:
    """Average waiting time (seconds, as in Figure 5) per spatial-size bin.

    Bins follow the paper's ``(lo, hi]`` groups, as in
    :func:`attempts_by_spatial_bin`: a job with ``n_r = bin_width`` falls
    in the *first* bin, not the second.  Returns ``(bin_lefts,
    mean_wait_seconds)`` where ``bin_lefts[i]`` is the exclusive lower
    bound of bin ``i``; bins without jobs carry NaN.
    """
    acc = _accepted(records)
    if not acc:
        return np.array([]), np.array([])
    sizes = np.array([r.nr for r in acc])
    waits = np.array([r.waiting_time for r in acc])
    n_bins = int((sizes.max() - 1) // bin_width) + 1
    idx = (sizes - 1) // bin_width
    sums = np.bincount(idx, weights=waits, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return np.arange(n_bins) * bin_width, means


def attempts_by_spatial_bin(
    records: list[JobRecord], bin_width: int = 50, n_servers: int | None = None
) -> dict[tuple[int, int], float]:
    """Average scheduling attempts per spatial-size group (Table 2).

    Groups follow the paper: ``(0, 50], (50, 100], …``.  Only groups with
    at least one job appear; keys are ``(lo, hi]`` bounds.
    """
    acc = _accepted(records)
    out: dict[tuple[int, int], tuple[float, int]] = {}
    for r in acc:
        lo = ((r.nr - 1) // bin_width) * bin_width
        key = (lo, lo + bin_width)
        s, c = out.get(key, (0.0, 0))
        out[key] = (s + r.attempts, c + 1)
    return {key: s / c for key, (s, c) in sorted(out.items())}
