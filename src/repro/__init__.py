"""repro — reproduction of *Resource Co-Allocation for Large-Scale
Distributed Environments* (Castillo, Rouskas, Harfoush; HPDC 2009).

The package implements the paper's online co-allocation algorithm (slotted
2-dimensional availability trees + two-phase range search + bounded-retry
scheduling), the batch-scheduler baselines it is evaluated against, a
discrete-event grid simulator, calibrated synthetic versions of the three
Parallel Workload Archive traces used in the evaluation, and the full
experiment harness regenerating every table and figure.

Quickstart::

    from repro import CoAllocationScheduler, Request

    sched = CoAllocationScheduler(n_servers=64, tau=900.0, q_slots=96)
    alloc = sched.schedule(Request(qr=0.0, sr=0.0, lr=3600.0, nr=8))
    print(alloc.servers, alloc.start, alloc.delay)

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the
system inventory.
"""

from .core import (
    INF,
    Allocation,
    AvailabilityCalendar,
    IdlePeriod,
    LinearScanAllocator,
    OnlineCoAllocator,
    OpCounter,
    RangeQuery,
    Request,
    Reservation,
    TwoDimTree,
)
from .facade import CoAllocationScheduler

__version__ = "1.0.0"

__all__ = [
    "INF",
    "Allocation",
    "AvailabilityCalendar",
    "CoAllocationScheduler",
    "IdlePeriod",
    "LinearScanAllocator",
    "OnlineCoAllocator",
    "OpCounter",
    "RangeQuery",
    "Request",
    "Reservation",
    "TwoDimTree",
    "__version__",
]
