"""Wire-protocol conformance checking: RA205 and RA206.

The coordinator/shard/client wire vocabulary lives in one declarative
registry (:data:`repro.service.protocol.REGISTRY`).  This module
cross-checks the *code* against that registry, both directions:

* **RA205 — send sites.**  Every literal ``{"op": ...}`` dict
  constructed in the service modules (``server.py``, ``coordinator.py``,
  ``shards.py``, ``loadgen.py``) and the gateway modules (``app.py``,
  ``follower.py``) is a message somebody will put on the wire.  The op
  must be registered, required fields must be present (unless a ``**``
  splat may supply them), literal field values must have the spec'd
  JSON type, and no field may be unknown to the spec.  Dicts carrying a
  literal ``ok`` key are *responses* (they echo the op, their payload
  schema is the handler's business) and only get the op-is-known check.

* **RA206 — exhaustiveness.**  Registry and handler tables must agree
  both ways, per role: every registered public op has a server
  ``_actor_apply_<op>`` method and vice versa; every registered shard
  op has a ``ShardState._op_<op>`` method and vice versa; every
  registered follower op has a ``_ctl_<op>`` method in
  ``gateway/follower.py`` and vice versa; and every
  :class:`~repro.errors.ErrorCode` member (except ``OK``) is carried on
  the wire by some ``ReproError`` subclass' ``code`` attribute.

Like the structural audit engine, the checker ships an ``--inject``
self-test registry (:data:`PROTOCOL_INJECTIONS`): each injection
deliberately drifts the model — drop a required field, unregister an
op, delete a handler — and the check must fail with the expected rule,
proving the detector would catch the real bug class.

Per-line suppression uses the same ``# repro: noqa: RA205`` pragma as
the lint pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from ..service.protocol import FIELD_TYPES, OpSpec, REGISTRY
from .rules.base import Violation

__all__ = [
    "GATEWAY_SEND_SITE_MODULES",
    "PROTOCOL_INJECTIONS",
    "ProtocolModel",
    "ProtocolReport",
    "collect_model",
    "run_protocol_check",
    "scan_send_sites",
]

#: the modules whose literal ``{"op": ...}`` constructions go on the wire
SEND_SITE_MODULES = ("server.py", "coordinator.py", "shards.py", "loadgen.py")

#: gateway modules with wire send sites, resolved against the sibling
#: ``gateway`` package (skipped when absent, e.g. in fixture trees)
GATEWAY_SEND_SITE_MODULES = ("app.py", "follower.py")

_HINT_205 = (
    "make the send site agree with protocol.REGISTRY: fix the message literal, "
    "or extend the OpSpec (bumping PROTOCOL_VERSION on incompatible changes)"
)
_HINT_206 = (
    "registry and handlers must stay exhaustive both ways: add the missing "
    "_actor_apply_<op> / _op_<op> handler or OpSpec entry, or delete the dead "
    "one; map every ErrorCode through a ReproError subclass' `code` attribute"
)


# ----------------------------------------------------------------------
# model collection (parsed once, mutated by injections)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ProtocolModel:
    """Everything RA205/RA206 compare: the registry and the handler tables."""

    registry: dict[str, OpSpec]
    server_path: str = ""
    server_class_line: int = 1
    server_handlers: dict[str, int] = field(default_factory=dict)  # op -> line
    shards_path: str = ""
    shards_class_line: int = 1
    shard_handlers: dict[str, int] = field(default_factory=dict)
    follower_path: str = ""
    follower_class_line: int = 1
    follower_handlers: dict[str, int] = field(default_factory=dict)
    #: ``False`` when no follower module exists (fixture trees): the
    #: follower half of the exhaustiveness check is skipped then
    follower_present: bool = False
    errors_path: str = ""
    error_codes: dict[str, int] = field(default_factory=dict)  # member -> line
    mapped_codes: set[str] = field(default_factory=set)


def _handler_table(
    tree: ast.Module, prefix: str
) -> tuple[dict[str, int], int]:
    """``(op -> def line)`` for every ``<prefix><op>`` method, plus the
    line of the class that holds the most of them (the handler class)."""
    handlers: dict[str, int] = {}
    best_class_line, best_count = 1, -1
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        count = 0
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name.startswith(prefix) and len(item.name) > len(prefix):
                    handlers[item.name[len(prefix):]] = item.lineno
                    count += 1
        if count > best_count:
            best_class_line, best_count = node.lineno, count
    return handlers, best_class_line


def _error_tables(tree: ast.Module) -> tuple[dict[str, int], set[str]]:
    """ErrorCode members (name -> line) and the codes exceptions carry."""
    members: dict[str, int] = {}
    mapped: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "ErrorCode":
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and target.id.isupper():
                            members[target.id] = item.lineno
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            # ``code = ErrorCode.X`` (plain or annotated) in an exception body
            value = node.value
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "ErrorCode"
                and any(isinstance(t, ast.Name) and t.id == "code" for t in targets)
            ):
                mapped.add(value.attr)
    return members, mapped


def collect_model(
    service_dir: str | Path | None = None,
    errors_path: str | Path | None = None,
    registry: dict[str, OpSpec] | None = None,
) -> ProtocolModel:
    """Parse the handler/error tables the exhaustiveness check compares.

    Defaults resolve against the imported ``repro`` package, so the
    check always analyses the same code it would execute; tests point
    ``service_dir``/``errors_path`` at drifted fixture trees instead.
    """
    if service_dir is None:
        from .. import service

        service_dir = Path(service.__file__).resolve().parent
    service_dir = Path(service_dir)
    if errors_path is None:
        from .. import errors

        errors_path = Path(errors.__file__).resolve()
    errors_path = Path(errors_path)

    model = ProtocolModel(registry=dict(registry if registry is not None else REGISTRY))

    server_file = service_dir / "server.py"
    model.server_path = str(server_file)
    server_tree = ast.parse(server_file.read_text(encoding="utf-8"), filename=str(server_file))
    model.server_handlers, model.server_class_line = _handler_table(
        server_tree, "_actor_apply_"
    )

    shards_file = service_dir / "shards.py"
    model.shards_path = str(shards_file)
    shards_tree = ast.parse(shards_file.read_text(encoding="utf-8"), filename=str(shards_file))
    model.shard_handlers, model.shards_class_line = _handler_table(shards_tree, "_op_")

    follower_file = service_dir.parent / "gateway" / "follower.py"
    model.follower_path = str(follower_file)
    if follower_file.exists():
        model.follower_present = True
        follower_tree = ast.parse(
            follower_file.read_text(encoding="utf-8"), filename=str(follower_file)
        )
        model.follower_handlers, model.follower_class_line = _handler_table(
            follower_tree, "_ctl_"
        )

    model.errors_path = str(errors_path)
    errors_tree = ast.parse(errors_path.read_text(encoding="utf-8"), filename=str(errors_path))
    model.error_codes, model.mapped_codes = _error_tables(errors_tree)
    return model


# ----------------------------------------------------------------------
# RA205: send sites
# ----------------------------------------------------------------------


def _literal_type_ok(node: ast.expr, tag: str) -> bool | None:
    """Whether a literal AST value satisfies a spec type tag.

    ``None`` means the value is not a checkable literal (a name, a call,
    a comprehension — the runtime validator owns those).
    """
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None or isinstance(value, bool):
            return False  # specs never accept null/bool for typed fields
        return isinstance(value, FIELD_TYPES[tag])
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _literal_type_ok(node.operand, tag)
    if isinstance(node, (ast.List, ast.ListComp)):
        return tag == "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return tag == "dict"
    return None


def scan_send_sites(
    source: str,
    path: str = "<string>",
    registry: dict[str, OpSpec] | None = None,
) -> list[Violation]:
    """RA205 over one module's source: literal message dicts vs the registry."""
    specs = registry if registry is not None else REGISTRY
    tree = ast.parse(source, filename=path)
    violations: list[Violation] = []

    def emit(node: ast.AST, message: str) -> None:
        violations.append(
            Violation(
                rule_id="RA205",
                path=path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=_HINT_205,
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        literal_keys: dict[str, ast.expr] = {}
        has_splat = False
        for key, value in zip(node.keys, node.values):
            if key is None:
                has_splat = True
            elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                literal_keys[key.value] = value
        op_node = literal_keys.get("op")
        if op_node is None or not (
            isinstance(op_node, ast.Constant) and isinstance(op_node.value, str)
        ):
            continue  # not a literal message construction
        op = op_node.value
        spec = specs.get(op)
        if spec is None:
            emit(node, f"message constructs unknown op {op!r} (not in protocol.REGISTRY)")
            continue
        if "ok" in literal_keys:
            continue  # a response: echoes the op, payload schema is the handler's
        required = dict(spec.required)
        optional = dict(spec.optional)
        allowed = spec.field_names | {"op", "seq"}
        for name in literal_keys:
            if name not in allowed:
                emit(
                    node,
                    f"{op}: field {name!r} is not in the OpSpec "
                    f"(known fields: {', '.join(sorted(allowed - {'op', 'seq'})) or 'none'})",
                )
        if not has_splat:
            for name in required:
                if name not in literal_keys:
                    emit(node, f"{op}: required field {name!r} missing at this send site")
        for name, value in literal_keys.items():
            tag = required.get(name) or optional.get(name)
            if tag is None:
                continue
            verdict = _literal_type_ok(value, tag)
            if verdict is False:
                emit(
                    node,
                    f"{op}: literal value for field {name!r} is not of wire type "
                    f"{tag!r}",
                )
    return violations


# ----------------------------------------------------------------------
# RA206: exhaustiveness
# ----------------------------------------------------------------------


def _exhaustiveness(model: ProtocolModel) -> list[Violation]:
    violations: list[Violation] = []

    def emit(path: str, line: int, message: str) -> None:
        violations.append(
            Violation(
                rule_id="RA206",
                path=path,
                line=line,
                col=0,
                message=message,
                hint=_HINT_206,
            )
        )

    public = {name for name, spec in model.registry.items() if spec.role == "public"}
    internal = {name for name, spec in model.registry.items() if spec.role == "shard"}
    follower = {name for name, spec in model.registry.items() if spec.role == "follower"}

    for op in sorted(public - set(model.server_handlers)):
        emit(
            model.server_path,
            model.server_class_line,
            f"registered op {op!r} has no _actor_apply_{op} handler",
        )
    for op in sorted(set(model.server_handlers) - public):
        emit(
            model.server_path,
            model.server_handlers[op],
            f"handler _actor_apply_{op} serves an op missing from protocol.REGISTRY",
        )
    for op in sorted(internal - set(model.shard_handlers)):
        emit(
            model.shards_path,
            model.shards_class_line,
            f"registered shard op {op!r} has no _op_{op} handler",
        )
    for op in sorted(set(model.shard_handlers) - internal):
        emit(
            model.shards_path,
            model.shard_handlers[op],
            f"handler _op_{op} serves an op missing from protocol.REGISTRY",
        )
    if model.follower_present:
        for op in sorted(follower - set(model.follower_handlers)):
            emit(
                model.follower_path,
                model.follower_class_line,
                f"registered follower op {op!r} has no _ctl_{op} handler",
            )
        for op in sorted(set(model.follower_handlers) - follower):
            emit(
                model.follower_path,
                model.follower_handlers[op],
                f"handler _ctl_{op} serves an op missing from protocol.REGISTRY",
            )
    for code in sorted(set(model.error_codes) - model.mapped_codes - {"OK"}):
        emit(
            model.errors_path,
            model.error_codes[code],
            f"ErrorCode.{code} is constructed but no ReproError subclass carries "
            f"it on the wire",
        )
    return violations


# ----------------------------------------------------------------------
# injections (self-test, mirroring the audit engine's CORRUPTIONS)
# ----------------------------------------------------------------------


def _inject_drop_field(model: ProtocolModel) -> str:
    spec = model.registry["reserve"]
    model.registry["reserve"] = replace(
        spec, required=tuple(f for f in spec.required if f[0] != "rid")
    )
    return "dropped required field 'rid' from the reserve OpSpec"


def _inject_unknown_op(model: ProtocolModel) -> str:
    del model.registry["probe"]
    return "unregistered op 'probe' (its handler and send sites remain)"


def _inject_drop_handler(model: ProtocolModel) -> str:
    model.server_handlers.pop("cancel", None)
    return "removed the server's _actor_apply_cancel handler from the model"


def _inject_drop_follower_handler(model: ProtocolModel) -> str:
    model.follower_present = True
    model.follower_handlers.pop("promote", None)
    return "removed the follower's _ctl_promote handler from the model"


#: injection name -> (mutator, rule id the check must then report)
PROTOCOL_INJECTIONS: dict[str, tuple[Callable[[ProtocolModel], str], str]] = {
    "drop-field": (_inject_drop_field, "RA205"),
    "unknown-op": (_inject_unknown_op, "RA206"),
    "drop-handler": (_inject_drop_handler, "RA206"),
    "drop-follower-handler": (_inject_drop_follower_handler, "RA206"),
}


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ProtocolReport:
    """Outcome of one protocol-conformance run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    injected: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.injected is None

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
            "ok": self.ok,
        }
        if self.injected is not None:
            out["injected"] = self.injected
        return out

    def to_text(self) -> str:
        lines: list[str] = []
        if self.injected is not None:
            lines.append(
                f"protocol: injected drift ({self.injected['kind']}): "
                f"{self.injected['description']}"
            )
        for v in self.violations:
            lines.append(str(v))
            lines.append(f"    hint: {v.hint}")
        if self.injected is not None:
            caught = self.injected["caught"]
            lines.append(
                f"protocol: drift {'caught' if caught else 'MISSED'} "
                f"(expected {self.injected['expected']})"
            )
        elif not self.violations:
            lines.append(
                f"protocol: {self.files_checked} file(s) conform to the registry"
            )
        else:
            lines.append(
                f"protocol: {len(self.violations)} violation(s) in "
                f"{self.files_checked} file(s)"
            )
        return "\n".join(lines)


def run_protocol_check(
    service_dir: str | Path | None = None,
    errors_path: str | Path | None = None,
    inject: str | None = None,
) -> ProtocolReport:
    """RA205 + RA206 over the service package (or a fixture tree).

    With ``inject``, the model is deliberately drifted first and the
    report records whether the expected rule caught it; an injected run
    never reports ``ok`` (the CLI always exits non-zero on it).
    """
    from .lint import _suppressed_lines

    model = collect_model(service_dir=service_dir, errors_path=errors_path)
    injected: dict[str, Any] | None = None
    if inject is not None:
        mutate, expected = PROTOCOL_INJECTIONS[inject]
        description = mutate(model)
        injected = {"kind": inject, "description": description, "expected": expected}

    report = ProtocolReport(injected=injected)
    base = Path(model.server_path).parent
    gateway_base = base.parent / "gateway"
    candidates = [base / name for name in SEND_SITE_MODULES]
    candidates += [gateway_base / name for name in GATEWAY_SEND_SITE_MODULES]
    for module_file in candidates:
        if not module_file.exists():
            continue
        source = module_file.read_text(encoding="utf-8")
        report.files_checked += 1
        suppressed = _suppressed_lines(source)
        for violation in scan_send_sites(
            source, path=str(module_file), registry=model.registry
        ):
            pragma = suppressed.get(violation.line, "missing")
            if pragma is None or (
                isinstance(pragma, frozenset) and violation.rule_id in pragma
            ):
                continue
            report.violations.append(violation)
    report.files_checked += 1  # errors.py
    report.violations.extend(_exhaustiveness(model))
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    if injected is not None:
        injected["caught"] = any(
            v.rule_id == injected["expected"] for v in report.violations
        )
    return report
