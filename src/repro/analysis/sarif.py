"""SARIF 2.1.0 rendering for ``repro check`` findings.

GitHub code scanning ingests SARIF and annotates pull requests inline,
so a lint/protocol finding shows up on the offending line of the diff
instead of inside a CI log.  Only the small stable subset of the format
is emitted: one run, one driver, one result per
:class:`~repro.analysis.rules.base.Violation`, with the rule's title and
fix hint carried as rule metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from .rules import ALL_RULES
from .rules.base import Violation

__all__ = ["render_sarif", "sarif_report"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: ids emitted by the runner / cross-file engines rather than Rule objects
_EXTRA_RULES: dict[str, tuple[str, str]] = {
    "RA000": ("syntax error", "fix the syntax error; nothing else can be checked"),
    "RA010": (
        "noqa pragma names an unknown rule id",
        "use an existing RA id or drop the pragma",
    ),
    "RA205": (
        "send site disagrees with the protocol registry",
        "fix the message literal or extend the OpSpec in protocol.py",
    ),
    "RA206": (
        "protocol registry/handler tables are not exhaustive",
        "add the missing handler or OpSpec entry, or delete the dead one",
    ),
}


def _rule_descriptors(used: Iterable[str]) -> list[dict[str, Any]]:
    known: dict[str, tuple[str, str]] = {
        rule.id: (rule.title, rule.hint) for rule in ALL_RULES
    }
    known.update(_EXTRA_RULES)
    descriptors: list[dict[str, Any]] = []
    for rule_id in sorted(set(used)):
        title, hint = known.get(rule_id, (rule_id, ""))
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": title},
                "help": {"text": hint},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _relative_uri(path: str) -> str:
    """Repository-relative POSIX path when possible (code scanning needs it)."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def sarif_report(violations: Sequence[Violation]) -> dict[str, Any]:
    """The findings as one SARIF 2.1.0 run (a JSON-serializable dict)."""
    results = [
        {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": f"{v.message} (hint: {v.hint})" if v.hint else v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(v.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, v.line),
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": "docs/analysis.md",
                        "rules": _rule_descriptors(v.rule_id for v in violations),
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(violations: Sequence[Violation]) -> str:
    """The SARIF run as an indented JSON document (trailing newline)."""
    return json.dumps(sarif_report(violations), indent=2, sort_keys=True) + "\n"
