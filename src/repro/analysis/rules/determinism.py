"""Rules keeping the simulated world deterministic.

Replays must be bit-identical across runs and machines: the benchmark
harness compares outcome checksums across code revisions, and every
experiment is seeded.  A wall-clock read or a draw from an unseeded RNG
inside ``core/`` or ``sim/`` silently breaks both.  (``perf_counter`` is
explicitly allowed — *measuring* wall time is the replay harness's job;
*consuming* it in scheduling decisions is the bug.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import LintContext, Rule, Violation, in_simulation

__all__ = ["WallClockRule", "UnseededRandomRule"]

#: functions that read the host clock; resolved through import aliases
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the qualified names they were imported as."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _qualified(node: ast.AST, table: dict[str, str]) -> str | None:
    """Resolve a call target to a dotted name through the import table."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = table.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    """RA005: wall-clock reads inside the simulated world."""

    id = "RA005"
    title = "wall clock read in simulation code"
    hint = (
        "use the simulated clock (engine.now / calendar.now); wall time may "
        "only be *measured* (perf_counter) by the replay/benchmark harness"
    )

    def applies_to(self, module: str) -> bool:
        return in_simulation(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualified(node.func, table)
            if qualified in _WALL_CLOCK:
                yield self.violation(
                    ctx, node, f"{qualified}() reads the host clock inside the simulator"
                )


class UnseededRandomRule(Rule):
    """RA006: unseeded randomness inside the simulated world.

    Draws from the module-level ``random`` functions (shared global
    state) or from ``numpy.random``'s legacy global generator make
    replays irreproducible; so do ``random.Random()`` and
    ``numpy.random.default_rng()`` constructed without a seed.  Seeded
    generator *instances* passed around explicitly are the supported
    pattern.
    """

    id = "RA006"
    title = "unseeded randomness in simulation code"
    hint = (
        "construct random.Random(seed) / numpy.random.default_rng(seed) "
        "explicitly and thread the instance through"
    )

    def applies_to(self, module: str) -> bool:
        return in_simulation(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualified(node.func, table)
            if qualified is None:
                continue
            if qualified in ("random.Random", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node, f"{qualified}() constructed without a seed"
                    )
            elif qualified.startswith("random.") and qualified.count(".") == 1:
                yield self.violation(
                    ctx,
                    node,
                    f"{qualified}() draws from the shared module-level RNG",
                )
            elif qualified.startswith("numpy.random.") and qualified not in (
                "numpy.random.default_rng",
                "numpy.random.Generator",
                "numpy.random.SeedSequence",
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{qualified}() draws from numpy's legacy global RNG",
                )
