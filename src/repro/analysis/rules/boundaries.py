"""Rules enforcing module boundaries and API contracts.

``RA007`` keeps slot-tree internals private: the fused-update invariants
(``size`` fields, merged ``sec_keys`` arrays, the per-tree uid map) are
maintained by ``core/slot_tree.py`` alone, and any outside reader becomes
an outside *mutator* one refactor later.  ``RA008`` enforces the
``ScheduleOutcome`` contract: the attempt count on rejection is
``outcome.attempts`` (a deadline/horizon early exit performs fewer than
``R_max`` attempts), never the scheduler's ``r_max`` parameter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import LintContext, Rule, Violation

__all__ = ["SlotTreeInternalsRule", "OutcomeContractRule"]

#: attributes that exist only on slot-tree internals — node-backed names
#: (``sec_keys``/``_root``) and array-kernel names (``_kernel``/``secs``)
_PRIVATE_ATTRS = frozenset(
    {"sec_keys", "_root", "_by_uid", "_find_leaf", "_rebuild", "_kernel", "secs"}
)

#: names private to the kernel/tree modules that must not be imported
#: elsewhere (``_Node`` is the node-backed reference's node class;
#: ``TreeKernel`` is the array kernel's storage class)
_PRIVATE_IMPORTS = frozenset({"_Node", "TreeKernel"})

#: modules allowed to touch them: the tree itself (array wrapper, kernel,
#: and the node-backed reference) and the designated invariant auditor
#: (whose whole job is inspecting internals)
_ALLOWED_MODULES = (
    "core/slot_tree.py",
    "core/slot_tree_nodes.py",
    "core/_kernel.py",
    "analysis/audit.py",
)


class SlotTreeInternalsRule(Rule):
    """RA007: slot-tree internals reached from outside ``core/slot_tree.py``."""

    id = "RA007"
    title = "slot-tree internals accessed from outside"
    hint = (
        "go through the TwoDimTree public surface (insert/remove/bulk_load, "
        "phase1/phase2/find_feasible, periods, validate); if an invariant "
        "needs checking, extend repro.analysis.audit instead"
    )

    def applies_to(self, module: str) -> bool:
        return module not in _ALLOWED_MODULES

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _PRIVATE_IMPORTS:
                        yield self.violation(
                            ctx, node, f"{alias.name} is private to the slot-tree modules"
                        )
            elif isinstance(node, ast.Attribute) and node.attr in _PRIVATE_ATTRS:
                yield self.violation(
                    ctx,
                    node,
                    f".{node.attr} is slot-tree internal state",
                )


class OutcomeContractRule(Rule):
    """RA008: ScheduleOutcome consumers must not read ``r_max``.

    A function that calls ``schedule_detailed()`` gets the *actual*
    attempt count and rejection reason in the outcome; reading ``r_max``
    in the same function means it is reconstructing (wrongly) what the
    outcome already reports — the exact bug the attempt-count fix of the
    fast-path PR removed.
    """

    id = "RA008"
    title = "ScheduleOutcome consumer reads r_max"
    hint = "read outcome.attempts / outcome.reason instead of assuming r_max"

    #: the retry loops themselves legitimately iterate up to r_max
    _IMPLEMENTATIONS = ("core/coalloc.py", "core/linear.py")

    def applies_to(self, module: str) -> bool:
        return module not in self._IMPLEMENTATIONS

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            calls_detailed = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "schedule_detailed"
                for node in ast.walk(func)
            )
            if not calls_detailed:
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Attribute) and node.attr == "r_max":
                    yield self.violation(
                        ctx,
                        node,
                        "reads r_max while consuming a ScheduleOutcome "
                        "(early exits make attempts < r_max)",
                    )
