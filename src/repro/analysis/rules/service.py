"""Rule guarding the service layer's single-writer actor boundary.

The reservation server's correctness argument is that exactly one task —
the actor loop — ever touches the scheduler/calendar: connection
handlers only pass messages.  A coroutine that calls the blocking commit
path directly both breaks single-writer ownership (two interleaved
coroutines can each pass a feasibility check and double-book) and stalls
the event loop for the duration of an ``O((log N)^2)`` commit.

``RA009`` makes that contract a lint rule: inside ``service/`` modules,
an ``async def`` may not call scheduler-owning methods on a
scheduler/calendar/allocator receiver.  The actor loop itself (any
coroutine whose name contains ``actor``) is exempt — it *is* the single
writer — and synchronous helpers are exempt because they can only run
when called, i.e. from the actor.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import LintContext, Rule, Violation

__all__ = ["ActorBoundaryRule"]

#: methods that read or mutate calendar state (the "commit path")
_GUARDED_METHODS = frozenset(
    {
        "schedule",
        "schedule_detailed",
        "schedule_or_raise",
        "commit",
        "allocate",
        "release",
        "release_early",
        "cancel",
        "advance",
        "range_search",
        "find_feasible",
        "suggest_alternatives",
    }
)

#: receiver names that denote the shared scheduling state
_GUARDED_RECEIVERS = frozenset({"scheduler", "calendar", "allocator", "facade"})


def _receiver_name(node: ast.AST) -> str | None:
    """The last name segment of the call receiver (``self.scheduler`` → ``scheduler``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ActorBoundaryRule(Rule):
    """RA009: blocking commit path called from a coroutine outside the actor."""

    id = "RA009"
    title = "scheduler commit path called outside the single-writer actor"
    hint = (
        "enqueue a (message, future) pair for the actor loop instead; only the "
        "actor coroutine (name contains 'actor') may touch the scheduler/calendar"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith("service/")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            if "actor" in node.name.lower():
                continue  # the single writer itself
            yield from self._check_coroutine(ctx, node)

    def _check_coroutine(
        self, ctx: LintContext, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        # nested sync defs are walked too: they inherit the coroutine's
        # context, since the event loop runs them when the coroutine calls
        # them; nested coroutines also get their own top-level visit, which
        # is harmless (same verdict twice would need a nested async actor)
        for node in ast.walk(coroutine):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _GUARDED_METHODS:
                continue
            receiver = _receiver_name(func.value)
            if receiver in _GUARDED_RECEIVERS:
                yield self.violation(
                    ctx,
                    node,
                    f"coroutine {coroutine.name!r} calls "
                    f"{receiver}.{func.attr}() outside the single-writer actor",
                )
