"""Rule framework for the domain lint pass.

A :class:`Rule` inspects one module's AST and yields violations.  Rules
are *scoped*: each decides from the module's package-relative path (e.g.
``core/calendar.py``) whether it applies at all, which is what makes the
pass domain-aware — float-time arithmetic is forbidden in slot code but
fine in a plotting script.

Scope vocabulary (paths are POSIX-style, relative to the ``repro``
package root):

* *hot path* — ``core/`` and ``sim/replay.py``: the modules the
  trace-replay benchmark times, where an accidental ``O(N)`` list shift
  or an in-loop sort silently destroys the paper's ``O((log N)^2)``
  bounds.
* *simulation* — ``core/`` and ``sim/``: the deterministic world; wall
  clocks and unseeded randomness are forbidden so replays stay
  bit-identical across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "LintContext",
    "Rule",
    "Violation",
    "in_hot_path",
    "in_simulation",
    "is_time_expr",
]


@dataclass(frozen=True, slots=True)
class Violation:
    """One lint finding, locatable and machine-readable."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True, slots=True)
class LintContext:
    """Everything a rule needs to inspect one module."""

    #: path as reported in violations (what the user passed in)
    path: str
    #: normalized package-relative module path used for scoping
    module: str
    tree: ast.Module
    source: str


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    #: stable identifier, ``RA001`` …; used in reports and ``noqa`` pragmas
    id: str = ""
    #: one-line summary of what the rule forbids
    title: str = ""
    #: how to fix a violation (shown next to every finding)
    hint: str = ""

    def applies_to(self, module: str) -> bool:
        """Whether the rule runs on the module at ``module`` (relative path)."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: LintContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
        )


def in_hot_path(module: str) -> bool:
    """Modules whose per-operation cost the replay benchmark guards."""
    return module.startswith("core/") or module == "sim/replay.py"


def in_simulation(module: str) -> bool:
    """Modules that must stay deterministic under replay."""
    return module.startswith("core/") or module.startswith("sim/")


#: identifiers that conventionally hold simulated-time values in this
#: codebase (Section 2 vocabulary plus the calendar/slot geometry)
_TIME_NAMES = frozenset(
    {
        "t", "st", "et", "sr", "er", "qr", "lr", "ta", "tb",
        "tau", "now", "start", "end",
        "start_time", "end_time", "to_time", "at_time",
        "deadline", "horizon", "horizon_start", "horizon_end",
        "delta_t", "lead", "delay", "cutoff", "until", "duration",
        "new_end", "latest", "elapsed",
    }
)


def _name_is_time(name: str) -> bool:
    return name in _TIME_NAMES or name.endswith(("_time", "_end", "_start"))


def is_time_expr(node: ast.AST) -> bool:
    """Heuristic: does the expression denote a simulated-time value?

    Names and attributes are matched against the codebase's time
    vocabulary; arithmetic over a time value is itself a time value.
    """
    if isinstance(node, ast.Name):
        return _name_is_time(node.id)
    if isinstance(node, ast.Attribute):
        return _name_is_time(node.attr)
    if isinstance(node, ast.BinOp):
        return is_time_expr(node.left) or is_time_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return is_time_expr(node.operand)
    return False
