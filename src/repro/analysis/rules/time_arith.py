"""Rules guarding float time arithmetic in slot geometry.

The calendar maps times to slots with products and floor division
(:meth:`AvailabilityCalendar.slot_of`) precisely because ``t % tau`` and
``t == q * tau`` drift by an ulp for non-integral ``tau`` — the exact bug
class a previous PR fixed on the slot boundaries.  ``RA003`` and
``RA004`` keep that arithmetic from creeping back in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import LintContext, Rule, Violation, in_hot_path, is_time_expr

__all__ = ["FloatTimeModuloRule", "FloatTimeEqualityRule"]


def _is_inf(node: ast.AST) -> bool:
    """`INF`, `math.inf`, or `float("inf")` — exact sentinels, safe to compare."""
    if isinstance(node, ast.Name) and node.id in ("INF", "inf"):
        return True
    if isinstance(node, ast.Attribute) and node.attr == "inf":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
    ):
        return True
    return False


class FloatTimeModuloRule(Rule):
    """RA003: ``%`` on time values drifts for non-integral ``tau``.

    ``t % tau`` and ``t // tau * tau`` disagree by an ulp near slot
    boundaries when ``tau`` has no exact binary representation; a time
    sitting exactly on a boundary then lands in the wrong slot.  String
    formatting with ``%`` is ignored.
    """

    id = "RA003"
    title = "float modulo on time values"
    hint = (
        "derive slot indexes with floor division plus the boundary fix-up "
        "loop of AvailabilityCalendar.slot_of, then compare against q*tau "
        "products directly"
    )

    def applies_to(self, module: str) -> bool:
        return in_hot_path(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Mod):
                continue
            # old-style string formatting, not arithmetic
            if isinstance(node.left, (ast.Constant, ast.JoinedStr)) and isinstance(
                getattr(node.left, "value", None), str
            ):
                continue
            if is_time_expr(node.left) or is_time_expr(node.right):
                yield self.violation(
                    ctx,
                    node,
                    "modulo on a time value is not ulp-exact for non-integral tau",
                )


class FloatTimeEqualityRule(Rule):
    """RA004: ``==``/``!=`` against a *derived* time value.

    Comparing two stored floats for equality is fine (the calendar's
    merge-adjacency checks rely on it: both sides are the same committed
    float).  Comparing against a value *computed* by ``*``/``/``/``+``
    arithmetic is not — the product ``q * tau`` is one ulp away from the
    stored boundary often enough to corrupt slot attribution.
    Comparisons with the ``INF`` sentinel are exact and exempt.
    """

    id = "RA004"
    title = "float equality against derived time values"
    hint = (
        "use ordered comparisons against the same products the slot-overlap "
        "tests use (q*tau <= t < (q+1)*tau), or compare stored floats only"
    )

    def applies_to(self, module: str) -> bool:
        return in_hot_path(module)

    @staticmethod
    def _is_derived_time(node: ast.AST) -> bool:
        """Arithmetic (not a bare name/attribute) over a time value."""
        return isinstance(node, ast.BinOp) and is_time_expr(node)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_inf(lhs) or _is_inf(rhs):
                    continue
                if self._is_derived_time(lhs) or self._is_derived_time(rhs):
                    yield self.violation(
                        ctx,
                        node,
                        "exact equality against a computed time value "
                        "(products drift by an ulp)",
                    )
