"""Async-actor concurrency rules, RA201 … RA204.

The service layer's correctness rests on event-loop discipline: state
shared between coroutines is only safe to read-modify-write *within*
one await-free segment (RA201); nothing may block the loop (RA202);
every spawned task needs an owner (RA203); and every stream read needs
an explicit size bound, because ``asyncio``'s default ``limit`` is
64 KiB and a legitimate multi-MiB shard payload kills the connection
(RA204 — the exact bug class the sharded-service PR hit and fixed by
hand).  These rules make all four invariants lintable.

Scope: ``service/``, ``gateway/`` and ``verify/`` — the packages that
run coroutines.  RA201 additionally exempts the single-writer actor
loop (any coroutine whose name contains ``actor``), mirroring RA009:
the actor owns the state, so its cross-await updates cannot race
anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..concurrency import (
    awaited_call_ids,
    find_lost_updates,
    iter_coroutines,
    walk_body,
)
from .base import LintContext, Rule, Violation
from .determinism import _import_table, _qualified

__all__ = [
    "BlockingCallRule",
    "FireAndForgetTaskRule",
    "LostUpdateRule",
    "UnboundedStreamRule",
]


def _in_async_scope(module: str) -> bool:
    return module.startswith(("service/", "gateway/", "verify/"))


class LostUpdateRule(Rule):
    """RA201: self state read-modify-written across an await (lost update)."""

    id = "RA201"
    title = "read-modify-write of shared state spans an await"
    hint = (
        "another task can interleave at the await and its update is lost; "
        "re-read the attribute after awaiting, mutate it inside one await-free "
        "segment, or route the update through the single-writer actor"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(("service/", "gateway/"))

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for coroutine in iter_coroutines(ctx.tree):
            if "actor" in coroutine.name.lower():
                continue  # the single writer owns its state across awaits
            for finding in find_lost_updates(coroutine):
                yield self.violation(
                    ctx,
                    finding.node,
                    f"coroutine {coroutine.name!r} writes {finding.path} from a "
                    f"value read on line {finding.read_line}, with await(s) in "
                    f"between — a concurrent update in the gap is silently lost",
                )


#: module-level callables that block the event loop, via import aliases
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: method names that block when called synchronously on their usual
#: receivers (Popen, sockets, sync file objects); awaited calls — the
#: StreamReader/StreamWriter versions — are exempt
_BLOCKING_METHODS = frozenset(
    {"wait", "communicate", "readline", "readlines", "readuntil", "recv", "accept",
     "sendall", "connect"}
)


class BlockingCallRule(Rule):
    """RA202: a blocking call on the event loop inside a coroutine."""

    id = "RA202"
    title = "blocking call inside a coroutine"
    hint = (
        "the event loop (every connection, the actor, the metrics task) stalls "
        "for the call's duration; use the async equivalent (asyncio.sleep, "
        "StreamReader) or push it off-loop with await asyncio.to_thread(...)"
    )

    def applies_to(self, module: str) -> bool:
        return _in_async_scope(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        table = _import_table(ctx.tree)
        for coroutine in iter_coroutines(ctx.tree):
            awaited = awaited_call_ids(coroutine)
            for node in walk_body(coroutine):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                qualified = _qualified(func, table)
                if qualified in _BLOCKING_CALLS:
                    yield self.violation(
                        ctx,
                        node,
                        f"coroutine {coroutine.name!r} calls {qualified}(), "
                        f"blocking the event loop",
                    )
                    continue
                if (
                    isinstance(func, ast.Name)
                    and func.id == "open"
                    and func.id not in table
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"coroutine {coroutine.name!r} calls open(): synchronous "
                        f"file I/O blocks the event loop",
                    )
                    continue
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _BLOCKING_METHODS
                    and id(node) not in awaited
                    and qualified is None  # asyncio.wait(...) etc resolve above
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"coroutine {coroutine.name!r} calls .{func.attr}() without "
                        f"await — on a Popen/socket/file object this blocks the "
                        f"event loop",
                    )


class FireAndForgetTaskRule(Rule):
    """RA203: a created task nobody retains, awaits, or observes."""

    id = "RA203"
    title = "fire-and-forget create_task"
    hint = (
        "keep a reference (the event loop holds tasks only weakly — a "
        "garbage-collected task silently disappears mid-flight) and either "
        "await it or attach a done-callback so its exceptions surface"
    )

    def applies_to(self, module: str) -> bool:
        return _in_async_scope(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            qualified = _qualified(call.func, table)
            spawner = qualified in ("asyncio.create_task", "asyncio.ensure_future")
            if not spawner and isinstance(call.func, ast.Attribute):
                receiver = call.func.value
                # loop.create_task / get_event_loop().create_task — but not
                # TaskGroup.create_task, which owns its children
                spawner = call.func.attr == "create_task" and (
                    isinstance(receiver, ast.Name) and receiver.id.endswith("loop")
                )
            if spawner:
                yield self.violation(
                    ctx,
                    node,
                    "task created and immediately dropped: its result, its "
                    "exceptions, and (under GC pressure) the task itself are lost",
                )


#: stream factories whose default ``limit`` is 64 KiB
_LIMIT_FACTORIES = frozenset({"asyncio.open_connection", "asyncio.start_server"})


class UnboundedStreamRule(Rule):
    """RA204: a StreamReader created without an explicit limit override."""

    id = "RA204"
    title = "stream created without an explicit limit"
    hint = (
        "pass limit= explicitly (MAX_LINE_BYTES / SHARD_MAX_LINE_BYTES): the "
        "asyncio default is 64 KiB and readline()/readuntil() raise on any "
        "longer line, killing the connection on legitimate large payloads"
    )

    def applies_to(self, module: str) -> bool:
        return _in_async_scope(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        table = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualified(node.func, table)
            if qualified not in _LIMIT_FACTORIES:
                continue
            if any(keyword.arg == "limit" for keyword in node.keywords):
                continue
            yield self.violation(
                ctx,
                node,
                f"{qualified}() without limit=: readline() on the resulting "
                f"stream fails at the 64 KiB default",
            )
