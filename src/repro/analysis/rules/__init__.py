"""The domain lint rules, RA001 … RA009 and RA201 … RA204.

Every rule carries an ID, a fix hint, and a scope; ``docs/analysis.md``
documents each one with its rationale and an example.  Suppress a
finding per line with ``# repro: noqa`` (all rules) or
``# repro: noqa: RA001,RA003`` (specific rules) — an unknown ID in a
pragma is itself a finding (RA010).
"""

from __future__ import annotations

from .base import LintContext, Rule, Violation, in_hot_path, in_simulation
from .boundaries import OutcomeContractRule, SlotTreeInternalsRule
from .concurrency import (
    BlockingCallRule,
    FireAndForgetTaskRule,
    LostUpdateRule,
    UnboundedStreamRule,
)
from .determinism import UnseededRandomRule, WallClockRule
from .performance import FrontOfListRule, SortInLoopRule
from .service import ActorBoundaryRule
from .time_arith import FloatTimeEqualityRule, FloatTimeModuloRule

__all__ = [
    "ALL_RULES",
    "LintContext",
    "Rule",
    "Violation",
    "in_hot_path",
    "in_simulation",
]

#: registry, in ID order; the lint runner applies every applicable rule
ALL_RULES: tuple[Rule, ...] = (
    FrontOfListRule(),
    SortInLoopRule(),
    FloatTimeModuloRule(),
    FloatTimeEqualityRule(),
    WallClockRule(),
    UnseededRandomRule(),
    SlotTreeInternalsRule(),
    OutcomeContractRule(),
    ActorBoundaryRule(),
    LostUpdateRule(),
    BlockingCallRule(),
    FireAndForgetTaskRule(),
    UnboundedStreamRule(),
)
