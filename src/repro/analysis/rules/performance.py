"""Rules guarding the algorithmic complexity of the hot path.

``RA001`` and ``RA002`` target the two accidental-``O(N)`` patterns that
have actually appeared in this codebase (both fixed by the PR that
introduced this linter): popping/inserting at the front of a Python list
shifts every element, and sorting inside a loop turns an ``O(N log N)``
pass into ``O(N^2 log N)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import LintContext, Rule, Violation, in_hot_path

__all__ = ["FrontOfListRule", "SortInLoopRule"]


class FrontOfListRule(Rule):
    """RA001: ``seq.pop(0)`` / ``seq.insert(0, …)`` shift the whole list.

    Applies everywhere: a front-of-list shift is never the right tool —
    use :class:`collections.deque`, ``heapq``, an index walk, or a sliced
    ``del`` — and the ones that start in cold code migrate into hot loops.
    """

    id = "RA001"
    title = "front-of-list pop/insert is O(N)"
    hint = (
        "use collections.deque.popleft(), heapq, an index walk with a single "
        "sliced `del seq[:n]`, or iterate in reverse"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            args = node.args
            zero_first = (
                bool(args)
                and isinstance(args[0], ast.Constant)
                and args[0].value == 0
                and not isinstance(args[0].value, bool)
            )
            if attr == "pop" and len(args) == 1 and zero_first:
                yield self.violation(
                    ctx, node, "pop(0) shifts every remaining element (O(N) per call)"
                )
            elif attr == "insert" and len(args) == 2 and zero_first:
                yield self.violation(
                    ctx, node, "insert(0, ...) shifts every existing element (O(N) per call)"
                )


class SortInLoopRule(Rule):
    """RA002: ``sorted()`` / ``.sort()`` inside a loop body, hot path only.

    The slot-tree and calendar code maintain order incrementally
    (``bisect``/``insort``, partial rebuilds); re-sorting inside a loop
    is how an ``O((log N)^2)`` search quietly becomes ``O(N log N)`` per
    request.  Comprehensions do not count as loops — a single sort over a
    freshly built list is the idiomatic fast path.
    """

    id = "RA002"
    title = "sort inside a loop"
    hint = (
        "hoist the sort out of the loop, or maintain order incrementally "
        "with bisect/insort (see TwoDimTree's secondary arrays)"
    )

    def applies_to(self, module: str) -> bool:
        return in_hot_path(module)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        loops: list[ast.For | ast.While] = [
            n for n in ast.walk(ctx.tree) if isinstance(n, (ast.For, ast.While))
        ]
        seen: set[int] = set()  # nested loops walk the same calls twice
        for loop in loops:
            for node in ast.walk(loop):
                if node is loop or id(node) in seen:
                    continue
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    seen.add(id(node))
                    yield self.violation(ctx, node, "sorted() called inside a loop body")
                elif isinstance(func, ast.Attribute) and func.attr == "sort":
                    seen.add(id(node))
                    yield self.violation(ctx, node, ".sort() called inside a loop body")
