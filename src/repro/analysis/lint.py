"""The lint runner: parse, scope, check, suppress, report.

The pass is file-oriented: each ``.py`` file is parsed once and every
rule whose scope matches the file's package-relative path runs over the
AST.  Reports come in two shapes — human text (one line per finding plus
the fix hint) and JSON (``--format json``), the latter uploaded as a CI
artifact.

Per-line suppression uses the ``# repro: noqa`` pragma::

    busy.pop(0)              # repro: noqa: RA001  -- measured: N <= 4 here
    t = now % tau            # repro: noqa         -- suppresses every rule

A bare pragma silences all rules on that line; listing IDs silences only
those.  A pragma naming an ID no engine can report (a typo'd
``RA0001``, a retired rule) is itself a finding — ``RA010`` — because a
suppression that suppresses nothing is a latent bug that resurfaces the
moment someone "fixes" the typo.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .audit import AUDIT_CHECK_IDS
from .rules import ALL_RULES, LintContext, Rule, Violation

__all__ = ["KNOWN_RULE_IDS", "LintReport", "lint_paths", "lint_source", "module_path"]

#: matches ``# repro: noqa`` with an optional rule list
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\s*[:,]?\s*(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
)

#: every RA id some engine can report: the lint rules themselves, the
#: runner's own RA000 (syntax) and RA010 (bad pragma), the structural
#: audit checks, and the protocol-conformance rules
KNOWN_RULE_IDS: frozenset[str] = (
    frozenset(rule.id for rule in ALL_RULES)
    | {"RA000", "RA010", "RA205", "RA206"}
    | AUDIT_CHECK_IDS
)

#: directories never linted when walking a tree
_SKIP_DIRS = frozenset({"__pycache__", ".git", "build", "dist"})


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run over a set of files."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_text(self) -> str:
        if not self.violations:
            return f"lint: {self.files_checked} file(s) clean"
        lines = []
        for v in self.violations:
            lines.append(str(v))
            lines.append(f"    hint: {v.hint}")
        lines.append(f"lint: {len(self.violations)} violation(s) in {self.files_checked} file(s)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
            "ok": self.ok,
        }


def module_path(path: str | Path) -> str:
    """Normalize ``path`` to the package-relative form rules scope on.

    The segment after the last ``repro`` path component is used, so
    ``src/repro/core/calendar.py`` and an installed
    ``…/site-packages/repro/core/calendar.py`` both scope as
    ``core/calendar.py``.  Paths outside the package keep their file
    name, which leaves them in the all-modules scope only.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            return "/".join(parts[i + 1 :])
    return Path(path).name


def _suppressed_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions: ``None`` means all rules, else the listed IDs."""
    table: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = frozenset(r.strip() for r in rules.split(","))
    return table


def _pragma_violations(source: str, path: str) -> list[Violation]:
    """RA010: noqa pragmas naming rule IDs nothing can ever report."""
    found: list[Violation] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None or match.group("rules") is None:
            continue
        unknown = sorted(
            r.strip()
            for r in match.group("rules").split(",")
            if r.strip() not in KNOWN_RULE_IDS
        )
        if unknown:
            found.append(
                Violation(
                    rule_id="RA010",
                    path=path,
                    line=lineno,
                    col=match.start(),
                    message=(
                        f"noqa pragma names unknown rule id(s) "
                        f"{', '.join(unknown)} — it suppresses nothing"
                    ),
                    hint=(
                        "use an existing RA id (see docs/analysis.md) or drop "
                        "the pragma; a bare '# repro: noqa' suppresses all rules"
                    ),
                )
            )
    return found


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Violation]:
    """Lint one module's source text.

    ``module`` overrides the scoping path (tests lint fixture text as if
    it lived at, say, ``core/fixture.py``); by default it is derived from
    ``path``.
    """
    scope = module if module is not None else module_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id="RA000",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error; nothing else can be checked",
            )
        ]
    ctx = LintContext(path=path, module=scope, tree=tree, source=source)
    suppressed = _suppressed_lines(source)
    found: list[Violation] = []
    seen: set[tuple[str, int, int, str]] = set()

    def admit(violation: Violation) -> None:
        key = (violation.rule_id, violation.line, violation.col, violation.message)
        if key in seen:
            return
        seen.add(key)
        if violation.line in suppressed:
            pragma = suppressed[violation.line]
            if pragma is None or violation.rule_id in pragma:
                return
        found.append(violation)

    for rule in rules:
        if not rule.applies_to(scope):
            continue
        for violation in rule.check(ctx):
            admit(violation)
    for violation in _pragma_violations(source, path):
        admit(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return found


def _iter_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.endswith(".egg-info") for part in sub.parts):
                    continue
                files.append(sub)
        else:
            files.append(p)
    return files


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] = ALL_RULES
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    report = LintReport()
    for file in _iter_files(paths):
        source = file.read_text(encoding="utf-8")
        report.files_checked += 1
        report.violations.extend(lint_source(source, path=str(file), rules=rules))
    return report
