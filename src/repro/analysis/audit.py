"""Deep structural invariant audits for the core data structures.

This module is the machine-checked statement of what "correct" means for
the calendar machinery — the enhanced red-black-tree literature's lesson
is that reservation data structures live or die by exactly these checks.
Every invariant carries a stable ID so tests (and humans reading a CI
report) can tell a corrupted size field from a desynchronized secondary
index:

Per-tree (``audit_tree``):

* ``RA101`` — every node's ``size`` equals the leaves below it;
* ``RA102`` — every internal split key bounds its subtrees
  (``max(left) <= key < min(right)``);
* ``RA103`` — leaves appear in ascending ``(st, uid)`` order and each
  leaf's key matches its period;
* ``RA104`` — every secondary index (``sec_keys``) is sorted ascending;
* ``RA105`` — the per-tree uid map is a bijection onto the stored
  periods (same uids, identical objects, no strays);
* ``RA106`` — every node's secondary key set equals the ``(et, uid)``
  keys of the leaves below it (primary/secondary leaf-set equality);
* ``RA107`` — parent/child pointers are mutually consistent and the
  root has no parent;
* ``RA108`` — every internal node is α-weight-balanced.

Cross-calendar (``audit_calendar``, which also audits every slot tree):

* ``RA111`` — per-server idle periods are sorted, pairwise disjoint,
  carry the right server id, and the bisect key arrays mirror them;
* ``RA112`` — every bounded period is indexed in exactly the slot trees
  it overlaps (and unbounded ones never leak into trees in tail mode);
* ``RA113`` — the pending set, its slot map, and its rollover buckets
  agree, and every pending period really ends beyond the horizon;
* ``RA115`` — the tail index is sorted, its parallel arrays agree, and
  it holds exactly the live unbounded periods.

Conservation (``RA114``) needs to know what was allocated, so it lives
in :class:`MutationAuditor`: attach one to a calendar and every
``allocate``/``release``/``advance`` is followed (every ``stride``-th
mutation) by a full audit plus a ledger check that idle periods and
committed reservations exactly tile each server's timeline — no idle
time lost, none double-booked.

The core ``validate()`` methods delegate here; :exc:`AuditError`
subclasses :exc:`AssertionError` so existing callers keep working.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Callable

from ..core._kernel import NIL
from ..core.slot_tree import ALPHA
from ..core.types import INF, IdlePeriod, Reservation

if TYPE_CHECKING:  # imported lazily at runtime to keep core import-light
    from ..core.calendar import AvailabilityCalendar
    from ..core.slot_tree import TwoDimTree

__all__ = [
    "AUDIT_CHECK_IDS",
    "AuditError",
    "AuditFinding",
    "MutationAuditor",
    "audit_calendar",
    "audit_tree",
    "corrupt_secondary_key",
    "corrupt_size_field",
    "corrupt_uid_map",
]

#: every check id the audit engine can report (documented above and in
#: ``docs/analysis.md``); the lint pass treats these as known RA ids
AUDIT_CHECK_IDS = frozenset(
    {
        "RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107", "RA108",
        "RA111", "RA112", "RA113", "RA114", "RA115",
    }
)


class AuditFinding:
    """One violated invariant, locatable and machine-readable."""

    __slots__ = ("check_id", "location", "message")

    def __init__(self, check_id: str, location: str, message: str) -> None:
        self.check_id = check_id
        self.location = location
        self.message = message

    def to_dict(self) -> dict[str, str]:
        return {
            "check": self.check_id,
            "location": self.location,
            "message": self.message,
        }

    def __repr__(self) -> str:
        return f"{self.check_id} @ {self.location}: {self.message}"


class AuditError(AssertionError):
    """Raised when an audit finds violated invariants.

    Subclasses :exc:`AssertionError` so the pre-existing ``validate()``
    contract (and every test written against it) is preserved.
    """

    def __init__(self, findings: list[AuditFinding]) -> None:
        self.findings = findings
        summary = "; ".join(repr(f) for f in findings[:5])
        extra = f" (+{len(findings) - 5} more)" if len(findings) > 5 else ""
        super().__init__(f"{len(findings)} invariant violation(s): {summary}{extra}")


# ----------------------------------------------------------------------
# per-tree audits
# ----------------------------------------------------------------------


def audit_tree(tree: "TwoDimTree", label: str = "tree") -> list[AuditFinding]:
    """Audit one slot tree; returns findings (empty == every invariant holds).

    Reads the array layout directly: the tree's
    :class:`~repro.core._kernel.TreeKernel` stores nodes as integer ids
    into parallel ``keys``/``size``/``left``/``right``/``parent``/``secs``
    arrays (``left[i] == NIL`` marks a leaf), and period objects are
    resolved through the wrapper's uid map — so the leaf-key checks
    (RA103/RA106) validate against ``by_uid`` rather than a per-leaf
    period pointer, and RA105 additionally ties the kernel's cached
    ``count`` to the actual leaf population.
    """
    findings: list[AuditFinding] = []
    kernel = tree._kernel
    by_uid = tree._by_uid
    keys: list[tuple[float, int]] = kernel.keys
    size: list[int] = kernel.size
    left: list[int] = kernel.left
    right: list[int] = kernel.right
    parent: list[int] = kernel.parent
    secs: list[list[tuple[float, int]]] = kernel.secs
    root: int = kernel.root
    if root == NIL:
        if by_uid:
            findings.append(
                AuditFinding(
                    "RA105",
                    label,
                    f"uid map retains {len(by_uid)} entrie(s) for an empty tree",
                )
            )
        if kernel.count != 0:
            findings.append(
                AuditFinding("RA101", label, f"empty tree caches count {kernel.count}")
            )
        return findings
    if parent[root] != NIL:
        findings.append(AuditFinding("RA107", label, "root has a parent pointer"))

    leaf_keys: list[tuple[float, int]] = []

    def check(node: int) -> tuple[int, tuple[float, int], tuple[float, int]]:
        """Returns (size, min_key, max_key) of the subtree; appends findings."""
        where = f"{label}/node@key={keys[node]}"
        lc = left[node]
        rc = right[node]
        if lc == NIL:  # leaf
            leaf_keys.append(keys[node])
            if rc != NIL:
                findings.append(AuditFinding("RA107", where, "leaf has a right child"))
            if size[node] != 1:
                findings.append(
                    AuditFinding("RA101", where, f"leaf size {size[node]} != 1")
                )
            uid = keys[node][1]
            period = by_uid.get(uid)
            if period is None:
                findings.append(
                    AuditFinding(
                        "RA105", where, f"uid {uid} stored in tree but absent from uid map"
                    )
                )
            else:
                expected_key = (period.st, period.uid)
                if keys[node] != expected_key:
                    findings.append(
                        AuditFinding(
                            "RA103",
                            where,
                            f"leaf key {keys[node]} != period key {expected_key}",
                        )
                    )
                expected_sec = [(period.et, period.uid)]
                if secs[node] != expected_sec:
                    findings.append(
                        AuditFinding(
                            "RA106",
                            where,
                            f"leaf sec keys {secs[node]} != {expected_sec}",
                        )
                    )
            return 1, keys[node], keys[node]
        if rc == NIL:
            findings.append(AuditFinding("RA107", where, "internal node missing a child"))
            return size[node], keys[node], keys[node]
        for child, side in ((lc, "left"), (rc, "right")):
            if parent[child] != node:
                findings.append(
                    AuditFinding(
                        "RA107", where, f"{side} child's parent pointer does not point back"
                    )
                )
        ls, lmin, lmax = check(lc)
        rs, rmin, rmax = check(rc)
        if size[node] != ls + rs:
            findings.append(
                AuditFinding(
                    "RA101", where, f"size {size[node]} != left {ls} + right {rs}"
                )
            )
        if not (lmax <= keys[node] < rmin):
            findings.append(
                AuditFinding(
                    "RA102",
                    where,
                    f"split key violates max(left)={lmax} <= key < min(right)={rmin}",
                )
            )
        limit = ALPHA * (ls + rs)
        if ls > limit or rs > limit:
            findings.append(
                AuditFinding(
                    "RA108",
                    where,
                    f"weight balance violated: |left|={ls}, |right|={rs}, "
                    f"alpha*size={limit:.1f}",
                )
            )
        sec = secs[node]
        if any(sec[i] > sec[i + 1] for i in range(len(sec) - 1)):
            findings.append(AuditFinding("RA104", where, "sec keys not sorted ascending"))
        expected = sorted(secs[lc] + secs[rc])
        if sorted(sec) != expected:
            findings.append(
                AuditFinding(
                    "RA106",
                    where,
                    "sec keys do not hold exactly the children's (et, uid) keys",
                )
            )
        return ls + rs, lmin, rmax

    check(root)

    # leaves were collected left-to-right; verify global ordering
    for a, b in zip(leaf_keys, leaf_keys[1:]):
        if a >= b:
            findings.append(
                AuditFinding(
                    "RA103",
                    label,
                    f"leaves out of order: {a} before {b}",
                )
            )
            break

    # the kernel's cached population vs the actual leaf count
    if kernel.count != len(leaf_keys):
        findings.append(
            AuditFinding(
                "RA101",
                label,
                f"kernel caches count {kernel.count} but the tree holds {len(leaf_keys)} leaves",
            )
        )

    # uid-map bijection (identity holds by construction: periods are only
    # reachable through the map, so membership equality is the whole check)
    leaf_uids = {key[1] for key in leaf_keys}
    for uid in by_uid:
        if uid not in leaf_uids:
            findings.append(
                AuditFinding("RA105", label, f"uid map holds stray uid {uid} with no leaf")
            )
    return findings


# ----------------------------------------------------------------------
# cross-calendar audits
# ----------------------------------------------------------------------


def audit_calendar(cal: "AvailabilityCalendar") -> list[AuditFinding]:
    """Audit the whole calendar: every slot tree plus the cross-structure
    invariants tying per-server lists, trees, tail index and pending set
    together."""
    findings: list[AuditFinding] = []

    # RA111: authoritative per-server lists and their bisect key arrays
    for server, periods in enumerate(cal._server_periods):
        where = f"server {server}"
        if cal._status[server] == "removed" and periods:
            findings.append(
                AuditFinding(
                    "RA111", where, f"removed server still lists {len(periods)} period(s)"
                )
            )
        for a, b in zip(periods, periods[1:]):
            if a.et > b.st:
                findings.append(
                    AuditFinding("RA111", where, f"idle periods overlap: {a} / {b}")
                )
        for p in periods:
            if p.server != server:
                findings.append(
                    AuditFinding("RA111", where, f"period {p} carries server {p.server}")
                )
        if cal._server_keys[server] != [p.st for p in periods]:
            findings.append(
                AuditFinding("RA111", where, "key array out of sync with period list")
            )

    # per-tree structural audits + collect where every uid is indexed
    indexed: dict[int, set[int]] = {}
    for q, tree in cal._trees.items():
        findings.extend(audit_tree(tree, label=f"slot {q}"))
        lo, hi = q * cal.tau, (q + 1) * cal.tau
        # resolve stored uids defensively: a corrupted uid map (missing
        # entry) is already reported as RA105 by audit_tree and must not
        # abort the remaining cross-structure checks
        stored = (tree._by_uid.get(uid) for uid in tree._kernel.uids_inorder())
        for p in stored:
            if p is None:
                continue
            if cal._status[p.server] != "active":
                findings.append(
                    AuditFinding(
                        "RA112",
                        f"slot {q}",
                        f"period {p} of {cal._status[p.server]} server "
                        f"{p.server} indexed in a slot tree",
                    )
                )
            if not cal.dense and p.et == INF:
                findings.append(
                    AuditFinding(
                        "RA112", f"slot {q}", f"unbounded period {p} leaked into a slot tree"
                    )
                )
            if not p.overlaps(lo, hi):
                findings.append(
                    AuditFinding(
                        "RA112", f"slot {q}", f"period {p} indexed in a non-overlapping slot"
                    )
                )
            indexed.setdefault(p.uid, set()).add(q)

    # RA115: the tail index over unbounded periods
    if any(cal._inf_keys[i] > cal._inf_keys[i + 1] for i in range(len(cal._inf_keys) - 1)):
        findings.append(AuditFinding("RA115", "tail index", "keys out of order"))
    if [(p.st, p.uid) for p in cal._inf_periods] != list(cal._inf_keys):
        findings.append(
            AuditFinding("RA115", "tail index", "key array and period array disagree")
        )
    tail_uids = {p.uid for p in cal._inf_periods}
    all_periods = {p.uid: p for periods in cal._server_periods for p in periods}
    for uid in tail_uids:
        if uid not in all_periods:
            findings.append(
                AuditFinding("RA115", "tail index", f"stale period uid {uid} not live anywhere")
            )

    # RA115 continued: the tail index must hold only active servers'
    # trailing periods — a draining server left every derived index
    for p in cal._inf_periods:
        if cal._status[p.server] != "active":
            findings.append(
                AuditFinding(
                    "RA115",
                    "tail index",
                    f"trailing period {p} of {cal._status[p.server]} server "
                    f"{p.server} still indexed",
                )
            )

    # RA112 continued: every live period of an *active* server indexed in
    # exactly its overlapping slots; RA115: every unbounded period present
    # in the tail index.  Draining servers' periods must appear in no
    # derived index at all (their tree/tail presence is flagged above).
    for p in all_periods.values():
        if cal._status[p.server] != "active":
            if indexed.get(p.uid):
                findings.append(
                    AuditFinding(
                        "RA112",
                        f"server {p.server}",
                        f"period {p} of a {cal._status[p.server]} server indexed "
                        f"in slots {sorted(indexed[p.uid])}",
                    )
                )
            if p.uid in cal._pending:
                findings.append(
                    AuditFinding(
                        "RA113",
                        f"server {p.server}",
                        f"period {p} of a {cal._status[p.server]} server still "
                        "in the pending set",
                    )
                )
            continue
        if p.et == INF:
            if p.uid not in tail_uids:
                findings.append(
                    AuditFinding(
                        "RA115", f"server {p.server}", f"trailing period {p} missing from tail index"
                    )
                )
            if not cal.dense:
                continue
        expected = set(cal._overlapping_slots(p))
        got = indexed.get(p.uid, set())
        if got != expected:
            findings.append(
                AuditFinding(
                    "RA112",
                    f"server {p.server}",
                    f"period {p} indexed in slots {sorted(got)} but overlaps {sorted(expected)}",
                )
            )
        if p.et != INF and p.et > cal.horizon_end and p.uid not in cal._pending:
            findings.append(
                AuditFinding(
                    "RA113", f"server {p.server}", f"period {p} missing from the pending set"
                )
            )

    # RA113: pending set / slot map / rollover buckets agree
    first_inactive = cal._base_slot + cal.q_slots
    for uid, p in cal._pending.items():
        where = f"pending uid {uid}"
        if p.et <= cal.horizon_end:
            findings.append(
                AuditFinding("RA113", where, f"pending period {p} ends inside the horizon")
            )
        if uid not in all_periods:
            findings.append(AuditFinding("RA113", where, f"pending period {p} is not live"))
        bucket_slot = cal._pending_slot.get(uid)
        expected_slot = max(cal.slot_of(p.st), first_inactive)
        if bucket_slot != expected_slot:
            findings.append(
                AuditFinding(
                    "RA113",
                    where,
                    f"bucketed at slot {bucket_slot}, expected first-overlap slot {expected_slot}",
                )
            )
        if bucket_slot is None or cal._pending_buckets.get(bucket_slot, {}).get(uid) is not p:
            findings.append(
                AuditFinding("RA113", where, "bucket membership does not match the pending set")
            )
    bucketed = {uid for bucket in cal._pending_buckets.values() for uid in bucket}
    if bucketed != set(cal._pending):
        findings.append(
            AuditFinding("RA113", "pending buckets", "bucket contents out of sync with pending set")
        )
    if set(cal._pending_slot) != set(cal._pending):
        findings.append(
            AuditFinding("RA113", "pending slots", "slot map out of sync with pending set")
        )
    return findings


# ----------------------------------------------------------------------
# conservation auditing across mutations
# ----------------------------------------------------------------------


class MutationAuditor:
    """Audits a calendar after every (``stride``-th) mutation.

    Wraps the calendar's ``allocate``/``release``/``advance`` (and the
    elastic-pool ``add_servers``/``remove``) instance
    methods; each committed reservation is recorded in a per-server busy
    ledger so the conservation invariant (``RA114``) is checkable: after
    every mutation, each server's idle periods and recorded busy
    intervals must exactly tile its timeline from the horizon start to
    infinity — idle time is neither lost nor double-booked by
    ``allocate``/``release``.

    Attach to a freshly built calendar (before any allocation) or the
    ledger starts incomplete.  ``stride`` trades coverage for speed: 1
    audits every mutation (the ``repro check --audit`` setting), larger
    values sample (the ``REPRO_AUDIT=1`` replay default).  Audits raise
    :exc:`AuditError` on the first violated invariant.
    """

    def __init__(
        self,
        calendar: "AvailabilityCalendar",
        stride: int = 1,
        conservation: bool = True,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.calendar = calendar
        self.stride = stride
        self.conservation = conservation
        self.mutations = 0
        self.audits_run = 0
        self._busy: list[list[tuple[float, float]]] = [
            [] for _ in range(calendar.n_servers)
        ]
        self._orig_allocate = calendar.allocate
        self._orig_release = calendar.release
        self._orig_advance = calendar.advance
        self._orig_add_servers = calendar.add_servers
        self._orig_remove = calendar.remove
        calendar.allocate = self._allocate  # type: ignore[method-assign]
        calendar.release = self._release  # type: ignore[method-assign]
        calendar.advance = self._advance  # type: ignore[method-assign]
        calendar.add_servers = self._add_servers  # type: ignore[method-assign]
        calendar.remove = self._remove  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the calendar's unwrapped methods."""
        cal = self.calendar
        for name in ("allocate", "release", "advance", "add_servers", "remove"):
            if name in cal.__dict__:
                del cal.__dict__[name]

    # -- wrapped mutations ---------------------------------------------

    def _allocate(
        self, periods: list[IdlePeriod], start: float, end: float, rid: int = 0
    ) -> list[Reservation]:
        reservations = self._orig_allocate(periods, start, end, rid=rid)
        for res in reservations:
            insort(self._busy[res.server], (res.start, res.end))
        self._after_mutation()
        return reservations

    def _release(self, server: int, start: float, end: float) -> None:
        self._orig_release(server, start, end)
        self._subtract_busy(server, start, end)
        self._after_mutation()

    def _advance(self, to_time: float) -> None:
        self._orig_advance(to_time)
        self._after_mutation()

    def _add_servers(self, count: int, uids: list[int] | None = None) -> list[int]:
        new_ids = self._orig_add_servers(count, uids)
        # a joined server's ledger starts empty: its timeline begins at
        # its trailing idle period's start, so tiling holds from day one
        for _ in new_ids:
            self._busy.append([])
        self._after_mutation()
        return new_ids

    def _remove(self, server: int) -> bool:
        changed = self._orig_remove(server)
        if changed:
            # the calendar verified the server was drained; its ledger is
            # history-only now and the server is exempt from tiling
            self._busy[server] = []
        self._after_mutation()
        return changed

    def _subtract_busy(self, server: int, start: float, end: float) -> None:
        """Remove ``[start, end)`` from the recorded busy intervals."""
        out: list[tuple[float, float]] = []
        for lo, hi in self._busy[server]:
            if hi <= start or lo >= end:  # disjoint
                out.append((lo, hi))
                continue
            if lo < start:
                out.append((lo, start))
            if end < hi:
                out.append((end, hi))
        self._busy[server] = out

    # -- auditing -------------------------------------------------------

    def _after_mutation(self) -> None:
        self.mutations += 1
        if self.mutations % self.stride == 0:
            self.audit_now()

    def audit_now(self) -> None:
        """Run the full structural + conservation audit; raise on findings."""
        self.audits_run += 1
        findings = audit_calendar(self.calendar)
        if self.conservation:
            findings.extend(self.conservation_findings())
        if findings:
            raise AuditError(findings)

    def conservation_findings(self) -> list[AuditFinding]:
        """RA114: idle periods + recorded busy intervals tile each server's
        timeline exactly, from the trim cutoff (horizon start) to infinity.

        Elastic-pool aware: a server that joined mid-run tiles from its
        join time (its ledger and idle list both start there — the
        pairwise-continuity check needs no explicit start bound), a
        draining server tiles like any other (its commitments are still
        honored), and a removed server is exempt (its timeline ended).
        """
        findings: list[AuditFinding] = []
        cal = self.calendar
        cutoff = cal.horizon_start
        # drain/remove may race an attach-time sizing in external callers;
        # grow defensively so a late-joined server is always ledgered
        while len(self._busy) < cal.n_servers:
            self._busy.append([])
        for server in range(cal.n_servers):
            where = f"server {server}"
            if cal._status[server] == "removed":
                continue
            # prune intervals the calendar itself has trimmed away
            busy = [iv for iv in self._busy[server] if iv[1] > cutoff]
            self._busy[server] = busy
            segments = [
                (max(p.st, cutoff), p.et, "idle") for p in cal._server_periods[server] if p.et > cutoff
            ] + [(max(lo, cutoff), hi, "busy") for lo, hi in busy]
            segments.sort()
            if not segments:
                findings.append(
                    AuditFinding("RA114", where, "timeline empty: no idle or busy coverage")
                )
                continue
            for (alo, ahi, akind), (blo, bhi, bkind) in zip(segments, segments[1:]):
                if ahi > blo:
                    findings.append(
                        AuditFinding(
                            "RA114",
                            where,
                            f"{akind} [{alo}, {ahi}) overlaps {bkind} [{blo}, {bhi}) "
                            "(idle time double-booked)",
                        )
                    )
                elif ahi < blo:
                    findings.append(
                        AuditFinding(
                            "RA114",
                            where,
                            f"gap [{ahi}, {blo}) between {akind} and {bkind} segments "
                            "(idle time lost)",
                        )
                    )
            if segments[-1][1] != INF:
                findings.append(
                    AuditFinding(
                        "RA114",
                        where,
                        f"timeline ends at {segments[-1][1]}: the trailing idle "
                        "period (et=inf) is missing",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# deliberate corruption (self-tests and `repro check --inject`)
# ----------------------------------------------------------------------


def _pick_tree(
    cal: "AvailabilityCalendar", want: Callable[["TwoDimTree"], bool]
) -> "TwoDimTree":
    for tree in cal._trees.values():
        if want(tree):
            return tree
    raise LookupError("no slot tree in the calendar satisfies the corruption's needs")


def corrupt_size_field(cal: "AvailabilityCalendar") -> str:
    """Break a size field; the audit must report RA101."""
    tree = _pick_tree(cal, lambda t: len(t) >= 2)
    kernel = tree._kernel
    assert kernel.root != NIL
    kernel.size[kernel.root] += 1
    return (
        f"incremented root size to {kernel.size[kernel.root]} in a tree of "
        f"{len(kernel.secs[kernel.root])} leaves"
    )


def corrupt_secondary_key(cal: "AvailabilityCalendar") -> str:
    """Drift a secondary key; the audit must report RA106 (and usually RA104)."""
    tree = _pick_tree(cal, lambda t: len(t) >= 2)
    kernel = tree._kernel
    sec = kernel.secs[kernel.root]
    assert kernel.root != NIL and sec
    et, uid = sec[0]
    sec[0] = (et + 1.0, uid)
    return f"drifted secondary key of uid {uid} from et={et} to et={et + 1.0}"


def corrupt_uid_map(cal: "AvailabilityCalendar") -> str:
    """Drop a uid-map entry; the audit must report RA105."""
    tree = _pick_tree(cal, lambda t: len(t) >= 1)
    uid = next(iter(tree._by_uid))
    del tree._by_uid[uid]
    return f"removed uid {uid} from the tree's uid map"


#: corruption kinds exposed by ``repro check --inject``, mapped to the
#: audit check each one must trip
CORRUPTIONS: dict[str, tuple[Callable[["AvailabilityCalendar"], str], str]] = {
    "size": (corrupt_size_field, "RA101"),
    "seckey": (corrupt_secondary_key, "RA106"),
    "uidmap": (corrupt_uid_map, "RA105"),
}
