"""Domain-aware static analysis and structural invariant auditing.

Two engines guard the correctness of the co-allocation hot path:

* :mod:`repro.analysis.lint` — a custom AST lint pass (rules ``RA001`` …
  ``RA008``) catching the bug classes that broke, or nearly broke, the
  calendar fast path: accidental ``pop(0)`` scans, sorting inside loops,
  float modulo / equality on time values, wall-clock or unseeded
  randomness leaking into the simulator, and code reaching into slot-tree
  internals or second-guessing :class:`~repro.core.coalloc.ScheduleOutcome`.

* :mod:`repro.analysis.audit` — deep structural audits (checks ``RA101``
  … ``RA115``) over :class:`~repro.core.slot_tree.TwoDimTree` and
  :class:`~repro.core.calendar.AvailabilityCalendar`: size fields, split
  keys, leaf ordering, secondary-index synchrony, uid-map bijection,
  slot-coverage, pending-bucket bookkeeping, tail-index ordering, and
  idle-time conservation across ``allocate``/``release``.

Both are surfaced by the ``repro check`` CLI subcommand and documented in
``docs/analysis.md``.  The audit engine also backs the ``validate()``
methods of the core data structures and the ``REPRO_AUDIT`` replay mode.
"""

from .audit import (
    AuditError,
    AuditFinding,
    MutationAuditor,
    audit_calendar,
    audit_tree,
)
from .lint import LintReport, lint_paths, lint_source
from .rules import ALL_RULES, Rule, Violation

__all__ = [
    "ALL_RULES",
    "AuditError",
    "AuditFinding",
    "LintReport",
    "MutationAuditor",
    "Rule",
    "Violation",
    "audit_calendar",
    "audit_tree",
    "lint_paths",
    "lint_source",
]
