"""Domain-aware static analysis and structural invariant auditing.

Three engines guard the correctness of the co-allocation hot path:

* :mod:`repro.analysis.lint` — a custom AST lint pass catching the bug
  classes that broke, or nearly broke, the calendar fast path (rules
  ``RA001`` … ``RA009``: accidental ``pop(0)`` scans, sorting inside
  loops, float modulo / equality on time values, wall-clock or unseeded
  randomness leaking into the simulator, code reaching into slot-tree
  internals) plus the async-actor concurrency rules (``RA201`` …
  ``RA204``: awaited read-modify-write races on actor state, blocking
  calls inside coroutines, fire-and-forget tasks, unbounded stream
  reads) from :mod:`repro.analysis.rules.concurrency`.

* :mod:`repro.analysis.protocol_check` — wire-protocol conformance
  (``RA205``/``RA206``): every literal ``{"op": ...}`` send site and
  every handler table in the service is cross-checked against the
  declarative :data:`repro.service.protocol.REGISTRY`, with drift
  injections that self-test the checker.

* :mod:`repro.analysis.audit` — deep structural audits (checks ``RA101``
  … ``RA115``) over :class:`~repro.core.slot_tree.TwoDimTree` and
  :class:`~repro.core.calendar.AvailabilityCalendar`: size fields, split
  keys, leaf ordering, secondary-index synchrony, uid-map bijection,
  slot-coverage, pending-bucket bookkeeping, tail-index ordering, and
  idle-time conservation across ``allocate``/``release``.

All are surfaced by the ``repro check`` CLI subcommand (``--concurrency``
adds the protocol pass; ``--format sarif`` renders findings via
:mod:`repro.analysis.sarif`) and documented in ``docs/analysis.md``.  The
audit engine also backs the ``validate()`` methods of the core data
structures and the ``REPRO_AUDIT`` replay mode.
"""

from .audit import (
    AuditError,
    AuditFinding,
    MutationAuditor,
    audit_calendar,
    audit_tree,
)
from .lint import KNOWN_RULE_IDS, LintReport, lint_paths, lint_source
from .protocol_check import PROTOCOL_INJECTIONS, ProtocolReport, run_protocol_check
from .rules import ALL_RULES, Rule, Violation
from .sarif import render_sarif, sarif_report

__all__ = [
    "ALL_RULES",
    "AuditError",
    "AuditFinding",
    "KNOWN_RULE_IDS",
    "LintReport",
    "MutationAuditor",
    "PROTOCOL_INJECTIONS",
    "ProtocolReport",
    "Rule",
    "Violation",
    "audit_calendar",
    "audit_tree",
    "lint_paths",
    "lint_source",
    "render_sarif",
    "run_protocol_check",
    "sarif_report",
]
