"""Await-segmentation machinery behind the RA2xx concurrency rules.

An ``async def`` body is a sequence of *segments*: maximal stretches of
code with no ``await`` inside.  Within one segment the coroutine owns
the event loop — nothing else runs, reads and writes are atomic.  Every
``await`` is a suspension point where any other task may interleave, so
an invariant held across segments is an invariant held by luck.

This module turns that model into reusable analyses:

* :func:`iter_coroutines` / :func:`walk_body` — find coroutines and walk
  their *own* statements (nested ``def``/``async def`` bodies excluded:
  they run on their own schedule and get their own visit).
* :func:`awaited_call_ids` — the ``Call`` nodes that appear directly
  under an ``await`` (so ``await reader.readline()`` is fine where a
  bare ``reader.readline()`` is not).
* :func:`find_lost_updates` — the RA201 engine: a taint-tracking,
  branch-aware walk that reports a write to ``self.<attr>`` whose value
  derives from a read of the *same* attribute in an *earlier* segment.
  That exact shape — read, await, write back — is the lost-update
  hazard: another task can interleave at the await and its update is
  overwritten.  Same-segment read-modify-writes (``self.x += 1``) are
  atomic on the event loop and never flagged.

The rules themselves (scoping, messages, hints) live in
:mod:`repro.analysis.rules.concurrency`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "LostUpdate",
    "awaited_call_ids",
    "contains_await",
    "find_lost_updates",
    "iter_coroutines",
    "self_attribute_path",
    "walk_body",
]


def iter_coroutines(tree: ast.AST) -> Iterator[ast.AsyncFunctionDef]:
    """Every ``async def`` in the tree, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def walk_body(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """All nodes lexically in ``fn``'s own body.

    Nested function definitions (sync or async) are *not* descended
    into: a nested sync helper may legitimately block when handed to
    ``asyncio.to_thread``, and a nested coroutine is segmented on its
    own when :func:`iter_coroutines` reaches it.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def awaited_call_ids(fn: ast.AsyncFunctionDef) -> frozenset[int]:
    """``id()`` of every Call node that is the direct value of an await."""
    return frozenset(
        id(node.value)
        for node in walk_body(fn)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
    )


def contains_await(node: ast.AST) -> bool:
    """Whether any await lies lexically inside ``node`` (nested defs excluded)."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Await):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)) and current is not node:
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def self_attribute_path(node: ast.AST) -> str | None:
    """Dotted path of an attribute chain rooted at ``self`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        parts.append("self")
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True, slots=True)
class LostUpdate:
    """One RA201 finding: ``path`` read in ``read_segment``, written later."""

    node: ast.AST  # the write (for location)
    path: str  # e.g. "self.depth"
    read_line: int
    read_segment: int
    write_segment: int


# -- RA201 engine ------------------------------------------------------


@dataclass(slots=True)
class _Taint:
    """A value derived from a read of ``self.<path>`` in ``segment``."""

    path: str
    segment: int
    read_line: int


class _SegmentState:
    """Mutable walk state: the segment counter and the local-taint table."""

    def __init__(self) -> None:
        self.segment = 0
        #: local name -> taints it carries (reads of self state it derives from)
        self.taint: dict[str, list[_Taint]] = {}

    def copy(self) -> "_SegmentState":
        clone = _SegmentState()
        clone.segment = self.segment
        clone.taint = {name: list(ts) for name, ts in self.taint.items()}
        return clone

    def merge(self, other: "_SegmentState") -> None:
        """Join two branches: later segment wins, taints union (conservative)."""
        self.segment = max(self.segment, other.segment)
        for name, taints in other.taint.items():
            known = self.taint.setdefault(name, [])
            seen = {(t.path, t.segment) for t in known}
            known.extend(t for t in taints if (t.path, t.segment) not in seen)


def _expr_awaits(node: ast.AST | None) -> int:
    """Number of awaits lexically inside an expression (nested defs excluded)."""
    if node is None:
        return 0
    count = 0
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Await):
            count += 1
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return count


def _expr_self_reads(node: ast.AST | None) -> list[tuple[str, int]]:
    """Every ``self.<path>`` loaded inside an expression: (path, lineno)."""
    if node is None:
        return []
    reads: list[tuple[str, int]] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(current, ast.Attribute) and isinstance(current.ctx, ast.Load):
            path = self_attribute_path(current)
            if path is not None:
                reads.append((path, current.lineno))
                continue  # the chain is consumed whole
        stack.extend(ast.iter_child_nodes(current))
    return reads


def _expr_name_loads(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    names: set[str] = set()
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(current, ast.Name) and isinstance(current.ctx, ast.Load):
            names.add(current.id)
        stack.extend(ast.iter_child_nodes(current))
    return names


class _LostUpdateWalker:
    """Branch-aware, loop-doubling statement walk collecting RA201 findings."""

    def __init__(self) -> None:
        self.findings: dict[tuple[int, int, str], LostUpdate] = {}

    # -- expression helpers ---------------------------------------------

    def _value_taints(self, state: _SegmentState, value: ast.AST | None) -> list[_Taint]:
        """Taints a value expression carries: direct self reads + tainted names."""
        taints = [
            _Taint(path=path, segment=state.segment, read_line=line)
            for path, line in _expr_self_reads(value)
        ]
        for name in _expr_name_loads(value):
            taints.extend(state.taint.get(name, ()))
        return taints

    def _check_write(
        self, state: _SegmentState, target: ast.AST, taints: list[_Taint]
    ) -> None:
        path = self_attribute_path(target)
        if path is None:
            return
        for taint in taints:
            if taint.path == path and taint.segment < state.segment:
                key = (getattr(target, "lineno", 0), getattr(target, "col_offset", 0), path)
                self.findings.setdefault(
                    key,
                    LostUpdate(
                        node=target,
                        path=path,
                        read_line=taint.read_line,
                        read_segment=taint.segment,
                        write_segment=state.segment,
                    ),
                )
                return

    def _bind(self, state: _SegmentState, target: ast.AST, taints: list[_Taint]) -> None:
        """Record the assignment's data flow into the taint table."""
        if isinstance(target, ast.Name):
            if taints:
                state.taint[target.id] = list(taints)
            else:
                state.taint.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(state, element, taints)
        elif isinstance(target, ast.Starred):
            self._bind(state, target.value, taints)
        # attribute/subscript targets carry no local taint

    # -- statements ------------------------------------------------------

    def walk(self, state: _SegmentState, statements: list[ast.stmt]) -> None:
        for statement in statements:
            self._statement(state, statement)

    def _statement(self, state: _SegmentState, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # own scope, own schedule
        if isinstance(node, ast.Assign):
            taints = self._value_taints(state, node.value)
            state.segment += _expr_awaits(node.value)
            for target in node.targets:
                self._check_write(state, target, taints)
                self._bind(state, target, taints)
            return
        if isinstance(node, ast.AnnAssign):
            taints = self._value_taints(state, node.value)
            state.segment += _expr_awaits(node.value)
            if node.value is not None:
                self._check_write(state, node.target, taints)
                self._bind(state, node.target, taints)
            return
        if isinstance(node, ast.AugAssign):
            taints = self._value_taints(state, node.value)
            awaits = _expr_awaits(node.value)
            path = self_attribute_path(node.target)
            if path is not None and awaits:
                # ``self.x += await f()``: the old value is loaded before
                # the suspension, stored after it — a one-line lost update
                taints.append(
                    _Taint(path=path, segment=state.segment, read_line=node.lineno)
                )
            state.segment += awaits
            self._check_write(state, node.target, taints)
            if isinstance(node.target, ast.Name):
                existing = state.taint.get(node.target.id, [])
                merged = existing + [
                    t for t in taints if (t.path, t.segment) not in {
                        (e.path, e.segment) for e in existing
                    }
                ]
                if merged:
                    state.taint[node.target.id] = merged
            return
        if isinstance(node, (ast.Expr, ast.Return, ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                state.segment += _expr_awaits(child)
            return
        if isinstance(node, ast.If):
            state.segment += _expr_awaits(node.test)
            branch = state.copy()
            self.walk(branch, node.body)
            other = state.copy()
            self.walk(other, node.orelse)
            branch.merge(other)
            state.segment = branch.segment
            state.taint = branch.taint
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            state.segment += _expr_awaits(node.iter)
            if isinstance(node, ast.AsyncFor):
                state.segment += 1  # each __anext__ suspends
            self._bind(state, node.target, self._value_taints(state, node.iter))
            self._loop(state, node.body, extra_bump=isinstance(node, ast.AsyncFor))
            self.walk(state, node.orelse)
            return
        if isinstance(node, ast.While):
            state.segment += _expr_awaits(node.test)
            self._loop(state, node.body, extra_bump=False)
            self.walk(state, node.orelse)
            return
        if isinstance(node, ast.Try):
            self.walk(state, node.body)
            for handler in node.handlers:
                branch = state.copy()
                self.walk(branch, handler.body)
                state.merge(branch)
            self.walk(state, node.orelse)
            self.walk(state, node.finalbody)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taints = self._value_taints(state, item.context_expr)
                state.segment += _expr_awaits(item.context_expr)
                if isinstance(node, ast.AsyncWith):
                    state.segment += 1  # __aenter__ suspends
                if item.optional_vars is not None:
                    self._bind(state, item.optional_vars, taints)
            self.walk(state, node.body)
            if isinstance(node, ast.AsyncWith):
                state.segment += 1  # __aexit__ suspends
            return
        if isinstance(node, ast.Match):
            state.segment += _expr_awaits(node.subject)
            merged: _SegmentState | None = None
            for case in node.cases:
                branch = state.copy()
                self.walk(branch, case.body)
                if merged is None:
                    merged = branch
                else:
                    merged.merge(branch)
            if merged is not None:
                state.merge(merged)
            return
        # pass/break/continue/global/nonlocal/import: no effect

    def _loop(self, state: _SegmentState, body: list[ast.stmt], extra_bump: bool) -> None:
        """Walk a loop body; re-walk once if it suspends, so a read in one
        iteration feeding a write in the next (across the loop's awaits)
        is still seen.  Findings dedupe by location, so the second pass
        never double-reports."""
        before = state.segment
        self.walk(state, body)
        if state.segment > before or extra_bump:
            if extra_bump:
                state.segment += 1
            self.walk(state, body)


def find_lost_updates(fn: ast.AsyncFunctionDef) -> list[LostUpdate]:
    """RA201: writes to ``self`` state tainted by a pre-await read of it."""
    walker = _LostUpdateWalker()
    walker.walk(_SegmentState(), fn.body)
    return sorted(
        walker.findings.values(),
        key=lambda f: (getattr(f.node, "lineno", 0), getattr(f.node, "col_offset", 0)),
    )
