"""The rid-keyed decision log: segmented on disk, tailed by followers.

Every write decision the actor makes — each fresh ``reserve`` verdict
(accept, reject, *or* malformed: anything that lands in the exactly-once
``decided`` table) and every ``cancel`` — is appended to this log as one
record carrying both the request and the verdict::

    {"hwm": 17, "kind": "reserve",
     "message": {"rid": 7, "sr": 0.0, "lr": 3600.0, "nr": 4},
     "verdict": {"ok": true, "start": 0.0, "end": 3600.0, ...}}

Records are numbered by a monotone **high-water mark** (record *i* has
``hwm == i``); a consumer holding cursor *c* has applied records
``1..c`` and asks for more with the ``log_tail`` wire op.  Because the
scheduler is deterministic, a follower that replays ``message`` through
the same decision code must reproduce ``verdict`` bit-for-bit — the
follower checks, so any divergence is detected, not silently absorbed.

**Framing.** Each record is a 4-byte big-endian length prefix followed
by that many bytes of UTF-8 JSON, appended to size-capped segment files
``seg-<first-hwm>.log``.  A torn tail (partial header, short payload,
or undecodable JSON — the signature of a crash mid-append) is truncated
away on open; everything before it is intact.

**Durability model.** The log is flushed but not fsynced: it is a
*replication* stream, not the recovery source of truth.  Recovery
correctness comes from snapshots plus at-least-once clients — a decision
lost with the tail is simply re-decided identically when the client
resends (the same argument that makes restart-from-snapshot
decision-identical), and :meth:`DecisionLog.align` renumbers nothing:
re-appended records get the same hwm the lost originals had.

**Compaction.** A snapshot at hwm *S* makes records ``1..S`` redundant
for recovery, but an attached follower at cursor *c < S* still needs
``c+1..S``; :meth:`DecisionLog.compact` therefore drops only whole
segments below ``min(S, min follower cursor)``.  A cursor only counts
while its follower keeps polling: one that has not reported for
``cursor_ttl`` seconds is forgotten (a live follower refreshes every
``poll_interval``, orders of magnitude below the TTL), so a dead
follower cannot pin compaction — and grow the log directory — forever.
A follower that expires and later returns below ``base`` crash-stops
with re-bootstrap instructions, exactly like any other cursor gap.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from ..errors import ErrorCode, MalformedRequestError, NotFoundError, ReproError
from .protocol import request_from_payload

__all__ = [
    "ADMIN_KINDS",
    "DecisionLog",
    "decide_admin",
    "decide_reserve",
    "entry_from_outcome",
    "decide_cancel",
    "decision_message",
]

#: 4-byte big-endian record length prefix
_HEADER = 4

#: ``reserve`` wire fields a log record preserves (``op``/``seq`` are
#: connection bookkeeping, not part of the decision)
_RESERVE_FIELDS = ("rid", "qr", "sr", "lr", "nr", "deadline")


# ----------------------------------------------------------------------
# the decision functions (shared by the primary actor and the follower)
# ----------------------------------------------------------------------


def entry_from_outcome(outcome: Any) -> dict[str, Any]:
    """The decision-table entry for one ``schedule_detailed`` outcome."""
    if outcome.allocation is None:
        return {
            "ok": False,
            "error": {
                "code": ErrorCode.REJECTED.wire,
                "exit_code": int(ErrorCode.REJECTED),
                "message": (
                    f"rejected after {outcome.attempts} attempt(s) ({outcome.reason})"
                ),
                "reason": outcome.reason,
                "attempts": outcome.attempts,
            },
        }
    allocation = outcome.allocation
    return {
        "ok": True,
        "start": allocation.start,
        "end": allocation.end,
        "servers": sorted(allocation.servers),
        "attempts": allocation.attempts,
        "delay": allocation.delay,
    }


def decide_reserve(scheduler: Any, message: dict[str, Any]) -> dict[str, Any]:
    """Decide one fresh ``reserve`` against an in-process scheduler.

    This is *the* unsharded decision path: the primary actor calls it for
    rids not yet in the decision table, and the follower calls it again
    for every logged record — determinism makes both produce the same
    entry, and the follower asserts they do.
    """
    try:
        request = request_from_payload(message)
    except MalformedRequestError as exc:
        return {"ok": False, "error": exc.payload()}
    # the virtual clock: simulated time only ever advances from
    # request-carried submission times, keeping replays deterministic
    scheduler.advance(max(scheduler.now, request.qr))
    return entry_from_outcome(scheduler.schedule_detailed(request))


def decide_cancel(scheduler: Any, rid: int) -> dict[str, Any]:
    """Apply one ``cancel`` against an in-process scheduler."""
    try:
        scheduler.cancel(rid)
    except NotFoundError as exc:
        return {"ok": False, "error": exc.payload()}
    return {"ok": True}


#: pool-mutating admin kinds that flow through the decision log
ADMIN_KINDS = ("add_servers", "drain", "remove")

#: wire fields a logged admin record preserves, per kind
_ADMIN_FIELDS = {
    "add_servers": ("count", "aid", "qr"),
    "drain": ("server", "aid", "qr"),
    "remove": ("server", "aid", "qr"),
}


def decide_admin(scheduler: Any, kind: str, message: dict[str, Any]) -> dict[str, Any]:
    """Decide one elastic-pool admin op against an in-process scheduler.

    Shared by the primary actor (fresh decisions, keyed by the optional
    ``aid`` idempotency token) and the follower (replay of logged admin
    records) — like :func:`decide_reserve`, determinism makes both
    produce the same verdict.  An admin op may carry a ``qr`` submission
    time; the virtual clock advances before the mutation so drain
    progress (``is_drained``) is judged at the same instant on replay.
    """
    qr = message.get("qr")
    if qr is not None:
        scheduler.advance(max(scheduler.now, float(qr)))
    try:
        if kind == "add_servers":
            new_ids = scheduler.add_servers(int(message["count"]))
            return {"ok": True, "servers": new_ids, "n_servers": scheduler.n_servers}
        if kind == "drain":
            return {"ok": True, **scheduler.drain(int(message["server"]))}
        if kind == "remove":
            return {"ok": True, **scheduler.remove(int(message["server"]))}
    except ReproError as exc:
        return {"ok": False, "error": exc.payload()}
    raise ValueError(f"not an admin decision kind: {kind!r}")


def decision_message(kind: str, message: dict[str, Any]) -> dict[str, Any]:
    """The canonical (replayable) subset of a wire message for the log."""
    if kind == "reserve":
        return {
            name: message[name]
            for name in _RESERVE_FIELDS
            if message.get(name) is not None
        }
    admin_fields = _ADMIN_FIELDS.get(kind)
    if admin_fields is not None:
        return {
            name: message[name] for name in admin_fields if message.get(name) is not None
        }
    return {"rid": int(message["rid"])}


# ----------------------------------------------------------------------
# the on-disk log
# ----------------------------------------------------------------------


class DecisionLog:
    """Length-prefixed, segment-rotated decision log under ``log_dir``."""

    def __init__(
        self,
        log_dir: str | Path,
        segment_bytes: int = 1 << 20,
        cursor_ttl: float = 900.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if segment_bytes < 1:
            raise ValueError(f"segment size must be positive, got {segment_bytes}")
        if cursor_ttl <= 0:
            raise ValueError(f"cursor TTL must be positive, got {cursor_ttl}")
        self.dir = Path(log_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.cursor_ttl = cursor_ttl
        self._clock = clock
        #: hwm of the last record ever appended (0 = empty history)
        self.hwm = 0
        #: highest hwm compacted away (retained records have hwm > base)
        self.base = 0
        #: retained records, in hwm order (tail is served from memory)
        self._records: list[dict[str, Any]] = []
        #: follower_id -> (last cursor, last report time) via ``log_tail``
        self._cursors: dict[str, tuple[int, float]] = {}
        self._active: Any = None  # open append handle for the last segment
        self._active_path: Path | None = None
        self._recover()

    # -- recovery -------------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(self.dir.glob("seg-*.log"))

    def _recover(self) -> None:
        """Scan segments in order, truncating at the first torn record."""
        segments = self._segments()
        if not segments:
            return
        first = _segment_first_hwm(segments[0])
        self.base = first - 1
        self.hwm = self.base
        torn = False
        for path in segments:
            raw = path.read_bytes()
            offset = 0
            good = 0
            while offset + _HEADER <= len(raw):
                length = int.from_bytes(raw[offset : offset + _HEADER], "big")
                end = offset + _HEADER + length
                if end > len(raw):
                    break  # short payload: torn tail
                try:
                    record = json.loads(raw[offset + _HEADER : end].decode("utf-8"))
                    if record["hwm"] != self.hwm + 1:
                        break  # numbering gap: treat like corruption
                except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                    break
                self._records.append(record)
                self.hwm = record["hwm"]
                offset = end
                good = end
            if good < len(raw):
                # crash mid-append (or bit rot): drop the tail and stop —
                # anything in later segments is unreachable without it
                with path.open("r+b") as handle:
                    handle.truncate(good)
                torn = True
            if torn:
                break
        if torn:
            for path in self._segments():
                if _segment_first_hwm(path) > self.hwm:
                    path.unlink()

    # -- appending ------------------------------------------------------

    def append(self, kind: str, message: dict[str, Any], verdict: dict[str, Any]) -> int:
        """Record one decision; returns its hwm."""
        record = {
            "hwm": self.hwm + 1,
            "kind": kind,
            "message": message,
            "verdict": verdict,
        }
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True, allow_nan=False
        ).encode("utf-8")
        handle = self._handle_for_append(record["hwm"])
        handle.write(len(payload).to_bytes(_HEADER, "big") + payload)
        handle.flush()
        self._records.append(record)
        self.hwm = record["hwm"]
        return self.hwm

    def _handle_for_append(self, next_hwm: int) -> Any:
        if self._active is not None and self._active_path is not None:
            if self._active.tell() < self.segment_bytes:
                return self._active
            self._active.close()
            self._active = None
        if self._active is None:
            if self._active_path is None:
                # adopt the last existing segment if it still has room
                segments = self._segments()
                if segments and segments[-1].stat().st_size < self.segment_bytes:
                    self._active_path = segments[-1]
                else:
                    self._active_path = self.dir / f"seg-{next_hwm:012d}.log"
            else:
                self._active_path = self.dir / f"seg-{next_hwm:012d}.log"
            self._active = self._active_path.open("ab")
        return self._active

    def close(self) -> None:
        if self._active is not None:
            self._active.close()
            self._active = None

    # -- tailing --------------------------------------------------------

    def tail(self, cursor: int, limit: int) -> list[dict[str, Any]]:
        """Records with ``cursor < hwm <= cursor + limit`` (may be empty).

        A cursor below :attr:`base` is a gap — the needed records were
        compacted away — and the *caller* decides what that means (the
        server reports ``base`` so the follower can detect it).
        """
        if cursor >= self.hwm:
            return []
        start = max(cursor, self.base) - self.base  # index into _records
        return self._records[start : start + max(0, limit)]

    def register_cursor(self, follower_id: str, cursor: int) -> None:
        """Remember a follower's progress; compaction respects it."""
        self._cursors[follower_id] = (cursor, self._clock())

    def forget_follower(self, follower_id: str) -> None:
        self._cursors.pop(follower_id, None)

    def live_cursors(self) -> dict[str, int]:
        """Cursors reported within the last ``cursor_ttl`` seconds.

        Stale entries are forgotten on the way out: a follower that died
        without deregistering stops pinning :meth:`compact` once it has
        missed a TTL's worth of polls.
        """
        deadline = self._clock() - self.cursor_ttl
        for follower_id, (_, seen) in list(self._cursors.items()):
            if seen < deadline:
                self.forget_follower(follower_id)
        return {follower_id: cursor for follower_id, (cursor, _) in self._cursors.items()}

    # -- alignment and compaction --------------------------------------

    def align(self, snapshot_hwm: int) -> None:
        """Make the log agree with a restored snapshot at ``snapshot_hwm``.

        * Log ahead of the snapshot: truncate back — determinism means
          the dropped suffix is re-appended bit-identically as clients
          resend, so follower cursors beyond ``snapshot_hwm`` stay valid.
        * Log behind the snapshot (lost or fresh directory): reset empty
          at ``base = snapshot_hwm`` — records ``1..snapshot_hwm`` exist
          only inside the snapshot now, and a follower below that cursor
          must bootstrap from the snapshot instead.
        """
        if self.hwm > snapshot_hwm:
            self._truncate_to(snapshot_hwm)
        elif self.hwm < snapshot_hwm:
            self.close()
            for path in self._segments():
                path.unlink()
            self._records.clear()
            self._active_path = None
            self.base = snapshot_hwm
            self.hwm = snapshot_hwm

    def _truncate_to(self, target: int) -> None:
        """Drop every record with ``hwm > target`` (memory and disk)."""
        self.close()
        for path in self._segments():
            first = _segment_first_hwm(path)
            if first > target:
                path.unlink()
                continue
            # scan to the cut point inside this segment
            raw = path.read_bytes()
            offset = 0
            hwm = first - 1
            while offset + _HEADER <= len(raw) and hwm < target:
                length = int.from_bytes(raw[offset : offset + _HEADER], "big")
                offset += _HEADER + length
                hwm += 1
            if offset < len(raw):
                with path.open("r+b") as handle:
                    handle.truncate(offset)
        del self._records[max(0, target - self.base) :]
        self._active_path = None
        self.hwm = target

    def compact(self, snapshot_hwm: int) -> int:
        """Drop whole segments covered by the snapshot *and* every follower.

        Returns the number of segments removed.  With no followers
        attached the snapshot alone bounds compaction; only *live*
        cursors (reported within ``cursor_ttl``) hold segments back.
        """
        keep_from = min([snapshot_hwm, *self.live_cursors().values()])
        segments = self._segments()
        removed = 0
        for index, path in enumerate(segments):
            if index + 1 < len(segments):
                last_hwm = _segment_first_hwm(segments[index + 1]) - 1
            else:
                break  # never drop the active (last) segment
            if last_hwm > keep_from:
                break
            path.unlink()
            removed += 1
            del self._records[: last_hwm - self.base]
            self.base = last_hwm
        return removed

    def summary(self) -> dict[str, Any]:
        return {
            "hwm": self.hwm,
            "base": self.base,
            "segments": len(self._segments()),
            "followers": dict(sorted(self.live_cursors().items())),
        }


def _segment_first_hwm(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError):
        raise ValueError(f"not a decision-log segment name: {path.name}") from None
