"""Micro-batching of queued operations between event-loop ticks.

The actor drains its queue in batches: one ``await`` for the first item,
then a non-blocking sweep of everything already queued (bounded by
``max_batch``).  All operations in a batch are applied back-to-back
without yielding to the event loop, so the tree updates of co-scheduled
requests are fused — no connection handler interleaves between them, no
future wakes up mid-batch, and Python's bytecode loop stays hot on the
calendar code path.

Responses are still per-operation (each carries its own future); batching
changes *when* work happens, never its FIFO order or its outcome — the
kill/restart identity check in ``benchmarks/bench_service.py`` depends
on that.
"""

from __future__ import annotations

import asyncio
from typing import Any, TypeVar

T = TypeVar("T")

__all__ = ["drain_batch"]


async def drain_batch(queue: "asyncio.Queue[T]", max_batch: int) -> list[T]:
    """Await one queued item, then sweep up to ``max_batch - 1`` more.

    Returns at least one item.  Items are returned in queue (FIFO) order;
    the sweep never blocks, so a lone request is served immediately —
    micro-batching adds no latency floor under light load.
    """
    if max_batch < 1:
        raise ValueError(f"batch size must be at least 1, got {max_batch}")
    first = await queue.get()
    batch: list[Any] = [first]
    while len(batch) < max_batch:
        try:
            batch.append(queue.get_nowait())
        except asyncio.QueueEmpty:
            break
    return batch
