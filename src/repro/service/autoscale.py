"""Telemetry-driven auto-scaling for the elastic reservation pool.

The :class:`AutoScaler` closes the loop between the admission
controller's telemetry (:meth:`AdmissionController.telemetry
<repro.service.admission.AdmissionController.telemetry>` — queue-delay
EWMA and shed rate) and the pool admin ops (``add_servers`` / ``drain``
/ ``remove``).  It is deliberately split in two:

* **policies** are pure functions of ``(telemetry, pool)`` — one
  :class:`ScaleDecision` per tick, no clocks, no IO, no internal
  state beyond what hysteresis needs.  That makes every policy unit
  testable with hand-built telemetry dicts and keeps the decision
  logic out of the asyncio plumbing.
* the **driver** (:meth:`AutoScaler.plan`) turns a decision into
  concrete admin messages against a pool snapshot: scale-out becomes
  one ``add_servers``, scale-in drains the highest active server and
  removes already-drained ones.  In **dry-run** mode the planned
  messages are recorded and reported but never applied — the operator
  sees what the policy *would* do before trusting it with the pool.

Three policies ship:

``step``
    Scale out by ``step`` servers whenever either overload signal
    (queue delay or shed rate) breaches its high threshold; scale in by
    one when both signals sit below the low thresholds.  Simple and
    twitchy — the reference baseline.
``target``
    Proportional control: pick the active-server count that would bring
    the queue-delay EWMA back to the midpoint of the low/high band
    (service rate scales ~linearly with servers, so the corrective
    factor is ``delay / setpoint``), capped at ``step`` servers per
    tick in either direction.
``hysteresis``
    The ``step`` policy gated by consecutive-breach counters: a breach
    must persist for ``patience`` ticks before any action, and each
    action resets both counters.  This is the production default — a
    single shed burst (or one idle tick) no longer flaps the pool.

All policies hold while a drain is already in progress: draining
servers still honor existing reservations, so stacking more drains on
a transient signal would amplify, not damp, the oscillation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "POLICIES",
    "AutoScaleConfig",
    "AutoScaler",
    "ScaleDecision",
    "build_policy",
]


@dataclass(slots=True)
class ScaleDecision:
    """One tick's verdict: ``direction`` is ``up``, ``down`` or ``hold``."""

    direction: str
    count: int
    reason: str

    def as_dict(self) -> dict[str, Any]:
        return {"direction": self.direction, "count": self.count, "reason": self.reason}


HOLD = ScaleDecision("hold", 0, "signals in band")


@dataclass(slots=True)
class AutoScaleConfig:
    """Knobs shared by every policy (see ``docs/service.md``)."""

    policy: str = "hysteresis"
    interval: float = 5.0  # seconds between ticks (driver-level)
    min_servers: int = 1
    max_servers: int = 4096
    step: int = 1  # servers per scale-out action (and per-tick cap)
    high_delay: float = 0.5  # queue-delay EWMA (s) above which we scale out
    low_delay: float = 0.05  # queue-delay EWMA (s) below which we may scale in
    high_shed_rate: float = 0.05  # shed-rate EWMA above which we scale out
    patience: int = 3  # hysteresis: consecutive breaching ticks before acting
    dry_run: bool = False

    def validate(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown autoscale policy {self.policy!r} "
                f"(choose from {', '.join(sorted(POLICIES))})"
            )
        if self.interval <= 0:
            raise ValueError(f"tick interval must be positive, got {self.interval}")
        if not 1 <= self.min_servers <= self.max_servers:
            raise ValueError(
                f"need 1 <= min_servers <= max_servers, got "
                f"[{self.min_servers}, {self.max_servers}]"
            )
        if self.step < 1:
            raise ValueError(f"scale step must be at least 1, got {self.step}")
        if not 0 < self.low_delay < self.high_delay:
            raise ValueError(
                f"need 0 < low_delay < high_delay, got "
                f"({self.low_delay}, {self.high_delay})"
            )
        if not 0 < self.high_shed_rate <= 1:
            raise ValueError(
                f"shed-rate threshold must be in (0, 1], got {self.high_shed_rate}"
            )
        if self.patience < 1:
            raise ValueError(f"patience must be at least 1, got {self.patience}")


# ----------------------------------------------------------------------
# policies (pure: (telemetry, pool) -> ScaleDecision)
# ----------------------------------------------------------------------


def _signals(telemetry: dict[str, Any]) -> tuple[float, float]:
    return (
        float(telemetry.get("queue_delay_ewma", 0.0)),
        float(telemetry.get("shed_rate", 0.0)),
    )


class StepPolicy:
    """±``step`` on threshold breach; the reference baseline."""

    def __init__(self, config: AutoScaleConfig) -> None:
        self.config = config

    def decide(self, telemetry: dict[str, Any], pool: dict[str, Any]) -> ScaleDecision:
        config = self.config
        delay, shed_rate = _signals(telemetry)
        active = int(pool["active"])
        if int(pool["draining"]) > 0:
            return ScaleDecision("hold", 0, "drain in progress")
        if delay > config.high_delay or shed_rate > config.high_shed_rate:
            if active >= config.max_servers:
                return ScaleDecision("hold", 0, "overloaded but at max_servers")
            count = min(config.step, config.max_servers - active)
            return ScaleDecision(
                "up",
                count,
                f"queue_delay={delay:.4f}s shed_rate={shed_rate:.4f} above band",
            )
        if delay < config.low_delay and shed_rate == 0.0 and active > config.min_servers:
            return ScaleDecision(
                "down", 1, f"queue_delay={delay:.4f}s below band, no shedding"
            )
        return HOLD


class TargetPolicy:
    """Proportional control toward the middle of the delay band."""

    def __init__(self, config: AutoScaleConfig) -> None:
        self.config = config
        self.setpoint = (config.low_delay + config.high_delay) / 2.0

    def decide(self, telemetry: dict[str, Any], pool: dict[str, Any]) -> ScaleDecision:
        config = self.config
        delay, shed_rate = _signals(telemetry)
        active = int(pool["active"])
        if int(pool["draining"]) > 0:
            return ScaleDecision("hold", 0, "drain in progress")
        if config.low_delay <= delay <= config.high_delay and shed_rate <= config.high_shed_rate:
            return HOLD
        if shed_rate > config.high_shed_rate:
            # shedding means the delay EWMA understates demand (shed work
            # never queues); treat it as a full-band breach
            target = active + config.step
        else:
            target = max(1, round(active * delay / self.setpoint))
        target = max(config.min_servers, min(config.max_servers, target))
        if target > active:
            count = min(config.step, target - active)
            return ScaleDecision(
                "up", count, f"target {target} active (delay {delay:.4f}s)"
            )
        if target < active:
            count = min(config.step, active - target)
            return ScaleDecision(
                "down", count, f"target {target} active (delay {delay:.4f}s)"
            )
        return HOLD


class HysteresisPolicy:
    """:class:`StepPolicy` gated by consecutive-breach counters."""

    def __init__(self, config: AutoScaleConfig) -> None:
        self.config = config
        self._inner = StepPolicy(config)
        self._up_ticks = 0
        self._down_ticks = 0

    def decide(self, telemetry: dict[str, Any], pool: dict[str, Any]) -> ScaleDecision:
        decision = self._inner.decide(telemetry, pool)
        if decision.direction == "up":
            self._down_ticks = 0
            self._up_ticks += 1
            if self._up_ticks < self.config.patience:
                return ScaleDecision(
                    "hold",
                    0,
                    f"overload breach {self._up_ticks}/{self.config.patience}",
                )
        elif decision.direction == "down":
            self._up_ticks = 0
            self._down_ticks += 1
            if self._down_ticks < self.config.patience:
                return ScaleDecision(
                    "hold",
                    0,
                    f"underload breach {self._down_ticks}/{self.config.patience}",
                )
        else:
            self._up_ticks = 0
            self._down_ticks = 0
            return decision
        # acting resets both counters: the next action needs fresh evidence
        self._up_ticks = 0
        self._down_ticks = 0
        return decision


POLICIES: dict[str, Callable[[AutoScaleConfig], Any]] = {
    "step": StepPolicy,
    "target": TargetPolicy,
    "hysteresis": HysteresisPolicy,
}


def build_policy(config: AutoScaleConfig) -> Any:
    config.validate()
    return POLICIES[config.policy](config)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------


@dataclass(slots=True)
class AutoScaler:
    """Turns policy decisions into admin messages (or dry-run records).

    The scaler never touches a scheduler itself: :meth:`plan` returns
    plain admin wire messages for the caller to route through whatever
    decision path it already trusts (the service actor's queue, a test's
    facade).  ``history`` keeps the last ``history_limit`` non-hold
    decisions for the status surface.
    """

    config: AutoScaleConfig
    policy: Any = None
    ticks: int = 0
    actions: int = 0
    history: list[dict[str, Any]] = field(default_factory=list)
    history_limit: int = 32

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = build_policy(self.config)

    def plan(
        self, telemetry: dict[str, Any], pool: dict[str, Any]
    ) -> tuple[ScaleDecision, list[dict[str, Any]]]:
        """One tick: decide, then translate into admin messages.

        ``pool`` is a ``pool_status`` response.  Scale-out is one
        ``add_servers``; scale-in drains the highest active server(s).
        Independently of the decision, any already-drained draining
        server is removed — finishing a scale-in is not gated on the
        policy still wanting one.
        """
        self.ticks += 1
        messages: list[dict[str, Any]] = []
        for entry in pool.get("drain_progress", []):
            if entry.get("drained"):
                messages.append(
                    {
                        "op": "remove",
                        "server": int(entry["server"]),
                        "aid": f"autoscale-remove-{entry['server']}",
                    }
                )
        decision = self.policy.decide(telemetry, pool)
        if decision.direction == "up":
            messages.append(
                {
                    "op": "add_servers",
                    "count": decision.count,
                    "aid": f"autoscale-add-{self.ticks}",
                }
            )
        elif decision.direction == "down":
            statuses = pool.get("servers", [])
            targets = [s for s, st in enumerate(statuses) if st == "active"]
            for server in reversed(targets[-decision.count :]):
                messages.append(
                    {
                        "op": "drain",
                        "server": server,
                        "aid": f"autoscale-drain-{server}-{self.ticks}",
                    }
                )
        if decision.direction != "hold" or messages:
            self.actions += len(messages)
            self.history.append(
                {
                    "tick": self.ticks,
                    "decision": decision.as_dict(),
                    "messages": [dict(m) for m in messages],
                    "dry_run": self.config.dry_run,
                }
            )
            del self.history[: -self.history_limit]
        if self.config.dry_run:
            return decision, []
        return decision, messages

    def summary(self) -> dict[str, Any]:
        return {
            "policy": self.config.policy,
            "interval": self.config.interval,
            "dry_run": self.config.dry_run,
            "ticks": self.ticks,
            "actions": self.actions,
            "recent": self.history[-5:],
        }
