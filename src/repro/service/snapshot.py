"""Versioned, checksummed snapshots of the full service state.

A snapshot file is one JSON document::

    {
      "format": "repro.service.snapshot",
      "version": 1,
      "sha256": "<hex digest over the canonical state JSON>",
      "state": { ... }
    }

``state`` bundles the scheduler state
(:meth:`repro.facade.CoAllocationScheduler.export_state` — calendar
periods, clock, retry policy, active allocations) with the server's
decision log (rid → recorded response), so a restarted server both
resumes its reservations *and* answers resent requests with the original
verdict (exactly-once semantics for at-least-once clients).

Canonicalization (sorted keys, compact separators) makes the checksum —
and the snapshot bytes themselves — deterministic: snapshot → restore →
snapshot round-trips byte-identically, which the hypothesis suite
asserts.  Writes are atomic (temp file + ``os.replace``) so a crash
mid-write leaves the previous snapshot intact; reads verify format,
version and checksum and raise :class:`SnapshotError` on any mismatch
rather than resurrecting a corrupt calendar.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SUPPORTED_VERSIONS",
    "SnapshotError",
    "combine_checksums",
    "snapshot_bytes",
    "state_checksum",
    "write_snapshot",
    "read_snapshot",
]

SNAPSHOT_FORMAT = "repro.service.snapshot"
#: version 2 added the elastic pool: the calendar state carries a
#: ``pool`` status list and the service state an ``admin_decided`` table
SNAPSHOT_VERSION = 2
#: versions this build can read (older ones are migrated on read)
SUPPORTED_VERSIONS = frozenset({1, 2})

#: legal per-server pool states (mirrors ``repro.core.calendar.POOL_STATES``;
#: duplicated so the snapshot layer stays dependency-free)
_POOL_STATES = frozenset({"active", "draining", "removed"})


class SnapshotError(ValueError):
    """The snapshot file is missing, malformed, or fails its checksum."""


def _canonical(state: dict[str, Any]) -> str:
    return json.dumps(state, separators=(",", ":"), sort_keys=True, allow_nan=False)


def state_checksum(state: dict[str, Any]) -> str:
    """SHA-256 over the canonical state JSON."""
    return hashlib.sha256(_canonical(state).encode("utf-8")).hexdigest()


def combine_checksums(checksums: list[str]) -> str:
    """One cross-shard checksum over per-shard state checksums, in shard
    order — the coordinated-snapshot integrity stamp.  Order-sensitive by
    design: shard contents are positional (shard ``s`` owns a specific
    server slice), so swapped shards must not collide."""
    joined = "\n".join(checksums).encode("utf-8")
    return hashlib.sha256(joined).hexdigest()


def snapshot_bytes(state: dict[str, Any]) -> bytes:
    """The exact bytes :func:`write_snapshot` persists for ``state``."""
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "sha256": state_checksum(state),
        "state": state,
    }
    return (_canonical(document) + "\n").encode("utf-8")


def write_snapshot(path: str | Path, state: dict[str, Any]) -> dict[str, Any]:
    """Atomically persist ``state``; returns the snapshot metadata.

    The temp file lives next to the target so ``os.replace`` stays on one
    filesystem and is atomic.
    """
    target = Path(path)
    payload = snapshot_bytes(state)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, target)
    return {
        "path": str(target),
        "version": SNAPSHOT_VERSION,
        "sha256": state_checksum(state),
        "bytes": len(payload),
    }


def read_snapshot(path: str | Path) -> dict[str, Any]:
    """Load and verify a snapshot; returns the ``state`` dict.

    Raises :class:`SnapshotError` on a missing file, unparseable JSON,
    wrong format/version, or a checksum mismatch.
    """
    target = Path(path)
    try:
        raw = target.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {target}: {exc}") from exc
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot {target} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"snapshot {target} is not a {SNAPSHOT_FORMAT} file")
    version = document.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot {target} has version {version!r}; "
            f"this build reads versions {sorted(SUPPORTED_VERSIONS)}"
        )
    state = document.get("state")
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot {target} carries no state object")
    digest = state_checksum(state)
    if digest != document.get("sha256"):
        raise SnapshotError(
            f"snapshot {target} fails its checksum "
            f"(header {document.get('sha256')!r}, computed {digest!r})"
        )
    if version < SNAPSHOT_VERSION:
        return _migrate_state(state, version)
    _check_pool_sections(state, target)
    return state


def _migrate_state(state: dict[str, Any], version: int) -> dict[str, Any]:
    """Lift an older-version state to the current in-memory shape.

    v1 → v2: v1 snapshots predate the elastic pool, so every recorded
    server was active (the calendar restore defaults a missing ``pool``
    section to all-active) and no admin decisions existed.  Re-exporting
    the restored state yields a byte-identical v2 snapshot of the same
    logical state, which the migration tests assert.
    """
    migrated = dict(state)
    if version < 2:
        migrated.setdefault("admin_decided", {})
    return migrated


def _check_pool_sections(state: dict[str, Any], target: Path) -> None:
    """Hard-fail a current-version snapshot with corrupt pool sections.

    A checksum match proves the bytes are what the writer wrote, not that
    the writer wrote sense; a mangled pool must never silently restore as
    an all-active (or empty) pool.
    """
    scheduler = state.get("scheduler")
    calendar = scheduler.get("calendar") if isinstance(scheduler, dict) else None
    if isinstance(calendar, dict) and "pool" in calendar:
        pool = calendar["pool"]
        n_servers = calendar.get("n_servers")
        if (
            not isinstance(pool, list)
            or any(entry not in _POOL_STATES for entry in pool)
            or (isinstance(n_servers, int) and len(pool) != n_servers)
        ):
            raise SnapshotError(f"snapshot {target} carries a corrupt pool section")
    admin = state.get("admin_decided")
    if admin is not None and (
        not isinstance(admin, dict)
        or any(not isinstance(entry, dict) for entry in admin.values())
    ):
        raise SnapshotError(f"snapshot {target} carries a corrupt admin_decided table")
