"""Versioned, checksummed snapshots of the full service state.

A snapshot file is one JSON document::

    {
      "format": "repro.service.snapshot",
      "version": 1,
      "sha256": "<hex digest over the canonical state JSON>",
      "state": { ... }
    }

``state`` bundles the scheduler state
(:meth:`repro.facade.CoAllocationScheduler.export_state` — calendar
periods, clock, retry policy, active allocations) with the server's
decision log (rid → recorded response), so a restarted server both
resumes its reservations *and* answers resent requests with the original
verdict (exactly-once semantics for at-least-once clients).

Canonicalization (sorted keys, compact separators) makes the checksum —
and the snapshot bytes themselves — deterministic: snapshot → restore →
snapshot round-trips byte-identically, which the hypothesis suite
asserts.  Writes are atomic (temp file + ``os.replace``) so a crash
mid-write leaves the previous snapshot intact; reads verify format,
version and checksum and raise :class:`SnapshotError` on any mismatch
rather than resurrecting a corrupt calendar.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "combine_checksums",
    "snapshot_bytes",
    "state_checksum",
    "write_snapshot",
    "read_snapshot",
]

SNAPSHOT_FORMAT = "repro.service.snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """The snapshot file is missing, malformed, or fails its checksum."""


def _canonical(state: dict[str, Any]) -> str:
    return json.dumps(state, separators=(",", ":"), sort_keys=True, allow_nan=False)


def state_checksum(state: dict[str, Any]) -> str:
    """SHA-256 over the canonical state JSON."""
    return hashlib.sha256(_canonical(state).encode("utf-8")).hexdigest()


def combine_checksums(checksums: list[str]) -> str:
    """One cross-shard checksum over per-shard state checksums, in shard
    order — the coordinated-snapshot integrity stamp.  Order-sensitive by
    design: shard contents are positional (shard ``s`` owns a specific
    server slice), so swapped shards must not collide."""
    joined = "\n".join(checksums).encode("utf-8")
    return hashlib.sha256(joined).hexdigest()


def snapshot_bytes(state: dict[str, Any]) -> bytes:
    """The exact bytes :func:`write_snapshot` persists for ``state``."""
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "sha256": state_checksum(state),
        "state": state,
    }
    return (_canonical(document) + "\n").encode("utf-8")


def write_snapshot(path: str | Path, state: dict[str, Any]) -> dict[str, Any]:
    """Atomically persist ``state``; returns the snapshot metadata.

    The temp file lives next to the target so ``os.replace`` stays on one
    filesystem and is atomic.
    """
    target = Path(path)
    payload = snapshot_bytes(state)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, target)
    return {
        "path": str(target),
        "version": SNAPSHOT_VERSION,
        "sha256": state_checksum(state),
        "bytes": len(payload),
    }


def read_snapshot(path: str | Path) -> dict[str, Any]:
    """Load and verify a snapshot; returns the ``state`` dict.

    Raises :class:`SnapshotError` on a missing file, unparseable JSON,
    wrong format/version, or a checksum mismatch.
    """
    target = Path(path)
    try:
        raw = target.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {target}: {exc}") from exc
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot {target} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"snapshot {target} is not a {SNAPSHOT_FORMAT} file")
    if document.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {target} has version {document.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    state = document.get("state")
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot {target} carries no state object")
    digest = state_checksum(state)
    if digest != document.get("sha256"):
        raise SnapshotError(
            f"snapshot {target} fails its checksum "
            f"(header {document.get('sha256')!r}, computed {digest!r})"
        )
    return state
