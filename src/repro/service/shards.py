"""Calendar shard actors for the sharded reservation service.

A *shard* owns one :class:`~repro.core.calendar.AvailabilityCalendar`
over a contiguous slice of the global server set and processes messages
strictly one at a time — the single-writer actor discipline of the
unsharded service, applied per slice.  Shards never talk to each other:
the coordinator (``service/coordinator.py``) scatters Phase-1/Phase-2
probes to every shard, merges the per-shard candidate prefixes with the
same :func:`~repro.core.merge.merge_earliest` the slot trees use, and
sends the winning picks back as an all-or-nothing, rid-keyed commit.

Identifier conventions (the cross-shard equivalence hinges on these):

* **server ids on the wire are global**; each shard subtracts its own
  ``lo`` offset internally.  A fresh shard's initial trailing periods
  carry uid = global server index, matching the single calendar's
  constructor order.
* **period uids are coordinator-assigned** for every remnant and release
  (``remnant_uids`` / ``uid`` on the calendar mutators), so relative uid
  order — the slot trees' tie-break — is identical to a single calendar
  processing the same decisions.  Shards mint fresh uids only in the
  :func:`ShardState` abort path, which is unreachable while the
  coordinator serializes decisions (see ``shard_abort``).
* every message carries the coordinator clock ``now`` (shards advance to
  ``max(own now, now)``) and mutations carry the decision-log
  high-water mark ``hwm``; a coordinated snapshot asserts all shards
  exported the same ``hwm``.

Run ``python -m repro.service.shards`` to start one shard worker: a
blocking, single-connection NDJSON loop (the coordinator is its only
client).  EOF on the connection means the coordinator is gone and the
worker exits — crash-stop, never limp along.
"""

from __future__ import annotations

import json
import math
import os
import socket
import sys
from typing import Any

from ..core.calendar import AvailabilityCalendar
from .protocol import SHARD_MAX_LINE_BYTES, SHARD_OPS, missing_required
from .snapshot import state_checksum

__all__ = ["ShardMap", "ShardState", "fresh_calendar_state", "main"]


class ShardMap:
    """Contiguous partition of ``n_servers`` across ``shards`` slices.

    The first ``n_servers % shards`` shards get one extra server, so
    sizes differ by at most one and ``shard_of`` is O(1) arithmetic.
    """

    def __init__(self, n_servers: int, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if shards > n_servers:
            raise ValueError(
                f"cannot spread {n_servers} server(s) across {shards} shards"
            )
        self.n_servers = n_servers
        self.shards = shards
        self._base, self._extra = divmod(n_servers, shards)
        self.bounds: list[tuple[int, int]] = []
        lo = 0
        for shard in range(shards):
            hi = lo + self._base + (1 if shard < self._extra else 0)
            self.bounds.append((lo, hi))
            lo = hi

    def shard_of(self, server: int) -> int:
        """The shard owning global ``server``."""
        if not 0 <= server < self.n_servers:
            raise ValueError(f"server {server} out of range 0..{self.n_servers - 1}")
        pivot = self._extra * (self._base + 1)
        if server < pivot:
            return server // (self._base + 1)
        return self._extra + (server - pivot) // self._base

    def lo(self, shard: int) -> int:
        return self.bounds[shard][0]

    def count(self, shard: int) -> int:
        lo, hi = self.bounds[shard]
        return hi - lo


def fresh_calendar_state(
    lo: int, count: int, tau: float, q_slots: int, now: float = 0.0
) -> dict[str, Any]:
    """Calendar state for a freshly-initialized shard slice.

    Every local server starts with one trailing idle period whose uid is
    its *global* index — the exact uids a single calendar's constructor
    would have assigned to these servers.
    """
    return {
        "n_servers": count,
        "tau": tau,
        "q_slots": q_slots,
        "now": now,
        "indexing": "tail",
        "pool": ["active"] * count,
        "periods": [[[now, None, lo + i]] for i in range(count)],
    }


class ShardState:
    """One shard's calendar plus the message handlers that drive it.

    Pure and synchronous: :meth:`apply` maps a request dict to a
    response dict.  The subprocess worker wraps it in a socket loop; the
    in-process :class:`~repro.service.coordinator.ShardedScheduler`
    calls it directly (the differential fuzzer path).
    """

    def __init__(self) -> None:
        self.lo = 0
        self.calendar: AvailabilityCalendar | None = None
        self.hwm = 0
        #: rid -> {response, windows} for exactly-once commits; ``windows``
        #: (local-server intervals) feed the abort compensation path
        self._committed: dict[int, dict[str, Any]] = {}

    def apply(self, message: dict[str, Any]) -> dict[str, Any]:
        op = str(message.get("op", ""))
        if op not in SHARD_OPS:
            return {"ok": False, "error": f"unknown shard op {op!r}"}
        missing = missing_required(op, message)
        if missing:
            return {
                "ok": False,
                "error": f"{op}: missing required field(s) {', '.join(missing)}",
            }
        if op != "shard_load" and self.calendar is None:
            return {"ok": False, "error": f"{op} before shard_load"}
        try:
            handler = getattr(self, "_op_" + op)
            return handler(message)  # type: ignore[no-any-return]
        except Exception as exc:  # surfaced to the coordinator, never hidden
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- clock ----------------------------------------------------------

    def _advance(self, message: dict[str, Any]) -> AvailabilityCalendar:
        calendar = self.calendar
        assert calendar is not None
        calendar.advance(max(calendar.now, float(message["now"])))
        return calendar

    # -- handlers -------------------------------------------------------

    def _op_shard_load(self, message: dict[str, Any]) -> dict[str, Any]:
        self.lo = int(message["lo"])
        self.calendar = AvailabilityCalendar.from_state(message["state"])
        self.hwm = int(message.get("hwm", 0))
        self._committed.clear()
        return {"ok": True, "n_servers": self.calendar.n_servers, "lo": self.lo}

    def _op_shard_ladder(self, message: dict[str, Any]) -> dict[str, Any]:
        """Phase-1 candidates + Phase-2 prefixes for a whole retry ladder.

        One row per attempt: the Phase-1 candidate count (``st <= sr``,
        tree plus tail — the count production's early verdict sums), the
        up-to-``nr`` earliest-ending feasible bounded periods, and the
        up-to-``nr`` latest-starting unbounded tails.  Per-shard top-nr
        prefixes suffice globally: every member of the global top-nr is
        in its own shard's top-nr.
        """
        calendar = self._advance(message)
        nr = int(message["nr"])
        rows: list[dict[str, Any]] = []
        for start, end in message["attempts"]:
            start, end = float(start), float(end)
            q = calendar.slot_of(start)
            if not calendar._base_slot <= q < calendar._base_slot + calendar.q_slots:
                # the coordinator filters by the same geometry; defend anyway
                rows.append({"count": 0, "tail_count": 0, "bounded": [], "tails": []})
                continue
            tree = calendar._trees[q]
            count, marks = tree.phase1(start)
            tail_count = calendar._tail_candidates(start)
            bounded = tree.phase2(marks, end, nr, partial=True) or []
            tails = calendar._inf_periods[max(0, tail_count - nr) : tail_count]
            rows.append(
                {
                    "count": count,
                    "tail_count": tail_count,
                    "bounded": [[p.et, p.uid, self.lo + p.server, p.st] for p in bounded],
                    "tails": [[p.st, p.uid, self.lo + p.server] for p in tails],
                }
            )
        return {"ok": True, "attempts": rows}

    def _op_shard_commit(self, message: dict[str, Any]) -> dict[str, Any]:
        """Carve the coordinator's picks; all-or-nothing, rid-idempotent.

        Every pick is resolved and validated *before* any mutation, so a
        stale pick (impossible while the coordinator serializes, but the
        contract survives reordering bugs) leaves the shard untouched
        and the coordinator aborts the sibling shards.
        """
        rid = int(message["rid"])
        cached = self._committed.get(rid)
        if cached is not None:
            return dict(cached["response"], replayed=True)
        calendar = self._advance(message)
        self.hwm = int(message["hwm"])
        start, end = float(message["start"]), float(message["end"])
        picks = message["picks"]
        windows: list[list[float]] = []
        if picks:
            periods = [
                calendar.period_at(int(server) - self.lo, float(st))
                for server, st in picks
            ]
            for period in periods:
                if not period.is_feasible(start, end):
                    raise ValueError(
                        f"stale pick: {period} cannot host [{start}, {end})"
                    )
            calendar.allocate(
                periods,
                start,
                end,
                rid=rid,
                remnant_uids=[int(u) for u in message["remnant_uids"]],
            )
            windows = [[period.server, start, end] for period in periods]
        response = {"ok": True, "committed": len(windows)}
        self._committed[rid] = {"response": response, "windows": windows}
        return response

    def _op_shard_abort(self, message: dict[str, Any]) -> dict[str, Any]:
        """Compensate a commit whose sibling shard failed (reserve-or-release).

        Unreachable while the coordinator serializes decisions — kept so
        the all-or-nothing contract holds under any future reordering.
        The released periods get *fresh local* uids, a documented drift
        from coordinator numbering; an abort therefore also invalidates
        bit-identity until the next snapshot/restore.
        """
        rid = int(message["rid"])
        record = self._committed.pop(rid, None)
        released = 0
        if record is not None and self.calendar is not None:
            for server, start, end in record["windows"]:
                self.calendar.release(int(server), float(start), float(end))
                released += 1
        return {"ok": True, "released": released}

    def _op_shard_release(self, message: dict[str, Any]) -> dict[str, Any]:
        """Release cancelled windows, with coordinator-assigned merge uids."""
        calendar = self._advance(message)
        self.hwm = int(message["hwm"])
        for server, lo, hi, uid in message["windows"]:
            calendar.release(int(server) - self.lo, float(lo), float(hi), uid=int(uid))
        return {"ok": True, "released": len(message["windows"])}

    def _op_shard_range(self, message: dict[str, Any]) -> dict[str, Any]:
        """This shard's full (uncapped) contribution to a range search."""
        calendar = self._advance(message)
        ta, tb = float(message["ta"]), float(message["tb"])
        q = calendar.slot_of(ta)
        if not calendar._base_slot <= q < calendar._base_slot + calendar.q_slots:
            return {"ok": True, "bounded": [], "tails": []}
        tree = calendar._trees[q]
        _, marks = tree.phase1(ta)
        bounded = tree.phase2(marks, tb, math.inf) or []
        tail_count = calendar._tail_candidates(ta)
        tails = calendar._inf_periods[:tail_count]
        return {
            "ok": True,
            "bounded": [[p.et, p.uid, self.lo + p.server, p.st] for p in bounded],
            "tails": [[p.st, p.uid, self.lo + p.server] for p in tails],
        }

    def _op_shard_export(self, message: dict[str, Any]) -> dict[str, Any]:
        assert self.calendar is not None
        state = self.calendar.export_state()
        return {
            "ok": True,
            "lo": self.lo,
            "hwm": self.hwm,
            "state": state,
            "checksum": state_checksum(state),
        }

    def _op_shard_pool(self, message: dict[str, Any]) -> dict[str, Any]:
        """This shard's slice of the pool: per-server status and drain flags.

        Advances to the coordinator clock first, so drained-ness is
        judged at the same instant a single calendar would use.
        """
        calendar = self._advance(message)
        return {
            "ok": True,
            "lo": self.lo,
            "pool": [calendar.server_status(s) for s in range(calendar.n_servers)],
            "drained": [calendar.is_drained(s) for s in range(calendar.n_servers)],
        }

    def _op_shard_status(self, message: dict[str, Any]) -> dict[str, Any]:
        assert self.calendar is not None
        return {
            "ok": True,
            "pid": os.getpid(),
            "lo": self.lo,
            "n_servers": self.calendar.n_servers,
            "now": self.calendar.now,
            "hwm": self.hwm,
        }

    def _op_shard_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "bye": True}


# ----------------------------------------------------------------------
# subprocess worker
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """Serve one shard over a single blocking NDJSON connection."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro-shard")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args(argv)

    listener = socket.create_server((args.host, args.port))
    host, port = listener.getsockname()[:2]
    print(f"repro shard: listening on {host}:{port}", flush=True)

    state = ShardState()
    conn, _ = listener.accept()
    listener.close()
    stream = conn.makefile("rwb")
    try:
        while True:
            raw = stream.readline(SHARD_MAX_LINE_BYTES)
            if not raw:
                # coordinator gone: crash-stop, never serve without one
                return 0
            if not raw.endswith(b"\n"):
                # readline() hit the byte cap mid-line: the next read would
                # start mid-JSON and corrupt framing — die loudly instead
                print(
                    f"repro shard: request line exceeds {SHARD_MAX_LINE_BYTES} bytes",
                    file=sys.stderr,
                    flush=True,
                )
                return 1
            try:
                message = json.loads(raw)
            except json.JSONDecodeError as exc:
                response: dict[str, Any] = {"ok": False, "error": f"bad json: {exc}"}
            else:
                response = state.apply(message)
            stream.write(json.dumps(response, separators=(",", ":")).encode() + b"\n")
            stream.flush()
            if response.get("bye"):
                return 0
    finally:
        try:
            stream.close()
            conn.close()
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
