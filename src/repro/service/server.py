"""The asyncio reservation server behind ``repro serve``.

Architecture: **single-writer actor**.  One task — :meth:`_actor_loop` —
owns the :class:`~repro.facade.CoAllocationScheduler` and is the only
code that ever mutates (or even reads) the calendar.  Connection
handlers parse lines, run admission control, and enqueue
``(message, future)`` pairs; the actor drains the queue in micro-batches
(:func:`~repro.service.batching.drain_batch`), applies each operation
back-to-back without yielding, and resolves the futures.  Responses are
written back per connection in request order, so pipelined clients
correlate FIFO.  Lint rule ``RA009`` enforces the actor boundary
statically: no ``async def`` outside the actor may call the blocking
commit path.

**Virtual clock.** The calendar's clock advances from request-carried
submission times (``advance(max(now, q_r))``), never from the wall
clock.  Replaying the same request stream therefore yields bit-identical
accept/reject decisions regardless of pacing, batching boundaries, or a
kill/restart from snapshot in the middle — the property
``benchmarks/bench_service.py`` certifies.

**Exactly-once.** Every ``reserve`` verdict is recorded in a decision
log keyed by ``rid``; a resent rid (an at-least-once client retrying
after a connection loss) is answered with the recorded verdict instead
of being scheduled twice.  The log rides inside snapshots, so the
guarantee spans restarts.

**Sharding.** With ``shards > 1`` the calendar is partitioned across K
shard subprocesses behind an
:class:`~repro.service.coordinator.AsyncShardedScheduler`; the actor
stays the single writer, it just awaits scatter/merge rounds instead of
calling a local calendar.  Decisions are bit-identical to the unsharded
server over the same stream (the differential oracle gates this), and
snapshots stay K-agnostic: the coordinated export assembles the exact
single-calendar state, so a snapshot taken at K=4 restores at K=1 and
vice versa.  A lost shard is a **crash-stop**: the service answers the
in-flight op with ``INTERNAL``, refuses new work, and exits *without*
snapshotting (the state may be mid-commit); the supervisor restarts all
K shards from the last coordinated snapshot and determinism re-decides
the lost window identically.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any

from ..errors import (
    ConflictError,
    MalformedRequestError,
    NotFoundError,
    ReproError,
    ShuttingDownError,
    error_payload,
)
from ..facade import CoAllocationScheduler
from .admission import AdmissionController
from .autoscale import AutoScaleConfig, AutoScaler
from .batching import drain_batch
from .coordinator import AsyncShardedScheduler, ShardFailureError, ShardProtocolError
from .declog import (
    DecisionLog,
    decide_admin,
    decide_cancel,
    decide_reserve,
    decision_message,
    entry_from_outcome,
)
from .metrics import ServiceMetrics
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    request_from_payload,
)
from .snapshot import read_snapshot, write_snapshot

__all__ = ["ServiceConfig", "ReservationService", "accepted_checksum", "serve_forever"]

#: ops that pass through admission control; introspection and lifecycle
#: ops are always admitted so operators can reach an overloaded server
_CONTROLLED_OPS = frozenset({"reserve", "probe", "cancel"})


@dataclass(slots=True)
class ServiceConfig:
    """Operational knobs for one server instance (see ``docs/service.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the chosen port is printed/exposed
    n_servers: int = 64
    tau: float = 900.0
    q_slots: int = 96
    delta_t: float | None = None
    r_max: int | None = None
    snapshot_path: str | None = None
    max_queue: int = 1024
    max_delay: float = 5.0
    max_batch: int = 64
    metrics_interval: float = 0.0  # seconds; 0 disables the periodic log line
    probe_limit: int = 64  # max idle periods returned per probe
    shards: int = 1  # calendar shard subprocesses (1 = in-process calendar)
    log_dir: str | None = None  # decision-log directory (None disables the log)
    log_segment_bytes: int = 1 << 20  # rotate segments at this size
    log_tail_limit: int = 512  # default/max records per log_tail answer
    log_cursor_ttl: float = 900.0  # drop follower cursors idle this long (s)
    autoscale: AutoScaleConfig | None = None  # None disables the scaler task


def accepted_checksum(decided: dict[int, dict[str, Any]]) -> str:
    """Digest over every accepted reservation, in rid order.

    Two servers that granted the same reservations — e.g. an
    uninterrupted run vs. a kill/restart-from-snapshot run over the same
    trace — produce equal checksums.
    """
    digest = hashlib.sha256()
    for rid in sorted(decided):
        entry = decided[rid]
        if entry.get("ok"):
            digest.update(
                f"{rid}:{entry['start']}:{entry['end']}:{entry['servers']}\n".encode()
            )
    return digest.hexdigest()[:16]


class ReservationService:
    """One server instance: scheduler, actor, admission, telemetry."""

    def __init__(self, config: ServiceConfig, state: dict[str, Any] | None = None) -> None:
        self.config = config
        self.restored = state is not None
        self.crashed = False
        self._sharded = config.shards > 1
        #: scheduler state to load into the shards during :meth:`start`
        self._restore_scheduler_state: dict[str, Any] | None = None
        if state is not None:
            self._decided: dict[int, dict[str, Any]] = {
                int(rid): entry for rid, entry in state.get("decided", {}).items()
            }
            #: aid-keyed exactly-once table for pool-mutating admin ops
            self._admin_decided: dict[str, dict[str, Any]] = {
                str(aid): entry
                for aid, entry in state.get("admin_decided", {}).items()
            }
            if self._sharded:
                scheduler_state = state["scheduler"]
                calendar_state = scheduler_state["calendar"]
                # snapshots are K-agnostic: restore reads the exact
                # single-calendar format regardless of the writer's K
                self.scheduler: Any = AsyncShardedScheduler(
                    n_servers=int(calendar_state["n_servers"]),
                    tau=float(calendar_state["tau"]),
                    q_slots=int(calendar_state["q_slots"]),
                    delta_t=float(scheduler_state["delta_t"]),
                    r_max=int(scheduler_state["r_max"]),
                    start_time=float(calendar_state["now"]),
                    shards=config.shards,
                )
                self._restore_scheduler_state = scheduler_state
            else:
                self.scheduler = CoAllocationScheduler.from_state(state["scheduler"])
        else:
            self._decided = {}
            self._admin_decided = {}
            scheduler_cls = AsyncShardedScheduler if self._sharded else CoAllocationScheduler
            kwargs: dict[str, Any] = {}
            if self._sharded:
                kwargs["shards"] = config.shards
            self.scheduler = scheduler_cls(
                n_servers=config.n_servers,
                tau=config.tau,
                q_slots=config.q_slots,
                delta_t=config.delta_t,
                r_max=config.r_max,
                **kwargs,
            )
        self.admission = AdmissionController(
            max_depth=config.max_queue, max_delay=config.max_delay
        )
        self._log: DecisionLog | None = None
        if config.log_dir:
            self._log = DecisionLog(
                config.log_dir,
                config.log_segment_bytes,
                cursor_ttl=config.log_cursor_ttl,
            )
            # a restored snapshot says how far the durable history reached;
            # a fresh boot starts the numbering at zero either way
            log_hwm = int(state.get("log_hwm", 0)) if state is not None else 0
            self._log.align(log_hwm)
        self.metrics = ServiceMetrics()
        self.autoscaler: AutoScaler | None = (
            AutoScaler(config.autoscale) if config.autoscale is not None else None
        )
        self._queue: asyncio.Queue[tuple[dict[str, Any], float, asyncio.Future]] = (
            asyncio.Queue()
        )
        self._stopping = False
        self._started = perf_counter()
        self._server: asyncio.base_events.Server | None = None
        self._actor_task: asyncio.Task | None = None
        self._metrics_task: asyncio.Task | None = None
        self._autoscale_task: asyncio.Task | None = None
        self._stopped: asyncio.Event = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        #: responses enqueued to connection writers but not yet flushed;
        #: shutdown waits for this to reach zero before closing sockets
        self._pending_responses = 0

    @classmethod
    def create(cls, config: ServiceConfig) -> "ReservationService":
        """Build a service, restoring from ``config.snapshot_path`` if present."""
        if config.snapshot_path and Path(config.snapshot_path).exists():
            state = read_snapshot(config.snapshot_path)
            return cls(config, state=state)
        return cls(config)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and launch the actor (and metrics) tasks."""
        if self._sharded:
            # spawn and load the shard workers before accepting clients,
            # so a failed spawn aborts boot instead of shedding requests
            await self.scheduler.start(self._restore_scheduler_state)
            self._restore_scheduler_state = None
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._actor_task = asyncio.create_task(self._actor_loop(), name="repro-actor")
        if self.config.metrics_interval > 0:
            self._metrics_task = asyncio.create_task(
                self._metrics_loop(), name="repro-metrics"
            )
        if self.autoscaler is not None:
            self._autoscale_task = asyncio.create_task(
                self._autoscale_loop(), name="repro-autoscale"
            )

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`stop`) completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """External graceful stop: snapshot (if configured) and shut down."""
        if not self._stopping:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            await self._queue.put(({"op": "shutdown"}, perf_counter(), future))
            await future
        await self.wait_stopped()

    async def _finalize(self) -> None:
        """Close the listener and connections once the actor has drained."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
        # let the connection writers flush already-resolved responses —
        # notably the shutdown acknowledgement itself — before the
        # sockets close; bounded so a client that stopped reading cannot
        # hold shutdown hostage
        deadline = asyncio.get_running_loop().time() + 2.0
        while self._pending_responses > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0)
        for writer in list(self._writers):
            with _suppress_connection_errors():
                writer.close()
        if self._sharded:
            await self.scheduler.stop()
        if self._log is not None:
            self._log.close()
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling (no calendar access here — actor only)
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        responses: asyncio.Queue[asyncio.Future | None] = asyncio.Queue()
        self._writers.add(writer)
        writer_task = asyncio.create_task(self._connection_writer(writer, responses))
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ValueError, asyncio.IncompleteReadError):
                    # over-long line: unrecoverable framing, close the stream
                    future = loop.create_future()
                    future.set_result(
                        _error_response(
                            {}, ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
                        )
                    )
                    self._pending_responses += 1
                    await responses.put(future)
                    self.metrics.malformed += 1
                    break
                if not raw:
                    break  # EOF
                if not raw.strip():
                    continue
                future = loop.create_future()
                self._ingest(raw, future)
                self._pending_responses += 1
                await responses.put(future)
        finally:
            await responses.put(None)
            await writer_task
            self._writers.discard(writer)

    def _ingest(self, raw: bytes, future: asyncio.Future) -> None:
        """Parse, admit and enqueue one request line (or fail it fast)."""
        try:
            message = decode_line(raw)
        except ProtocolError as exc:
            self.metrics.malformed += 1
            future.set_result(_error_response({}, exc))
            return
        if self._stopping:
            future.set_result(
                _error_response(message, ShuttingDownError("server is shutting down"))
            )
            return
        if message["op"] in _CONTROLLED_OPS:
            try:
                self.admission.admit()
            except ReproError as exc:  # BusyError
                self.metrics.shed += 1
                future.set_result(_error_response(message, exc))
                return
            self._queue.put_nowait((message, perf_counter(), future))
        else:
            # lifecycle/introspection ops bypass admission but still run
            # on the actor so every calendar read is single-threaded
            self._queue.put_nowait((message, perf_counter(), future))

    async def _connection_writer(
        self, writer: asyncio.StreamWriter, responses: asyncio.Queue
    ) -> None:
        """Write responses in request order; tolerate a vanished client."""
        alive = True
        while True:
            future = await responses.get()
            if future is None:
                break
            response = await _result_of(future)
            try:
                if not alive:
                    continue  # keep consuming futures so the actor never blocks
                try:
                    writer.write(encode(response))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    alive = False
            finally:
                self._pending_responses -= 1
        with _suppress_connection_errors():
            writer.close()

    # ------------------------------------------------------------------
    # the single-writer actor
    # ------------------------------------------------------------------

    async def _actor_loop(self) -> None:
        """Sole owner of the scheduler; drains the queue in micro-batches."""
        while not self._stopping:
            batch = await drain_batch(self._queue, self.config.max_batch)
            self.metrics.record_batch(len(batch))
            # unsharded, the handlers never suspend, so the batch applies
            # atomically; sharded, the actor awaits shard round-trips but
            # remains the only task that ever touches the scheduler — the
            # single-writer argument is ownership, not non-suspension
            for message, enqueued_at, future in batch:
                started = perf_counter()
                if self._stopping:
                    response = _error_response(
                        message, ShuttingDownError("server is shutting down")
                    )
                else:
                    response = await self._actor_apply(message)
                service_time = perf_counter() - started
                self.metrics.record_op(
                    message["op"], started - enqueued_at, service_time
                )
                if message["op"] in _CONTROLLED_OPS:
                    self.admission.release(service_time, started - enqueued_at)
                if not future.done():
                    future.set_result(response)
        # drain stragglers, then tear down
        while not self._queue.empty():
            message, _, future = self._queue.get_nowait()
            if message["op"] in _CONTROLLED_OPS:
                self.admission.release()
            if not future.done():
                future.set_result(
                    _error_response(message, ShuttingDownError("server is shutting down"))
                )
        await self._finalize()

    async def _metrics_loop(self) -> None:
        interval = self.config.metrics_interval
        while True:
            await asyncio.sleep(interval)
            line = json.dumps(
                {
                    "uptime_s": round(perf_counter() - self._started, 1),
                    "admission": self.admission.summary(),
                    **self.metrics.summary(),
                },
                sort_keys=True,
            )
            print(f"repro serve metrics: {line}", file=sys.stderr, flush=True)

    async def _autoscale_loop(self) -> None:
        """Tick the auto-scaler; apply its plan through the actor queue.

        Never touches the scheduler directly: the pool read and every
        admin mutation are enqueued like any other wire op, so the
        single-writer discipline (and the decision log, and exactly-once
        aids) apply unchanged.  In dry-run mode :meth:`AutoScaler.plan`
        records what it would do and returns no messages.
        """
        assert self.autoscaler is not None
        interval = self.autoscaler.config.interval
        loop = asyncio.get_running_loop()
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping:
                break
            future: asyncio.Future = loop.create_future()
            await self._queue.put(({"op": "pool_status"}, perf_counter(), future))
            pool = await _result_of(future)
            if not pool.get("ok"):
                continue
            decision, messages = self.autoscaler.plan(
                self.admission.telemetry(), pool
            )
            for message in messages:
                future = loop.create_future()
                await self._queue.put((message, perf_counter(), future))
                response = await _result_of(future)
                if not response.get("ok"):
                    print(
                        f"repro serve autoscale: {message['op']} refused: "
                        f"{response.get('error')}",
                        file=sys.stderr,
                        flush=True,
                    )
            if decision.direction != "hold":
                print(
                    f"repro serve autoscale: {decision.direction} x{decision.count} "
                    f"({decision.reason})"
                    + (" [dry-run]" if self.autoscaler.config.dry_run else ""),
                    file=sys.stderr,
                    flush=True,
                )

    # ------------------------------------------------------------------
    # operation application (actor-confined; the only scheduler caller)
    # ------------------------------------------------------------------

    async def _actor_apply(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message["op"]
        try:
            handler = getattr(self, f"_actor_apply_{op}")
            response = await handler(message)
        except (ShardFailureError, ShardProtocolError) as exc:
            # crash-stop: a dead shard (or a broken cross-shard commit)
            # means the distributed calendar may be inconsistent; answer
            # this op, refuse new work, and exit WITHOUT snapshotting
            self.crashed = True
            self._stopping = True
            self.metrics.errors += 1
            print(
                f"repro serve: shard failure, crash-stopping: {exc}",
                file=sys.stderr,
                flush=True,
            )
            response = _error_response(message, exc)
        except ReproError as exc:
            response = _error_response(message, exc)
        except Exception as exc:  # never kill the actor on one bad op
            self.metrics.errors += 1
            response = _error_response(message, exc)
        if "seq" in message:
            response["seq"] = message["seq"]
        return response

    async def _actor_apply_reserve(self, message: dict[str, Any]) -> dict[str, Any]:
        rid = int(message["rid"])
        recorded = self._decided.get(rid)
        if recorded is not None:
            # at-least-once client, exactly-once decision: replay the verdict
            self.metrics.replayed += 1
            response = dict(recorded)
            response.update(op="reserve", rid=rid, replayed=True)
            return response
        if self._sharded:
            entry = await self._actor_decide_reserve_sharded(message)
        else:
            # the shared decision path (declog.decide_reserve) is exactly
            # what the warm-standby follower replays against the log
            entry = decide_reserve(self.scheduler, message)
        self._decided[rid] = entry
        self._record_decision("reserve", message, entry)
        if entry["ok"]:
            self.metrics.record_accept(entry["attempts"])
            return {"op": "reserve", "rid": rid, **entry}
        error = entry["error"]
        if error.get("code") == "REJECTED":
            self.metrics.record_reject(error["reason"], error["attempts"])
        else:
            self.metrics.malformed += 1
        return {"ok": False, "op": "reserve", "rid": rid, "error": error}

    async def _actor_decide_reserve_sharded(
        self, message: dict[str, Any]
    ) -> dict[str, Any]:
        """The sharded twin of :func:`~repro.service.declog.decide_reserve`."""
        try:
            request = request_from_payload(message)
        except MalformedRequestError as exc:
            return {"ok": False, "error": exc.payload()}
        # the virtual clock: simulated time only ever advances from
        # request-carried submission times, keeping replays deterministic
        self.scheduler.advance(max(self.scheduler.now, request.qr))
        outcome = await self.scheduler.schedule_detailed(request)
        return entry_from_outcome(outcome)

    def _record_decision(
        self, kind: str, message: dict[str, Any], verdict: dict[str, Any]
    ) -> None:
        """Append one fresh decision to the replication log (if enabled)."""
        if self._log is not None:
            self._log.append(kind, decision_message(kind, message), verdict)

    async def _actor_apply_probe(self, message: dict[str, Any]) -> dict[str, Any]:
        ta, tb = float(message["ta"]), float(message["tb"])
        if not ta < tb:
            raise MalformedRequestError(f"probe window [{ta}, {tb}) is empty")
        limit = int(message.get("limit") or self.config.probe_limit)
        periods = self.scheduler.range_search(ta, tb)
        if asyncio.iscoroutine(periods):
            periods = await periods
        return {
            "ok": True,
            "op": "probe",
            "count": len(periods),
            "periods": [
                [p.server, p.st, None if p.et == float("inf") else p.et]
                for p in periods[:limit]
            ],
        }

    async def _actor_apply_cancel(self, message: dict[str, Any]) -> dict[str, Any]:
        rid = int(message["rid"])
        if self._sharded:
            try:
                await self.scheduler.cancel(rid)
                verdict: dict[str, Any] = {"ok": True}
            except NotFoundError as exc:
                verdict = {"ok": False, "error": exc.payload()}
        else:
            verdict = decide_cancel(self.scheduler, rid)
        self._record_decision("cancel", message, verdict)
        return {"op": "cancel", "rid": rid, **verdict}

    # -- elastic pool (admin wire ops) ---------------------------------

    async def _actor_apply_add_servers(self, message: dict[str, Any]) -> dict[str, Any]:
        return await self._apply_admin_op("add_servers", message)

    async def _actor_apply_drain(self, message: dict[str, Any]) -> dict[str, Any]:
        return await self._apply_admin_op("drain", message)

    async def _actor_apply_remove(self, message: dict[str, Any]) -> dict[str, Any]:
        return await self._apply_admin_op("remove", message)

    async def _apply_admin_op(
        self, kind: str, message: dict[str, Any]
    ) -> dict[str, Any]:
        """One pool mutation: aid-replayed, logged, snapshot-durable.

        Mirrors the ``reserve`` discipline — an ``aid`` (admin
        idempotency token) that was already decided is answered with the
        recorded verdict, fresh verdicts (including MALFORMED/CONFLICT
        refusals) go through the shared decision path and into the
        replication log, and the aid table rides inside snapshots so a
        resent ``drain`` after a kill/restart stays exactly-once.
        """
        aid = message.get("aid")
        if aid is not None:
            recorded = self._admin_decided.get(str(aid))
            if recorded is not None:
                self.metrics.replayed += 1
                response = dict(recorded)
                response.update(op=kind, aid=aid, replayed=True)
                return response
        if self._sharded:
            verdict = await self._actor_decide_admin_sharded(kind, message)
        else:
            verdict = decide_admin(self.scheduler, kind, message)
        if aid is not None:
            self._admin_decided[str(aid)] = verdict
        self._record_decision(kind, message, verdict)
        response = {"op": kind, **verdict}
        if aid is not None:
            response["aid"] = aid
        return response

    async def _actor_decide_admin_sharded(
        self, kind: str, message: dict[str, Any]
    ) -> dict[str, Any]:
        """The sharded twin of :func:`~repro.service.declog.decide_admin`.

        Shard failures propagate (crash-stop); only the scheduler's own
        typed refusals become ``ok: false`` verdicts.
        """
        qr = message.get("qr")
        if qr is not None:
            self.scheduler.advance(max(self.scheduler.now, float(qr)))
        try:
            if kind == "add_servers":
                new_ids = await self.scheduler.add_servers(int(message["count"]))
                return {
                    "ok": True,
                    "servers": new_ids,
                    "n_servers": self.scheduler.n_servers,
                }
            if kind == "drain":
                return {"ok": True, **await self.scheduler.drain(int(message["server"]))}
            if kind == "remove":
                return {"ok": True, **await self.scheduler.remove(int(message["server"]))}
        except (MalformedRequestError, ConflictError) as exc:
            return {"ok": False, "error": exc.payload()}
        raise ValueError(f"not an admin decision kind: {kind!r}")

    async def _actor_apply_pool_status(self, message: dict[str, Any]) -> dict[str, Any]:
        pool = self.scheduler.pool_status()
        if asyncio.iscoroutine(pool):
            pool = await pool
        return {"ok": True, "op": "pool_status", **pool}

    async def _actor_apply_log_tail(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._log is None:
            raise MalformedRequestError(
                "decision log disabled: start the server with --log-dir"
            )
        cursor = int(message["cursor"])
        limit = min(
            int(message.get("limit") or self.config.log_tail_limit),
            self.config.log_tail_limit,
        )
        follower_id = message.get("follower_id")
        if follower_id:
            self._log.register_cursor(str(follower_id), cursor)
        return {
            "ok": True,
            "op": "log_tail",
            "hwm": self._log.hwm,
            "base": self._log.base,
            "records": self._log.tail(cursor, limit),
        }

    async def _actor_apply_status(self, message: dict[str, Any]) -> dict[str, Any]:
        response = {
            "ok": True,
            "op": "status",
            "protocol": PROTOCOL_VERSION,
            "now": self.scheduler.now,
            "n_servers": self.scheduler.n_servers,
            "tau": self.scheduler.calendar.tau,
            "q_slots": self.scheduler.calendar.q_slots,
            "delta_t": (
                self.scheduler.delta_t
                if self._sharded
                else self.scheduler.allocator.delta_t
            ),
            "r_max": (
                self.scheduler.r_max if self._sharded else self.scheduler.allocator.r_max
            ),
            "uptime_s": round(perf_counter() - self._started, 3),
            "restored": self.restored,
            "stopping": self._stopping,
            "decided": len(self._decided),
            "admin_decided": len(self._admin_decided),
            "active_allocations": len(self.scheduler._allocations),
            "accepted_checksum": accepted_checksum(self._decided),
            "admission": self.admission.summary(),
            "metrics": self.metrics.summary(),
        }
        pool = self.scheduler.pool_status()
        if asyncio.iscoroutine(pool):
            pool = await pool
        response["pool"] = {
            key: pool[key] for key in ("active", "draining", "removed", "total")
        }
        if self.autoscaler is not None:
            response["autoscale"] = self.autoscaler.summary()
        if self._sharded:
            response["shards"] = {
                "count": self.config.shards,
                "hwm": self.scheduler.hwm,
                "pids": self.scheduler.shard_pids(),
                "ports": self.scheduler.shard_ports(),
            }
        if self._log is not None:
            response["log"] = self._log.summary()
        return response

    async def _actor_apply_snapshot(self, message: dict[str, Any]) -> dict[str, Any]:
        path = message.get("path") or self.config.snapshot_path
        if not path:
            raise MalformedRequestError(
                "no snapshot path: pass \"path\" or start the server with --snapshot-path"
            )
        state = await self._actor_state()
        meta = write_snapshot(path, state)
        self.metrics.snapshots += 1
        if "sharded" in state:
            meta = {**meta, "sharded": state["sharded"]}
        if self._log is not None:
            # everything below the snapshot (and every follower cursor)
            # is now durable elsewhere: drop the covered whole segments
            meta = {**meta, "log_compacted": self._log.compact(state["log_hwm"])}
        return {"ok": True, "op": "snapshot", **meta}

    async def _actor_apply_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        self._stopping = True
        meta = None
        if self.config.snapshot_path:
            state = await self._actor_state()
            meta = write_snapshot(self.config.snapshot_path, state)
            self.metrics.snapshots += 1
            if self._log is not None:
                self._log.compact(state["log_hwm"])
        return {
            "ok": True,
            "op": "shutdown",
            "snapshot": meta,
            "accepted_checksum": accepted_checksum(self._decided),
        }

    async def _actor_state(self) -> dict[str, Any]:
        """Full service state for a snapshot (coordinated across shards).

        The actor's serial execution *is* the quiescence the coordinated
        snapshot needs: no decision is in flight while this runs, so all
        K shards export at the same high-water mark (asserted by the
        coordinator).  The scheduler state keeps the single-calendar
        format either way; sharded runs add a ``sharded`` section with
        the per-shard and combined checksums.
        """
        if self._sharded:
            scheduler_state, sharded_meta = await self.scheduler.export_full()
        else:
            scheduler_state, sharded_meta = self.scheduler.export_state(), None
        state = {
            "scheduler": scheduler_state,
            "decided": {str(rid): self._decided[rid] for rid in sorted(self._decided)},
            "admin_decided": {
                aid: self._admin_decided[aid] for aid in sorted(self._admin_decided)
            },
            "log_hwm": self._log.hwm if self._log is not None else 0,
        }
        if sharded_meta is not None:
            state["sharded"] = sharded_meta
        return state


def _error_response(message: dict[str, Any], exc: BaseException) -> dict[str, Any]:
    response: dict[str, Any] = {
        "ok": False,
        "op": message.get("op"),
        "error": error_payload(exc),
    }
    if "rid" in message:
        response["rid"] = message["rid"]
    if "seq" in message:
        response["seq"] = message["seq"]
    return response


async def _result_of(future: asyncio.Future) -> dict[str, Any]:
    try:
        return await future
    except Exception as exc:  # defensive: a failed future still gets answered
        return _error_response({}, exc)


class _suppress_connection_errors:
    """``contextlib.suppress`` for the write-side teardown races."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: Any) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, RuntimeError, OSError)
        )


async def serve_forever(config: ServiceConfig, ready_line: bool = True) -> bool:
    """Boot a service and run until a ``shutdown`` op stops it.

    Prints a parseable ``listening on HOST:PORT`` line to stdout once
    bound (``repro loadgen`` and the CI smoke job read it to discover an
    ephemeral port).  Returns ``True`` if the service crash-stopped on a
    shard failure (the CLI maps that to a non-zero exit).
    """
    service = ReservationService.create(config)
    await service.start()
    if ready_line:
        extra = " (restored from snapshot)" if service.restored else ""
        shard_note = f", shards={config.shards}" if config.shards > 1 else ""
        print(
            f"repro serve: listening on {config.host}:{service.port} "
            f"(N={service.scheduler.n_servers}, tau={service.scheduler.calendar.tau:g}, "
            f"Q={service.scheduler.calendar.q_slots}{shard_note}){extra}",
            flush=True,
        )
    try:
        await service.wait_stopped()
    except asyncio.CancelledError:
        await service.stop()
        raise
    return service.crashed
