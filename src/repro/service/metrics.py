"""Per-request service telemetry.

The server records, for every operation that passes through the actor:
queue wait (admission to dequeue), service time (actor processing), and
the outcome class (accepted / rejected-by-reason / shed / malformed /
error).  Percentiles come from bounded sliding windows — a standing
server must not grow its telemetry without bound — and ``status``
responses plus the periodic ``--metrics-interval`` log line both render
:meth:`ServiceMetrics.summary`.
"""

from __future__ import annotations

import math
from collections import Counter, deque

__all__ = ["LatencyWindow", "ReservoirWindow", "ServiceMetrics"]


class ReservoirWindow:
    """Bounded sample window with percentile queries (seconds in, ms out)."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) over the window, milliseconds.

        Nearest-rank: the value at rank ``ceil(p/100 * n)`` (1-based),
        clamped to ``[1, n]`` so p=0 is the minimum, p=100 the maximum,
        a single-sample window always answers its lone sample, and an
        empty window answers 0.0 rather than indexing off the end.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        n = len(self._samples)
        if n == 0:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(n, max(1, math.ceil(p / 100.0 * n)))
        return ordered[rank - 1] * 1000.0

    def summary(self) -> dict[str, float]:
        mean_ms = (self.total / self.count * 1000.0) if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean_ms, 4),
            "p50_ms": round(self.percentile(50), 4),
            "p95_ms": round(self.percentile(95), 4),
            "p99_ms": round(self.percentile(99), 4),
        }


# Historical name from before the window grew reservoir semantics; the
# loadgen and external callers still import it.
LatencyWindow = ReservoirWindow


class ServiceMetrics:
    """Counters and latency windows for one server lifetime."""

    def __init__(self, window: int = 4096) -> None:
        self.service = ReservoirWindow(window)
        self.queue_wait = ReservoirWindow(window)
        self.ops: Counter[str] = Counter()
        self.accepted = 0
        self.rejected: Counter[str] = Counter()  # keyed by retry-policy reason
        self.replayed = 0  # duplicate rids answered from the decision log
        self.shed = 0
        self.malformed = 0
        self.errors = 0
        self.retries = 0  # scheduling attempts beyond the first, summed
        self.batches = 0
        self.batched_ops = 0
        self.max_batch = 0
        self.snapshots = 0

    # -- recording ------------------------------------------------------

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_ops += size
        if size > self.max_batch:
            self.max_batch = size

    def record_op(self, op: str, queue_wait: float, service: float) -> None:
        self.ops[op] += 1
        self.queue_wait.observe(queue_wait)
        self.service.observe(service)

    def record_accept(self, attempts: int) -> None:
        self.accepted += 1
        self.retries += max(0, attempts - 1)

    def record_reject(self, reason: str | None, attempts: int) -> None:
        self.rejected[reason or "unknown"] += 1
        self.retries += max(0, attempts - 1)

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict[str, object]:
        mean_batch = self.batched_ops / self.batches if self.batches else 0.0
        return {
            "ops": dict(self.ops),
            "accepted": self.accepted,
            "rejected": dict(self.rejected),
            "rejected_total": sum(self.rejected.values()),
            "replayed": self.replayed,
            "shed": self.shed,
            "malformed": self.malformed,
            "errors": self.errors,
            "retries": self.retries,
            "batches": self.batches,
            "mean_batch": round(mean_batch, 3),
            "max_batch": self.max_batch,
            "snapshots": self.snapshots,
            "service_latency": self.service.summary(),
            "queue_wait": self.queue_wait.summary(),
        }
