"""`repro loadgen` — open-loop trace replay against a running server.

The generator streams SWF-derived requests (a real ``.swf`` log, or the
synthetic archive models) over one pipelined TCP connection at a target
wall-clock send rate.  Open-loop means send times are scheduled by the
arrival process alone — a slow server grows its backlog instead of
slowing the client, which is what exercises admission control honestly.

Every response is re-verified against a client-side **shadow ledger**
that trusts nothing the server says: an accepted reservation must start
no earlier than its requested ``s_r``, and must not overlap any other
accepted reservation on any of its servers.  Any violation fails the run
(and the CI smoke job).  The ledger also computes the same
accepted-reservation checksum the server exposes via ``status``, so an
uninterrupted replay and a kill/restart-from-snapshot replay can be
compared end to end.

On connection loss the client reconnects and resends every unacknowledged
request; the server's rid-keyed decision log makes that exactly-once.

``transport="http"`` replays the same trace through the HTTP/JSON
gateway (``repro gateway``) instead: requests become pipelined
``POST /v1/reserve`` exchanges on one keep-alive connection, and because
the gateway passes backend bodies through verbatim, the shadow ledger,
checksums and report are computed by exactly the same code either way.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from bisect import bisect_right, insort
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from time import perf_counter
from typing import Any, Iterable, Iterator

from ..core.types import Request
from .metrics import LatencyWindow
from .protocol import MAX_LINE_BYTES, encode

__all__ = [
    "LoadgenConfig",
    "OpenLoopPacer",
    "ShadowLedger",
    "run_loadgen",
    "request_source",
]


@dataclass(slots=True)
class LoadgenConfig:
    """One replay run (see ``repro loadgen --help``)."""

    host: str = "127.0.0.1"
    port: int = 0
    swf: str | None = None  # replay this SWF log instead of synthesizing
    workload: str = "KTH"
    jobs: int = 2000
    seed: int = 42
    rho: float = 0.0  # advance-reservation fraction (synthetic source only)
    rate: float = 0.0  # sends/sec wall clock; 0 = as fast as possible
    window: int = 0  # max unacknowledged in flight; 0 = unbounded
    offset: int = 0  # skip this many requests (resume support)
    limit: int | None = None  # send at most this many (None = all)
    ledger_in: str | None = None  # preload accepted reservations (resume)
    ledger_out: str | None = None  # dump the final ledger here
    out: str | None = None  # write the BENCH_service.json report here
    shutdown: bool = False  # send a shutdown op once the replay drains
    reconnect: int = 5  # reconnect attempts on connection loss
    report_violations: int = 50  # violations listed verbatim in the report
    transport: str = "tcp"  # "tcp" (NDJSON) or "http" (via repro gateway)
    token: str | None = None  # bearer token for the http transport


class ShadowLedger:
    """Client-side double-entry book of accepted reservations.

    Maintains per-server interval lists sorted by start time; recording
    a reservation costs ``O(log k)`` per server via bisect.
    """

    def __init__(self) -> None:
        self.entries: dict[int, dict[str, Any]] = {}
        self._busy: dict[int, list[tuple[float, float, int]]] = {}
        self.violations: list[dict[str, Any]] = []

    def record(
        self, rid: int, sr: float, start: float, end: float, servers: list[int]
    ) -> None:
        """Book one accepted reservation, logging every contract breach."""
        if rid in self.entries:
            self.violations.append(
                {"kind": "duplicate_accept", "rid": rid, "detail": "rid accepted twice"}
            )
            return
        if start < sr:
            self.violations.append(
                {
                    "kind": "early_start",
                    "rid": rid,
                    "detail": f"start {start} precedes requested s_r {sr}",
                }
            )
        if not start < end:
            self.violations.append(
                {"kind": "empty_window", "rid": rid, "detail": f"[{start}, {end})"}
            )
        for server in servers:
            intervals = self._busy.setdefault(server, [])
            idx = bisect_right(intervals, (start, float("inf"), 0))
            for neighbour in (idx - 1, idx):
                if 0 <= neighbour < len(intervals):
                    other_start, other_end, other_rid = intervals[neighbour]
                    if other_start < end and other_end > start:
                        self.violations.append(
                            {
                                "kind": "double_booking",
                                "rid": rid,
                                "detail": (
                                    f"server {server}: [{start}, {end}) overlaps "
                                    f"[{other_start}, {other_end}) of rid {other_rid}"
                                ),
                            }
                        )
            insort(intervals, (start, end, rid))
        self.entries[rid] = {
            "sr": sr,
            "start": start,
            "end": end,
            "servers": sorted(servers),
        }

    def release(self, rid: int) -> None:
        """Free the booked intervals of a cancelled reservation.

        The entry itself stays: the server's ``accepted_checksum`` covers
        every accept ever granted, cancelled or not, and a resent rid
        must still read as a duplicate.  Only the double-booking
        intervals go — a later accept may legitimately reuse the window.
        """
        entry = self.entries.get(rid)
        if entry is None:
            return
        for server in entry["servers"]:
            intervals = self._busy.get(server, [])
            for idx, (_start, _end, owner) in enumerate(intervals):
                if owner == rid:
                    del intervals[idx]
                    break

    def checksum(self) -> str:
        """Same digest as the server's ``accepted_checksum`` over this book."""
        digest = hashlib.sha256()
        for rid in sorted(self.entries):
            e = self.entries[rid]
            digest.update(f"{rid}:{e['start']}:{e['end']}:{e['servers']}\n".encode())
        return digest.hexdigest()[:16]

    # -- persistence (split/resume runs) --------------------------------

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"entries": {str(r): e for r, e in self.entries.items()}}, fh)

    @classmethod
    def load(cls, path: str) -> "ShadowLedger":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        ledger = cls()
        for rid_str, e in data["entries"].items():
            ledger.record(
                int(rid_str), float(e["sr"]), float(e["start"]), float(e["end"]),
                [int(s) for s in e["servers"]],
            )
        if ledger.violations:
            raise ValueError(f"preloaded ledger {path} is self-inconsistent")
        return ledger


def request_source(config: LoadgenConfig) -> Iterator[Request]:
    """The request stream: an SWF file, or the synthetic archive models."""
    if config.swf:
        from ..workloads.swf import stream_swf_requests

        source: Iterable[Request] = stream_swf_requests(config.swf)
    else:
        from ..workloads.archive import generate_workload
        from ..workloads.reservations import with_advance_reservations

        requests = generate_workload(config.workload, n_jobs=config.jobs, seed=config.seed)
        if config.rho > 0.0:
            requests = with_advance_reservations(requests, config.rho, seed=config.seed)
        source = requests
    stop = None if config.limit is None else config.offset + config.limit
    return islice(iter(source), config.offset, stop)


class OpenLoopPacer:
    """Cumulative open-loop send schedule: send *i* goes at ``start + i/rate``.

    The naive alternative — sleep ``1/rate`` before each send, or re-anchor
    the schedule on every reconnect — accumulates every sleep overshoot
    into the replay's wall time, so a long run drifts arbitrarily far
    below its target rate.  Against an absolute schedule each overshoot
    is repaid on the next send (``delay`` just comes back smaller), so
    the total error stays bounded by a single pacing interval no matter
    how many requests are replayed.

    The anchor is set on the first :meth:`delay` call and then never
    moves, surviving reconnects.  ``clock`` is injectable for tests.
    """

    __slots__ = ("rate", "_clock", "_start", "_sent")

    def __init__(self, rate: float, clock: Any = perf_counter) -> None:
        self.rate = rate
        self._clock = clock
        self._start: float | None = None
        self._sent = 0

    def delay(self) -> float:
        """Seconds to wait before the next send (0.0 when unpaced or behind)."""
        if self.rate <= 0:
            return 0.0
        now = self._clock()
        if self._start is None:
            self._start = now
        target = self._start + self._sent / self.rate
        return max(0.0, target - now)

    def mark_sent(self) -> None:
        """One fresh request went out; advance the schedule index."""
        self._sent += 1


@dataclass(slots=True)
class _RunState:
    """Mutable bookkeeping shared by the sender and reader coroutines."""

    unacked: deque = field(default_factory=deque)  # (rid, payload_bytes, request)
    send_wall: dict = field(default_factory=dict)  # rid -> last send perf_counter
    completed: int = 0
    sent: int = 0
    resent: int = 0
    accepted: int = 0
    rejected: int = 0
    busy: int = 0
    malformed: int = 0
    errors: int = 0
    replayed: int = 0
    latency: LatencyWindow = field(default_factory=lambda: LatencyWindow(65536))


class _ConnectionLost(Exception):
    pass


# ----------------------------------------------------------------------
# the HTTP transport: the same replay through the repro gateway
# ----------------------------------------------------------------------


def _http_post(message: dict[str, Any], config: LoadgenConfig) -> bytes:
    """One pipelined keep-alive ``POST /v1/<op>`` carrying the wire message.

    The body is the NDJSON message verbatim (``validate_payload`` accepts
    a matching ``op`` field), so the TCP and HTTP transports replay
    byte-identical payload semantics.
    """
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    head = (
        f"POST /v1/{message['op']} HTTP/1.1\r\n"
        f"host: {config.host}:{config.port}\r\n"
        "content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
    )
    if config.token:
        head += f"authorization: Bearer {config.token}\r\n"
    return head.encode("latin-1") + b"\r\n" + body


def _http_get(path: str, config: LoadgenConfig) -> bytes:
    head = f"GET {path} HTTP/1.1\r\nhost: {config.host}:{config.port}\r\n"
    if config.token:
        head += f"authorization: Bearer {config.token}\r\n"
    return (head + "\r\n").encode("latin-1")


async def _read_http_json(reader: asyncio.StreamReader) -> dict[str, Any]:
    """One HTTP response off the stream; returns the parsed JSON body.

    The gateway proxies backend bodies verbatim, so downstream response
    handling (ledger, counters, checksums) is transport-agnostic.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
        raise _ConnectionLost(f"gateway closed mid-response: {exc}") from exc
    content_length = 0
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    if content_length == 0:
        return {}
    try:
        body = await reader.readexactly(content_length)
    except asyncio.IncompleteReadError as exc:
        raise _ConnectionLost(f"gateway closed mid-body: {exc}") from exc
    return json.loads(body.decode("utf-8"))


async def _sender(
    writer: asyncio.StreamWriter,
    requests: deque,
    state: _RunState,
    config: LoadgenConfig,
    window_free: asyncio.Event,
    pacer: OpenLoopPacer,
) -> None:
    """Resend unacked requests, then pump fresh ones at the open-loop rate."""
    try:
        for _, payload, _ in list(state.unacked):
            writer.write(payload)
            state.resent += 1
        await writer.drain()
        sent_this_connection = 0
        while requests:
            delay = pacer.delay()
            if delay > 0:
                await asyncio.sleep(delay)
            if config.window > 0:
                while len(state.unacked) >= config.window:
                    window_free.clear()
                    await window_free.wait()
            request = requests.popleft()
            message = {
                "op": "reserve",
                "rid": request.rid,
                "qr": request.qr,
                "sr": request.sr,
                "lr": request.lr,
                "nr": request.nr,
                **({"deadline": request.deadline} if request.deadline else {}),
            }
            payload = (
                _http_post(message, config)
                if config.transport == "http"
                else encode(message)
            )
            state.unacked.append((request.rid, payload, request))
            state.send_wall[request.rid] = perf_counter()
            state.sent += 1
            pacer.mark_sent()
            sent_this_connection += 1
            writer.write(payload)
            if sent_this_connection % 64 == 0:
                await writer.drain()
        await writer.drain()
    except (ConnectionError, OSError) as exc:
        raise _ConnectionLost(str(exc)) from exc


async def _reader(
    reader: asyncio.StreamReader,
    state: _RunState,
    ledger: ShadowLedger,
    window_free: asyncio.Event,
    total: int,
    config: LoadgenConfig,
) -> None:
    """Consume FIFO responses until every request is acknowledged."""
    while state.completed < total:
        if config.transport == "http":
            response = await _read_http_json(reader)
        else:
            raw = await reader.readline()
            if not raw:
                raise _ConnectionLost("server closed the connection")
            response = json.loads(raw)
        if not state.unacked:
            raise _ConnectionLost(f"unsolicited response: {response!r}")
        rid, _, request = state.unacked.popleft()
        window_free.set()
        if response.get("rid") != rid:
            ledger.violations.append(
                {
                    "kind": "protocol_order",
                    "rid": rid,
                    "detail": f"FIFO response carried rid {response.get('rid')!r}",
                }
            )
        state.completed += 1
        sent_at = state.send_wall.pop(rid, None)
        if sent_at is not None:
            state.latency.observe(perf_counter() - sent_at)
        if response.get("replayed"):
            state.replayed += 1
        if response.get("ok"):
            state.accepted += 1
            ledger.record(
                rid,
                request.sr,
                float(response["start"]),
                float(response["end"]),
                [int(s) for s in response["servers"]],
            )
        else:
            code = (response.get("error") or {}).get("code")
            if code == "REJECTED":
                state.rejected += 1
            elif code == "BUSY":
                state.busy += 1
            elif code == "MALFORMED":
                state.malformed += 1
            else:
                state.errors += 1


async def _rpc(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, message: dict
) -> dict:
    writer.write(encode(message))
    await writer.drain()
    raw = await reader.readline()
    if not raw:
        raise ConnectionError(f"no response to {message.get('op')}")
    return json.loads(raw)


async def run_loadgen(config: LoadgenConfig) -> dict[str, Any]:
    """Run one replay; returns the report dict (also written to ``out``)."""
    requests = deque(request_source(config))
    total = len(requests)
    ledger = ShadowLedger.load(config.ledger_in) if config.ledger_in else ShadowLedger()
    preloaded = len(ledger.entries)
    state = _RunState()
    window_free = asyncio.Event()
    window_free.set()
    # one pacer for the whole run: reconnects must not re-anchor the schedule
    pacer = OpenLoopPacer(config.rate)

    started = perf_counter()
    attempts = 0
    reader = writer = None
    while requests or state.unacked:
        try:
            # a probe response listing many periods can exceed asyncio's
            # 64 KiB default readline limit; bound it like the server does
            reader, writer = await asyncio.open_connection(
                config.host, config.port, limit=MAX_LINE_BYTES
            )
        except OSError:
            attempts += 1
            if attempts > config.reconnect:
                raise
            await asyncio.sleep(min(2.0, 0.25 * attempts))
            continue
        outstanding = len(requests) + len(state.unacked)
        target = state.completed + outstanding
        sender = asyncio.create_task(
            _sender(writer, requests, state, config, window_free, pacer)
        )
        consume = asyncio.create_task(
            _reader(reader, state, ledger, window_free, target, config)
        )
        done, pending_tasks = await asyncio.wait(
            {sender, consume}, return_when=asyncio.FIRST_EXCEPTION
        )
        lost = None
        for task in done:
            exc = task.exception()
            if isinstance(exc, _ConnectionLost):
                lost = exc
            elif exc is not None:
                for p in pending_tasks:
                    p.cancel()
                raise exc
        if lost is None and consume in done:
            break  # every request acknowledged
        for p in pending_tasks:
            p.cancel()
            try:
                await p
            except (asyncio.CancelledError, _ConnectionLost):
                pass
        writer.close()
        attempts += 1
        if attempts > config.reconnect:
            raise ConnectionError(f"gave up after {attempts} connection attempts: {lost}")
        await asyncio.sleep(min(2.0, 0.25 * attempts))
    wall = perf_counter() - started

    server_status = server_shutdown = None
    if reader is None and (config.shutdown or total == 0):
        # nothing was replayed (empty slice) but the caller still wants
        # the end-of-run status/shutdown exchange
        try:
            reader, writer = await asyncio.open_connection(
                config.host, config.port, limit=MAX_LINE_BYTES
            )
        except OSError:
            reader = writer = None
    if reader is not None and writer is not None:
        try:
            if config.transport == "http":
                # shutdown is deliberately not exposed at the HTTP edge
                # (the CLI rejects --shutdown with --transport http)
                writer.write(_http_get("/v1/status", config))
                await writer.drain()
                server_status = await _read_http_json(reader)
            else:
                server_status = await _rpc(reader, writer, {"op": "status"})
                if config.shutdown:
                    server_shutdown = await _rpc(reader, writer, {"op": "shutdown"})
            writer.close()
        except (ConnectionError, OSError, _ConnectionLost):
            pass

    if config.ledger_out:
        await asyncio.to_thread(ledger.dump, config.ledger_out)

    report: dict[str, Any] = {
        "config": {
            "host": config.host,
            "port": config.port,
            "source": config.swf or f"{config.workload} x{config.jobs} seed={config.seed}",
            "transport": config.transport,
            "rho": config.rho,
            "rate": config.rate,
            "window": config.window,
            "offset": config.offset,
            "limit": config.limit,
            "preloaded_ledger_entries": preloaded,
        },
        "requests": total,
        "sent": state.sent,
        "resent": state.resent,
        "completed": state.completed,
        "accepted": state.accepted,
        "rejected": state.rejected,
        "busy": state.busy,
        "malformed": state.malformed,
        "errors": state.errors,
        "replayed": state.replayed,
        "wall_s": round(wall, 3),
        "throughput_rps": round(state.completed / wall, 1) if wall > 0 else 0.0,
        "latency_ms": state.latency.summary(),
        "violations_total": len(ledger.violations),
        "violations": ledger.violations[: config.report_violations],
        "accepted_checksum": ledger.checksum(),
        "ledger_entries": len(ledger.entries),
        "server_status": server_status,
        "server_shutdown": server_shutdown,
    }
    if config.out:
        await asyncio.to_thread(_write_report, config.out, report)
    return report


def _write_report(path: str, report: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
