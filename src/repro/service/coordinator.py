"""Scatter/merge coordinator over K calendar shards.

Three layers, separated so the decision logic is testable without IO:

* :class:`ClusterGeometry` — the slot/horizon arithmetic of the
  calendar, without a calendar.  Uses the identical float expressions
  (``slot_of`` floor + correction), so coordinator-side deadline and
  horizon filtering agrees bit-for-bit with every shard and with a
  single calendar.
* :class:`CoordinatorCore` — the sans-IO decision engine.  Each public
  operation is a *generator* that yields scatter batches (``[(shard,
  message), ...]``, at most one message per shard) and receives the
  response list via ``send()``; its return value is the operation
  result.  Drivers supply transport: :class:`ShardedScheduler` applies
  messages to in-process :class:`~repro.service.shards.ShardState`
  objects (the differential-fuzzer path), the async
  :class:`AsyncShardedScheduler` scatters over per-shard subprocess TCP
  links (the production service path).
* the **equivalence argument**: a reserve scatters the whole retry
  ladder once; each shard answers, per attempt, its Phase-1 candidate
  count and its top-``nr`` earliest-ending bounded / latest-starting
  unbounded candidates.  Per-shard prefixes suffice globally (every
  member of the global top-``nr`` is in its shard's top-``nr``), and the
  cross-shard merge is :func:`~repro.core.merge.merge_earliest` — the
  same function the slot trees use — so the merged selection is exactly
  the single-calendar selection.  Remnant and release uids are assigned
  centrally in single-calendar creation order, keeping the tie-break
  order identical decision after decision.

Failure model is crash-stop: a lost shard connection raises
:class:`ShardFailureError`; the service terminates (without snapshotting
possibly-diverged state) and the supervisor restarts all K shards from
the last coordinated snapshot, re-deciding the lost window identically
— determinism is the recovery mechanism.
"""

from __future__ import annotations

import asyncio
import re
import subprocess
import sys
from pathlib import Path
from typing import Any, Generator, Iterator

from ..core.coalloc import ScheduleOutcome
from ..core.merge import merge_earliest
from ..core.types import INF, Allocation, RangeQuery, Request, Reservation
from ..errors import NotFoundError
from ..facade import (
    STATE_VERSION,
    CoAllocationScheduler,
    allocation_from_dict,
    allocation_to_dict,
)
from .protocol import SHARD_MAX_LINE_BYTES
from .shards import ShardMap, ShardState, fresh_calendar_state
from .snapshot import combine_checksums

__all__ = [
    "ClusterGeometry",
    "CoordinatorCore",
    "ShardedScheduler",
    "AsyncShardedScheduler",
    "ShardFailureError",
    "ShardPeriod",
]

#: a scatter batch: at most one message per shard, ascending shard order
Scatter = list[tuple[int, dict[str, Any]]]
#: a coordinator operation: yields scatters, receives parallel responses
CoordOp = Generator[Scatter, list[dict[str, Any]], Any]

_SHARD_READY = re.compile(r"listening on [0-9.]+:(\d+)")


class ShardFailureError(ConnectionError):
    """A shard process or its link died; the service must crash-stop."""


class ShardProtocolError(RuntimeError):
    """A shard answered ``ok: false`` — an internal-link invariant broke."""


class ClusterGeometry:
    """Slot/horizon arithmetic shared by coordinator and shards.

    Mirrors :class:`~repro.core.calendar.AvailabilityCalendar`'s
    ``slot_of``/``in_horizon``/``advance`` float behaviour exactly, so
    the coordinator's retry-ladder filtering (deadline, horizon) makes
    the same cut a single calendar would.
    """

    def __init__(self, tau: float, q_slots: int, start_time: float = 0.0) -> None:
        if tau <= 0:
            raise ValueError(f"slot length must be positive, got {tau}")
        if q_slots <= 0:
            raise ValueError(f"need at least one slot, got {q_slots}")
        self.tau = float(tau)
        self.q_slots = q_slots
        self.now = float(start_time)
        self._base_slot = self.slot_of(self.now)

    def slot_of(self, t: float) -> int:
        tau = self.tau
        q = int(t // tau)
        while t < q * tau:
            q -= 1
        while t >= (q + 1) * tau:
            q += 1
        return q

    def in_horizon(self, t: float) -> bool:
        return self._base_slot <= self.slot_of(t) < self._base_slot + self.q_slots

    def advance(self, to_time: float) -> None:
        if to_time < self.now:
            raise ValueError(f"cannot move time backwards ({to_time} < {self.now})")
        self.now = to_time
        current = self.slot_of(to_time)
        if current > self._base_slot:
            self._base_slot = current


class ShardPeriod:
    """A merged range-search row: global server, ``[st, et)``.

    Quacks like :class:`~repro.core.types.IdlePeriod` for the read-only
    consumers (``.server``/``.st``/``.et``) without minting a uid.
    """

    __slots__ = ("server", "st", "et")

    def __init__(self, server: int, st: float, et: float) -> None:
        self.server = server
        self.st = st
        self.et = et

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardPeriod(server={self.server}, [{self.st}, {self.et}))"


class CoordinatorCore:
    """Sans-IO scatter/merge decision engine over K shards."""

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        delta_t: float | None = None,
        r_max: int | None = None,
        start_time: float = 0.0,
        shards: int = 2,
    ) -> None:
        self.shard_map = ShardMap(n_servers, shards)
        self.n_servers = n_servers
        self.shards = shards
        self.geometry = ClusterGeometry(tau, q_slots, start_time)
        self.delta_t = float(delta_t) if delta_t is not None else float(tau)
        self.r_max = r_max if r_max is not None else max(1, q_slots // 2)
        if self.delta_t <= 0:
            raise ValueError(f"retry increment must be positive, got {self.delta_t}")
        if self.r_max < 1:
            raise ValueError(f"need at least one scheduling attempt, got {self.r_max}")
        #: next coordinator-assigned period uid; the N initial trailing
        #: periods took uids 0..N-1 (global server index), like a single
        #: calendar's constructor
        self._uid_next = n_servers
        self._allocations: dict[int, Allocation] = {}
        self._hwm = 0

    # -- uid numbering (single-calendar creation order) ------------------

    def _take_uid(self) -> int:
        uid = self._uid_next
        self._uid_next += 1
        return uid

    # -- load / restore --------------------------------------------------

    def load_messages(
        self, calendar_state: dict[str, Any] | None = None
    ) -> Scatter:
        """``shard_load`` batch for a fresh start or a snapshot restore.

        With a calendar state (the exact single-calendar export format),
        the global per-server period lists are split ``[lo:hi]`` per
        shard, uids preserved — a restore is K-agnostic because the
        snapshot never mentions shard boundaries.
        """
        pool = None if calendar_state is None else calendar_state.get("pool")
        batch: Scatter = []
        for shard in range(self.shards):
            lo, hi = self.shard_map.bounds[shard]
            if calendar_state is None:
                sub = fresh_calendar_state(
                    lo, hi - lo, self.geometry.tau, self.geometry.q_slots,
                    now=self.geometry.now,
                )
            else:
                sub = {
                    "n_servers": hi - lo,
                    "tau": self.geometry.tau,
                    "q_slots": self.geometry.q_slots,
                    "now": float(calendar_state["now"]),
                    "indexing": "tail",
                    "periods": list(calendar_state["periods"][lo:hi]),
                }
                if pool is not None:
                    # the shard owns its slice of the pool status list too
                    sub["pool"] = list(pool[lo:hi])
            batch.append(
                (shard, {"op": "shard_load", "lo": lo, "state": sub, "hwm": self._hwm})
            )
        return batch

    def restore(self, state: dict[str, Any]) -> Scatter:
        """Adopt a facade-format scheduler state; returns the load batch."""
        version = state.get("version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported scheduler state version {version!r} "
                f"(this build reads version {STATE_VERSION})"
            )
        calendar_state = state["calendar"]
        self._allocations = {
            int(a["rid"]): allocation_from_dict(a) for a in state["allocations"]
        }
        max_uid = self.n_servers - 1
        for server_periods in calendar_state["periods"]:
            for _st, _et, uid in server_periods:
                max_uid = max(max_uid, int(uid))
        self._uid_next = max_uid + 1
        return self.load_messages(calendar_state)

    # -- scatter helpers -------------------------------------------------

    def _all_shards(self, message: dict[str, Any]) -> Scatter:
        return [(shard, message) for shard in range(self.shards)]

    @staticmethod
    def _ensure_ok(responses: list[dict[str, Any]], op: str) -> None:
        for shard, response in enumerate(responses):
            if not response.get("ok"):
                raise ShardProtocolError(
                    f"shard {shard} failed {op}: {response.get('error')}"
                )

    # -- reserve ---------------------------------------------------------

    def reserve(self, request: Request) -> CoordOp:
        """The Δt/R_max retry loop as one ladder scatter + one commit.

        Failed attempts are pure queries, so probing the whole surviving
        ladder in a single round-trip is decision-identical to the
        sequential loop; the first feasible rung wins and is committed.
        """
        geometry = self.geometry
        base = max(request.sr, geometry.now)
        latest = request.latest_start
        starts: list[tuple[int, float]] = []
        exit_attempts, exit_reason = self.r_max, "exhausted"
        for k in range(self.r_max):
            start = base + k * self.delta_t
            if start > latest:
                exit_attempts, exit_reason = k, "deadline"
                break
            if not geometry.in_horizon(start):
                exit_attempts, exit_reason = k, "horizon"
                break
            starts.append((k, start))
        # scatter even an empty ladder: the `now` stamp advances (and
        # history-trims) every shard exactly when a single calendar would
        ladder = {
            "op": "shard_ladder",
            "now": geometry.now,
            "nr": request.nr,
            "attempts": [[start, start + request.lr] for _, start in starts],
            "hwm": self._hwm,
        }
        responses = yield self._all_shards(ladder)
        self._ensure_ok(responses, "shard_ladder")
        for i, (k, start) in enumerate(starts):
            end = start + request.lr
            rows = [r["attempts"][i] for r in responses]
            picks = self._select(rows, request.nr)
            if picks is None:
                continue
            allocation = yield from self._commit(request, k, start, end, picks)
            return ScheduleOutcome(allocation, k + 1, None)
        return ScheduleOutcome(None, exit_attempts, exit_reason)

    def _select(
        self, rows: list[dict[str, Any]], nr: int
    ) -> list[tuple[int, float, float]] | None:
        """Canonical Phase-2 selection over per-shard candidate prefixes.

        Returns ``(server, st, et)`` picks in selection order, or
        ``None`` — with the same verdict structure as
        ``AvailabilityCalendar.find_feasible``: Phase-1 candidate-count
        cut first, then earliest-ending bounded merge, then the
        latest-starting unbounded top-up.
        """
        total = sum(int(row["count"]) + int(row["tail_count"]) for row in rows)
        if total < nr:
            return None  # Phase 1 verdict: not enough candidates
        bounded = merge_earliest([(row["bounded"], 0) for row in rows], nr)
        picks = [(int(r[2]), float(r[3]), float(r[0])) for r in bounded]
        if len(picks) >= nr:
            return picks[:nr]
        need = nr - len(picks)
        if sum(int(row["tail_count"]) for row in rows) < need:
            return None  # Phase 2 verdict: not enough feasible periods
        tails = sorted(
            tuple(t) for row in rows for t in row["tails"]
        )  # (st, uid, server) ascending
        chosen_tails = tails[-need:]
        chosen_tails.reverse()  # latest-starting trailing periods first
        picks.extend((int(t[2]), float(t[0]), INF) for t in chosen_tails)
        return picks

    def _commit(
        self,
        request: Request,
        k: int,
        start: float,
        end: float,
        picks: list[tuple[int, float, float]],
    ) -> CoordOp:
        """All-or-nothing commit of the winning picks (reserve-or-release)."""
        rid = request.rid
        per_shard_picks: dict[int, list[list[float]]] = {}
        per_shard_uids: dict[int, list[int]] = {}
        for server, st, et in picks:  # selection order: uid parity
            shard = self.shard_map.shard_of(server)
            per_shard_picks.setdefault(shard, []).append([server, st])
            uids = per_shard_uids.setdefault(shard, [])
            if st < start:
                uids.append(self._take_uid())
            if end < et:
                uids.append(self._take_uid())
        self._hwm += 1
        batch: Scatter = [
            (
                shard,
                {
                    "op": "shard_commit",
                    "rid": rid,
                    "now": self.geometry.now,
                    "start": start,
                    "end": end,
                    "picks": per_shard_picks.get(shard, []),
                    "remnant_uids": per_shard_uids.get(shard, []),
                    "hwm": self._hwm,
                },
            )
            for shard in range(self.shards)
        ]
        responses = yield batch
        failed = [s for s, r in enumerate(responses) if not r.get("ok")]
        if failed:
            # reserve-or-release: roll back the shards that did commit
            abort = {"op": "shard_abort", "rid": rid, "now": self.geometry.now}
            yield [(s, abort) for s, r in enumerate(responses) if r.get("ok")]
            raise ShardProtocolError(
                f"commit of rid={rid} failed on shard(s) {failed}: "
                + "; ".join(str(responses[s].get("error")) for s in failed)
            )
        reservations = tuple(
            Reservation(rid=rid, server=server, start=start, end=end)
            for server, _st, _et in picks
        )
        allocation = Allocation(
            rid=rid,
            start=start,
            end=end,
            reservations=reservations,
            attempts=k + 1,
            delay=start - request.sr,
        )
        self._allocations[rid] = allocation
        return allocation

    # -- cancel ----------------------------------------------------------

    def cancel(self, rid: int) -> CoordOp:
        allocation = self._allocations.pop(rid, None)
        if allocation is None:
            raise NotFoundError(f"no active allocation with rid={rid}")
        now = self.geometry.now
        windows: dict[int, list[list[float]]] = {}
        for res in allocation.reservations:  # selection order: uid parity
            lo = max(res.start, now)
            if lo < res.end:
                shard = self.shard_map.shard_of(res.server)
                windows.setdefault(shard, []).append(
                    [res.server, lo, res.end, self._take_uid()]
                )
        self._hwm += 1
        batch: Scatter = [
            (
                shard,
                {
                    "op": "shard_release",
                    "now": now,
                    "windows": windows.get(shard, []),
                    "hwm": self._hwm,
                },
            )
            for shard in range(self.shards)
        ]
        responses = yield batch
        self._ensure_ok(responses, "shard_release")
        return None

    # -- range search ----------------------------------------------------

    def range_search(self, ta: float, tb: float) -> CoordOp:
        RangeQuery(ta=ta, tb=tb)  # same validation error as the facade path
        message = {"op": "shard_range", "now": self.geometry.now, "ta": ta, "tb": tb}
        responses = yield self._all_shards(message)
        self._ensure_ok(responses, "shard_range")
        total = sum(len(r["bounded"]) for r in responses)
        bounded = merge_earliest([(r["bounded"], 0) for r in responses], total)
        tails = sorted(tuple(t) for r in responses for t in r["tails"])
        out = [ShardPeriod(int(r[2]), float(r[3]), float(r[0])) for r in bounded]
        out.extend(ShardPeriod(int(t[2]), float(t[0]), INF) for t in tails)
        return out

    # -- coordinated snapshot --------------------------------------------

    def export(self) -> CoordOp:
        """Assemble the exact single-calendar state from all K shards.

        Quiescence is the caller's single-writer actor loop: no decision
        is in flight while this runs, so all shards sit at the same
        decision-log high-water mark — asserted, not assumed.  Returns
        ``(state, meta)``: the facade-format scheduler state (K-agnostic;
        restorable under any shard count) plus the sharding metadata
        (per-shard checksums and their order-sensitive combination).
        """
        responses = yield self._all_shards({"op": "shard_export"})
        self._ensure_ok(responses, "shard_export")
        hwms = {int(r["hwm"]) for r in responses}
        if len(hwms) != 1:
            raise ShardProtocolError(
                f"coordinated snapshot aborted: shard high-water marks diverge "
                f"({sorted(hwms)})"
            )
        periods: list[list[list[Any]]] = []
        pool: list[str] = []
        for response in responses:
            periods.extend(response["state"]["periods"])
            pool.extend(response["state"]["pool"])
        state = {
            "version": STATE_VERSION,
            "calendar": {
                "n_servers": self.n_servers,
                "tau": self.geometry.tau,
                "q_slots": self.geometry.q_slots,
                "now": self.geometry.now,
                "indexing": "tail",
                "pool": pool,
                "periods": periods,
            },
            "delta_t": self.delta_t,
            "r_max": self.r_max,
            "allocations": [
                allocation_to_dict(self._allocations[rid])
                for rid in sorted(self._allocations)
            ],
        }
        checksums = [str(r["checksum"]) for r in responses]
        meta = {
            "shards": self.shards,
            "hwm": hwms.pop(),
            "shard_checksums": checksums,
            "combined_checksum": combine_checksums(checksums),
        }
        return state, meta

    def status_op(self) -> CoordOp:
        responses = yield self._all_shards({"op": "shard_status"})
        self._ensure_ok(responses, "shard_status")
        return responses

    # -- elastic pool ----------------------------------------------------

    def admin(self, kind: str, argument: int) -> CoordOp:
        """One pool mutation: assemble, mutate, rebalance, reload.

        Pool mutations are rare and the pool is small, so correctness by
        construction beats a bespoke incremental protocol: the
        coordinated export *is* the exact single-calendar state, the
        mutation runs through the very facade code the unsharded server
        (and the follower's replay) uses — same verdicts, same typed
        errors, same error strings — with new-server uids minted from
        the coordinator's counter for single-calendar uid-order parity.
        The shard map then rebalances over the grown server set and the
        mutated state scatters back through the proven K-agnostic
        restore path.  A refused mutation (typed error) propagates
        before the reload, leaving every shard untouched.
        """
        # bring every shard to the coordinator clock first: shard_export
        # carries no clock, so without this the merged state would pair
        # geometry.now with stale untrimmed idle periods (shards advance
        # lazily, with each routed operation's ``now``)
        responses = yield self._all_shards(
            {"op": "shard_pool", "now": self.geometry.now}
        )
        self._ensure_ok(responses, "shard_pool")
        state, _meta = yield from self.export()
        scheduler = CoAllocationScheduler.from_state(state)
        if kind == "add_servers":
            # mint uids only for a count the facade will accept, so a
            # refused request burns none of the coordinator's sequence
            uids = (
                [self._take_uid() for _ in range(argument)] if argument > 0 else None
            )
            new_ids = scheduler.add_servers(argument, uids=uids)
            result: Any = new_ids
        elif kind == "drain":
            result = scheduler.drain(argument)
        elif kind == "remove":
            result = scheduler.remove(argument)
        else:
            raise ValueError(f"not a pool mutation kind: {kind!r}")
        self.n_servers = scheduler.n_servers
        self.shard_map = ShardMap(self.n_servers, self.shards)
        responses = yield self.load_messages(scheduler.calendar.export_state())
        self._ensure_ok(responses, "shard_load")
        return result

    def pool_status_op(self) -> CoordOp:
        """Assemble ``pool_status`` from per-shard slices (read-only)."""
        message = {"op": "shard_pool", "now": self.geometry.now}
        responses = yield self._all_shards(message)
        self._ensure_ok(responses, "shard_pool")
        statuses: list[str] = []
        drained: list[bool] = []
        for response in responses:
            statuses.extend(response["pool"])
            drained.extend(response["drained"])
        counts = {state: 0 for state in ("active", "draining", "removed")}
        for status in statuses:
            counts[status] += 1
        return {
            **counts,
            "total": len(statuses),
            "servers": statuses,
            "drain_progress": [
                {"server": server, "drained": drained[server]}
                for server, status in enumerate(statuses)
                if status == "draining"
            ],
        }


class ShardedScheduler:
    """In-process sharded scheduler: CoordinatorCore over ShardState objects.

    Drop-in for :class:`~repro.facade.CoAllocationScheduler` where the
    differential fuzzer and the property tests need it: same
    ``schedule_detailed``/``range_search``/``cancel``/``advance``/
    ``export_state`` surface, same outcome objects, decisions
    bit-identical to a single calendar.  ``.calendar`` returns ``self``
    so uid-free state reads (``calendar.idle_periods(server)``) keep
    working.
    """

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        delta_t: float | None = None,
        r_max: int | None = None,
        start_time: float = 0.0,
        shards: int = 2,
    ) -> None:
        self._core = CoordinatorCore(
            n_servers=n_servers,
            tau=tau,
            q_slots=q_slots,
            delta_t=delta_t,
            r_max=r_max,
            start_time=start_time,
            shards=shards,
        )
        self._shard_states = [ShardState() for _ in range(shards)]
        CoordinatorCore._ensure_ok(
            self._scatter(self._core.load_messages(None)), "shard_load"
        )

    # -- transport -------------------------------------------------------

    def _scatter(self, batch: Scatter) -> list[dict[str, Any]]:
        return [self._shard_states[shard].apply(message) for shard, message in batch]

    def _drive(self, op: CoordOp) -> Any:
        try:
            batch = next(op)
            while True:
                batch = op.send(self._scatter(batch))
        except StopIteration as stop:
            return stop.value

    # -- facade surface --------------------------------------------------

    @property
    def shards(self) -> int:
        return self._core.shards

    @property
    def n_servers(self) -> int:
        return self._core.n_servers

    @property
    def now(self) -> float:
        return self._core.geometry.now

    @property
    def tau(self) -> float:
        return self._core.geometry.tau

    @property
    def q_slots(self) -> int:
        return self._core.geometry.q_slots

    @property
    def delta_t(self) -> float:
        return self._core.delta_t

    @property
    def r_max(self) -> int:
        return self._core.r_max

    @property
    def calendar(self) -> "ShardedScheduler":
        return self

    @property
    def hwm(self) -> int:
        return self._core._hwm

    @property
    def _allocations(self) -> dict[int, Allocation]:
        return self._core._allocations

    def idle_periods(self, server: int) -> list[Any]:
        """Uid-preserving idle periods for a *global* server id.

        The returned :class:`~repro.core.types.IdlePeriod` objects carry
        shard-local ``server`` fields; consumers (the differ's state
        comparison) read only ``st``/``et``.
        """
        shard = self._core.shard_map.shard_of(server)
        state = self._shard_states[shard]
        assert state.calendar is not None
        return state.calendar.idle_periods(server - state.lo)

    def advance(self, to_time: float) -> None:
        """Geometry-only advance; shards follow on the next scatter."""
        self._core.geometry.advance(to_time)

    def schedule_detailed(self, request: Request) -> ScheduleOutcome:
        return self._drive(self._core.reserve(request))  # type: ignore[no-any-return]

    def schedule(self, request: Request) -> Allocation | None:
        return self.schedule_detailed(request).allocation

    def range_search(self, ta: float, tb: float) -> list[ShardPeriod]:
        return self._drive(self._core.range_search(ta, tb))  # type: ignore[no-any-return]

    def cancel(self, rid: int) -> None:
        self._drive(self._core.cancel(rid))

    # -- elastic pool (facade-identical surface) -------------------------

    def add_servers(self, count: int) -> list[int]:
        return self._drive(self._core.admin("add_servers", count))  # type: ignore[no-any-return]

    def drain(self, server: int) -> dict[str, Any]:
        return self._drive(self._core.admin("drain", server))  # type: ignore[no-any-return]

    def remove(self, server: int) -> dict[str, Any]:
        return self._drive(self._core.admin("remove", server))  # type: ignore[no-any-return]

    def pool_status(self) -> dict[str, Any]:
        return self._drive(self._core.pool_status_op())  # type: ignore[no-any-return]

    def pool_counts(self) -> dict[str, Any]:
        status = self.pool_status()
        return {
            key: status[key] for key in ("active", "draining", "removed", "total")
        }

    def export_state(self) -> dict[str, Any]:
        state, _meta = self._drive(self._core.export())
        return state  # type: ignore[no-any-return]

    def export_full(self) -> tuple[dict[str, Any], dict[str, Any]]:
        return self._drive(self._core.export())  # type: ignore[no-any-return]

    @classmethod
    def from_state(
        cls, state: dict[str, Any], shards: int = 2
    ) -> "ShardedScheduler":
        calendar_state = state["calendar"]
        scheduler = cls(
            n_servers=int(calendar_state["n_servers"]),
            tau=float(calendar_state["tau"]),
            q_slots=int(calendar_state["q_slots"]),
            delta_t=float(state["delta_t"]),
            r_max=int(state["r_max"]),
            start_time=float(calendar_state["now"]),
            shards=shards,
        )
        CoordinatorCore._ensure_ok(
            scheduler._scatter(scheduler._core.restore(state)), "shard_load"
        )
        return scheduler


# ----------------------------------------------------------------------
# async driver: subprocess shards over TCP (the production service path)
# ----------------------------------------------------------------------


def _src_root() -> str:
    # .../src/repro/service/coordinator.py -> .../src
    return str(Path(__file__).resolve().parents[2])


class _ShardLink:
    """One shard subprocess plus its NDJSON connection."""

    def __init__(self, proc: subprocess.Popen, port: int) -> None:
        self.proc = proc
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None


class AsyncShardedScheduler:
    """CoordinatorCore over K shard subprocesses, for the asyncio service.

    Spawn/load happen in :meth:`start`; every operation scatters with
    one ``asyncio.gather`` round per coordinator yield.  Any transport
    error raises :class:`ShardFailureError` — the service's crash-stop
    signal.  The server's single-writer actor loop serializes calls, so
    the core never sees interleaved operations.
    """

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        delta_t: float | None = None,
        r_max: int | None = None,
        start_time: float = 0.0,
        shards: int = 2,
    ) -> None:
        self._core = CoordinatorCore(
            n_servers=n_servers,
            tau=tau,
            q_slots=q_slots,
            delta_t=delta_t,
            r_max=r_max,
            start_time=start_time,
            shards=shards,
        )
        self._links: list[_ShardLink] = []

    # -- lifecycle -------------------------------------------------------

    async def start(self, restore_state: dict[str, Any] | None = None) -> None:
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = _src_root() + os.pathsep + env.get("PYTHONPATH", "")
        for _ in range(self._core.shards):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.service.shards", "--port", "0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                text=True,
            )
            assert proc.stdout is not None
            port: int | None = None
            while port is None:
                # the ready line comes over a blocking pipe; reading it
                # inline would stall the event loop for the shard's boot
                line = await asyncio.to_thread(proc.stdout.readline)
                if not line:
                    raise ShardFailureError(
                        f"shard process exited during startup (rc={proc.poll()})"
                    )
                match = _SHARD_READY.search(line)
                if match:
                    port = int(match.group(1))
            self._links.append(_ShardLink(proc, port))
        for link in self._links:
            # shard responses (ladder candidates, calendar exports) can run
            # to multiple MiB — the default 64 KiB StreamReader limit would
            # abort the link mid-replay
            link.reader, link.writer = await asyncio.open_connection(
                "127.0.0.1", link.port, limit=SHARD_MAX_LINE_BYTES
            )
        if restore_state is not None:
            batch = self._core.restore(restore_state)
        else:
            batch = self._core.load_messages(None)
        CoordinatorCore._ensure_ok(await self._scatter(batch), "shard_load")

    async def stop(self) -> None:
        try:
            await self._scatter(
                [(s, {"op": "shard_shutdown"}) for s in range(self._core.shards)]
            )
        except (ShardFailureError, ShardProtocolError):
            pass
        for link in self._links:
            if link.writer is not None:
                try:
                    link.writer.close()
                except Exception:
                    pass
            if link.proc.poll() is None:
                link.proc.terminate()
        for link in self._links:
            try:
                await asyncio.to_thread(link.proc.wait, timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                link.proc.kill()
                await asyncio.to_thread(link.proc.wait, timeout=10)

    # -- transport -------------------------------------------------------

    async def _rpc(self, shard: int, message: dict[str, Any]) -> dict[str, Any]:
        import json

        link = self._links[shard]
        if link.reader is None or link.writer is None:
            raise ShardFailureError(f"shard {shard} has no live connection")
        try:
            link.writer.write(
                json.dumps(message, separators=(",", ":"), allow_nan=False).encode()
                + b"\n"
            )
            await link.writer.drain()
            raw = await link.reader.readline()
        except (ConnectionError, OSError) as exc:
            raise ShardFailureError(f"shard {shard} link failed: {exc}") from exc
        if not raw:
            raise ShardFailureError(
                f"shard {shard} closed its connection (rc={link.proc.poll()})"
            )
        return json.loads(raw)  # type: ignore[no-any-return]

    async def _scatter(self, batch: Scatter) -> list[dict[str, Any]]:
        results = await asyncio.gather(
            *(self._rpc(shard, message) for shard, message in batch),
            return_exceptions=True,
        )
        out: list[dict[str, Any]] = []
        failure: BaseException | None = None
        for result in results:
            if isinstance(result, BaseException):
                failure = failure or result
                out.append({"ok": False, "error": str(result)})
            else:
                out.append(result)
        if failure is not None:
            if isinstance(failure, ShardFailureError):
                raise failure
            raise ShardFailureError(str(failure)) from failure
        return out

    async def _drive(self, op: CoordOp) -> Any:
        try:
            batch = next(op)
            while True:
                batch = op.send(await self._scatter(batch))
        except StopIteration as stop:
            return stop.value

    # -- facade-ish surface (async where a scatter happens) --------------

    @property
    def shards(self) -> int:
        return self._core.shards

    @property
    def n_servers(self) -> int:
        return self._core.n_servers

    @property
    def now(self) -> float:
        return self._core.geometry.now

    @property
    def tau(self) -> float:
        return self._core.geometry.tau

    @property
    def q_slots(self) -> int:
        return self._core.geometry.q_slots

    @property
    def delta_t(self) -> float:
        return self._core.delta_t

    @property
    def r_max(self) -> int:
        return self._core.r_max

    @property
    def calendar(self) -> "AsyncShardedScheduler":
        return self

    @property
    def hwm(self) -> int:
        return self._core._hwm

    @property
    def _allocations(self) -> dict[int, Allocation]:
        return self._core._allocations

    def shard_pids(self) -> list[int]:
        return [link.proc.pid for link in self._links]

    def shard_ports(self) -> list[int]:
        return [link.port for link in self._links]

    def advance(self, to_time: float) -> None:
        """Geometry-only advance; shards follow on the next scatter."""
        self._core.geometry.advance(to_time)

    async def schedule_detailed(self, request: Request) -> ScheduleOutcome:
        return await self._drive(self._core.reserve(request))  # type: ignore[no-any-return]

    async def range_search(self, ta: float, tb: float) -> list[ShardPeriod]:
        return await self._drive(self._core.range_search(ta, tb))  # type: ignore[no-any-return]

    async def cancel(self, rid: int) -> None:
        await self._drive(self._core.cancel(rid))

    # -- elastic pool (facade-identical surface, async) ------------------

    async def add_servers(self, count: int) -> list[int]:
        return await self._drive(self._core.admin("add_servers", count))  # type: ignore[no-any-return]

    async def drain(self, server: int) -> dict[str, Any]:
        return await self._drive(self._core.admin("drain", server))  # type: ignore[no-any-return]

    async def remove(self, server: int) -> dict[str, Any]:
        return await self._drive(self._core.admin("remove", server))  # type: ignore[no-any-return]

    async def pool_status(self) -> dict[str, Any]:
        return await self._drive(self._core.pool_status_op())  # type: ignore[no-any-return]

    async def export_full(self) -> tuple[dict[str, Any], dict[str, Any]]:
        return await self._drive(self._core.export())  # type: ignore[no-any-return]
