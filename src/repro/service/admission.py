"""Bounded admission with load-shedding backpressure.

The actor queue must stay bounded: an overloaded server that keeps
enqueueing only converts overload into unbounded memory growth and
unbounded latency.  :class:`AdmissionController` sheds instead, on either
of two triggers:

* **depth** — more than ``max_depth`` operations already queued;
* **delay budget** — the *expected* queue wait (queued depth × EWMA
  service time) exceeds ``max_delay``: even if the queue has room, work
  admitted now would be answered too late to be useful.

A shed request receives a typed ``BUSY`` error carrying ``retry_after``,
the controller's estimate of when the backlog will have drained — an
open-loop client can convert it straight into a back-off sleep.  The
estimate is clamped to a configurable floor and spread with jitter:
early in a server's life ``service_ewma`` is near zero, and an unfloored
``depth x ewma`` estimate would tell an entire shed burst to retry
immediately and in lockstep, reproducing the overload it was meant to
relieve.

The controller is event-loop-confined (no locks): `admit`/`release` are
called from connection handlers and the actor, all on one thread.

**Telemetry.** Beyond the shed counter the controller maintains two
EWMA signals the auto-scaler consumes: the *queue delay* actually
experienced by completed operations, and the *shed rate* (fraction of
recent admission attempts refused).  A shed request contributes **only**
to the shed rate — never to the service-time or queue-delay EWMAs.  A
refusal costs microseconds; folding it into ``service_ewma`` would drag
the average toward zero exactly when the server is drowning, re-opening
the delay-budget gate mid-overload (the 10x shed-burst regression test
pins this down).
"""

from __future__ import annotations

import random

from ..errors import BusyError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Depth- and delay-bounded admission for the single-writer actor."""

    def __init__(
        self,
        max_depth: int = 1024,
        max_delay: float = 5.0,
        ewma_alpha: float = 0.05,
        initial_service: float = 0.0005,
        retry_floor: float = 0.05,
        retry_jitter: float = 0.5,
        jitter_seed: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"queue bound must be at least 1, got {max_depth}")
        if max_delay <= 0:
            raise ValueError(f"delay budget must be positive, got {max_delay}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"EWMA weight must be in (0, 1], got {ewma_alpha}")
        if retry_floor <= 0:
            raise ValueError(f"retry floor must be positive, got {retry_floor}")
        if retry_jitter < 0:
            raise ValueError(f"retry jitter must be >= 0, got {retry_jitter}")
        self.max_depth = max_depth
        self.max_delay = max_delay
        self.retry_floor = retry_floor
        self.retry_jitter = retry_jitter
        self._jitter_rng = random.Random(
            "repro-admission" if jitter_seed is None else jitter_seed
        )
        self._alpha = ewma_alpha
        #: EWMA of per-operation actor service time, seconds
        self.service_ewma = initial_service
        #: EWMA of the queue delay completed operations actually saw, s
        self.queue_delay_ewma = 0.0
        #: EWMA of the shed fraction over recent admission attempts
        self.shed_rate = 0.0
        #: operations admitted but not yet completed by the actor
        self.depth = 0
        #: total operations admitted since start
        self.admitted = 0
        #: total operations shed since start
        self.shed = 0

    # -- admission ------------------------------------------------------

    def expected_wait(self) -> float:
        """Estimated queue wait for work admitted right now, seconds."""
        return self.depth * self.service_ewma

    def retry_after(self) -> float:
        """Suggested client back-off: time to drain the current backlog.

        Never zero and never below the drain estimate: the estimate is
        clamped to ``retry_floor`` (a cold ``service_ewma`` otherwise
        rounds it to 0.0), then stretched by up to ``retry_jitter`` so
        the clients of one shed burst do not all come back on the same
        tick.
        """
        base = max(self.retry_floor, self.expected_wait())
        jittered = base * (1.0 + self.retry_jitter * self._jitter_rng.random())
        return max(base, round(jittered, 4))

    def admit(self) -> None:
        """Claim one queue slot or raise :class:`~repro.errors.BusyError`.

        A refusal updates *only* the shed counters and the shed-rate
        EWMA.  It must never touch ``service_ewma`` or
        ``queue_delay_ewma``: a shed costs microseconds, and averaging
        it in would collapse the service-time estimate — and with it the
        delay-budget gate — in the middle of the very overload that
        caused the shedding.
        """
        if self.depth >= self.max_depth:
            self._record_shed()
            raise BusyError(
                f"admission queue full ({self.depth}/{self.max_depth})",
                retry_after=self.retry_after(),
            )
        if self.expected_wait() > self.max_delay:
            self._record_shed()
            raise BusyError(
                f"expected queue wait {self.expected_wait():.3f}s exceeds the "
                f"{self.max_delay:.3f}s delay budget",
                retry_after=self.retry_after(),
            )
        self.depth += 1
        self.admitted += 1
        self.shed_rate += self._alpha * (0.0 - self.shed_rate)

    def _record_shed(self) -> None:
        self.shed += 1
        self.shed_rate += self._alpha * (1.0 - self.shed_rate)

    def release(
        self,
        service_seconds: float | None = None,
        queue_delay: float | None = None,
    ) -> None:
        """One admitted operation finished; fold its timings into the EWMAs."""
        if self.depth <= 0:
            raise RuntimeError("release() without a matching admit()")
        self.depth -= 1
        if service_seconds is not None:
            self.service_ewma += self._alpha * (service_seconds - self.service_ewma)
        if queue_delay is not None:
            self.queue_delay_ewma += self._alpha * (queue_delay - self.queue_delay_ewma)

    # -- reporting ------------------------------------------------------

    def telemetry(self) -> dict[str, float | int]:
        """The auto-scaler's view: raw-unit signals, no display rounding."""
        return {
            "depth": self.depth,
            "queue_delay_ewma": self.queue_delay_ewma,
            "service_ewma": self.service_ewma,
            "expected_wait": self.expected_wait(),
            "shed_rate": self.shed_rate,
            "shed": self.shed,
            "admitted": self.admitted,
        }

    def summary(self) -> dict[str, float | int]:
        return {
            "depth": self.depth,
            "max_depth": self.max_depth,
            "max_delay": self.max_delay,
            "service_ewma_ms": round(self.service_ewma * 1000.0, 4),
            "queue_delay_ewma_ms": round(self.queue_delay_ewma * 1000.0, 4),
            "expected_wait_ms": round(self.expected_wait() * 1000.0, 4),
            "shed_rate": round(self.shed_rate, 6),
            "admitted": self.admitted,
            "shed": self.shed,
        }
