"""Wire protocol: newline-delimited JSON over TCP.

Each message is one JSON object on one line (UTF-8, ``\\n`` terminated).
Requests carry an ``op`` plus op-specific fields; responses echo the
``op`` (and ``rid``/``seq`` when present) with either the op's result or
a typed error object reusing :class:`~repro.errors.ErrorCode`::

    -> {"op": "reserve", "rid": 7, "qr": 0.0, "sr": 0.0, "lr": 3600, "nr": 4}
    <- {"ok": true, "op": "reserve", "rid": 7, "start": 0.0, "end": 3600.0,
        "servers": [0, 1, 2, 3], "attempts": 1, "delay": 0.0}
    -> {"op": "reserve", "rid": 8, "sr": 0.0, "lr": -1, "nr": 4}
    <- {"ok": false, "op": "reserve", "rid": 8,
        "error": {"code": "MALFORMED", "exit_code": 2, "message": "..."}}

Responses on one connection come back in request order, so pipelining
clients may correlate FIFO; ``rid`` (reserve/cancel) and the optional
pass-through ``seq`` field support out-of-band bookkeeping.

The whole vocabulary — public client ops and internal coordinator→shard
ops alike — lives in one declarative :data:`REGISTRY` of
:class:`OpSpec` entries.  Everything else derives from it: runtime
validation (:func:`decode_line`, :func:`missing_required`), the public
``OPS`` tuple and internal ``SHARD_OPS`` set, and the static
protocol-conformance rules ``RA205``/``RA206``
(:mod:`repro.analysis.protocol_check`), which cross-check every literal
``{"op": ...}`` send site and every handler table against this registry.
Adding an op means adding one :class:`OpSpec`; forgetting the handler —
or sending a field the spec does not know — is a lint failure, not a
runtime surprise.

Validation here is *structural* (field presence and types).  Domain
validation — ``l_r > 0``, ``s_r >= q_r``, feasible deadlines — happens in
:class:`~repro.core.types.Request`, whose ``ValueError`` the server maps
to the same ``MALFORMED`` error code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..core.types import Request
from ..errors import MalformedRequestError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "FOLLOWER_OPS",
    "SHARD_MAX_LINE_BYTES",
    "SHARD_OPS",
    "FIELD_TYPES",
    "OpSpec",
    "REGISTRY",
    "ProtocolError",
    "decode_line",
    "encode",
    "missing_required",
    "request_from_payload",
    "validate_payload",
]

#: bumped on any incompatible wire change; ``status`` reports it
PROTOCOL_VERSION = 1

#: hard cap on one NDJSON line; longer lines are a framing attack/bug
MAX_LINE_BYTES = 1 << 20

#: cap on one internal coordinator <-> shard line.  Shard payloads scale
#: with calendar content (a shard_load/shard_export carries a whole
#: calendar slice; a shard_ladder answer carries candidates for every
#: rung of the retry ladder), so the public 1 MiB cap is far too small —
#: a busy 10k-reservation calendar legitimately ships multi-MiB lines.
SHARD_MAX_LINE_BYTES = 64 << 20

#: wire-type vocabulary: spec tag -> accepted Python types.  ``bool`` is
#: excluded from ``int``/``number`` (JSON ``true`` is not a count).
FIELD_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "number": (int, float),
    "str": (str,),
    "list": (list,),
    "dict": (dict,),
}


#: listener vocabularies an op may belong to
ROLES = ("public", "shard", "follower")


@dataclass(frozen=True, slots=True)
class OpSpec:
    """One operation's wire contract: fields as ``(name, type tag)`` pairs.

    ``role`` names the listener that accepts the op: ``"public"`` (the
    actor/coordinator front door, also proxied by the HTTP gateway),
    ``"shard"`` (trusted coordinator→shard ops — only the coordinator
    speaks them, never accepted on the public listener), or
    ``"follower"`` (the warm-standby follower's control listener).
    """

    name: str
    required: tuple[tuple[str, str], ...] = ()
    optional: tuple[tuple[str, str], ...] = ()
    role: str = "public"

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"{self.name}: unknown role {self.role!r}")
        for fname, tag in self.required + self.optional:
            if tag not in FIELD_TYPES:
                raise ValueError(f"{self.name}.{fname}: unknown type tag {tag!r}")

    @property
    def internal(self) -> bool:
        """Whether this op rides the trusted coordinator→shard link."""
        return self.role == "shard"

    @property
    def field_names(self) -> frozenset[str]:
        """Every field this op may carry (beyond ``op`` and ``seq``)."""
        return frozenset(name for name, _ in self.required + self.optional)


_SPECS: tuple[OpSpec, ...] = (
    # -- public client ops (order is the wire-documented OPS order) ------
    OpSpec(
        "reserve",
        required=(("rid", "int"), ("sr", "number"), ("lr", "number"), ("nr", "int")),
        optional=(("qr", "number"), ("deadline", "number")),
    ),
    OpSpec(
        "probe",
        required=(("ta", "number"), ("tb", "number")),
        optional=(("limit", "int"),),
    ),
    OpSpec("cancel", required=(("rid", "int"),)),
    OpSpec("status"),
    OpSpec("snapshot", optional=(("path", "str"),)),
    OpSpec("shutdown"),
    OpSpec(
        "log_tail",
        required=(("cursor", "int"),),
        optional=(("limit", "int"), ("follower_id", "str")),
    ),
    # -- elastic-pool admin ops (public: the gateway proxies them via
    #    POST /v1/admin/scale).  ``aid`` is an idempotency key: a retried
    #    admin op with the same aid replays its logged verdict instead of
    #    mutating twice (exactly-once via the decision log, like rids).
    #    ``qr`` is the submission time driving the virtual clock, exactly
    #    as on reserve — drain/remove legality depends on ``now``.
    OpSpec(
        "add_servers",
        required=(("count", "int"),),
        optional=(("aid", "str"), ("qr", "number")),
    ),
    OpSpec(
        "drain",
        required=(("server", "int"),),
        optional=(("aid", "str"), ("qr", "number")),
    ),
    OpSpec(
        "remove",
        required=(("server", "int"),),
        optional=(("aid", "str"), ("qr", "number")),
    ),
    OpSpec("pool_status"),
    # -- internal coordinator -> shard ops -------------------------------
    OpSpec(
        "shard_load",
        required=(("lo", "int"), ("state", "dict"), ("hwm", "int")),
        role="shard",
    ),
    OpSpec(
        "shard_ladder",
        required=(("now", "number"), ("nr", "int"), ("attempts", "list"), ("hwm", "int")),
        role="shard",
    ),
    OpSpec(
        "shard_commit",
        required=(
            ("rid", "int"),
            ("now", "number"),
            ("start", "number"),
            ("end", "number"),
            ("picks", "list"),
            ("remnant_uids", "list"),
            ("hwm", "int"),
        ),
        role="shard",
    ),
    OpSpec("shard_abort", required=(("rid", "int"), ("now", "number")), role="shard"),
    OpSpec(
        "shard_release",
        required=(("now", "number"), ("windows", "list"), ("hwm", "int")),
        role="shard",
    ),
    OpSpec(
        "shard_range",
        required=(("now", "number"), ("ta", "number"), ("tb", "number")),
        role="shard",
    ),
    OpSpec("shard_export", role="shard"),
    OpSpec("shard_pool", required=(("now", "number"),), role="shard"),
    OpSpec("shard_status", role="shard"),
    OpSpec("shard_shutdown", role="shard"),
    # -- warm-standby follower control ops -------------------------------
    OpSpec("follower_status", role="follower"),
    OpSpec("promote", optional=(("port", "int"),), role="follower"),
)

#: the single source of truth for the wire vocabulary, by op name
REGISTRY: dict[str, OpSpec] = {spec.name: spec for spec in _SPECS}

#: every operation the public server understands, in documented order
OPS: tuple[str, ...] = tuple(s.name for s in _SPECS if s.role == "public")

#: coordinator -> shard operations on the internal shard link (same NDJSON
#: framing; trusted, so shards validate only op name and field presence —
#: a malformed internal message is a coordinator bug, answered with
#: ``ok: false``)
SHARD_OPS: frozenset[str] = frozenset(s.name for s in _SPECS if s.role == "shard")

#: operations the warm-standby follower's control listener understands
FOLLOWER_OPS: tuple[str, ...] = tuple(s.name for s in _SPECS if s.role == "follower")


class ProtocolError(MalformedRequestError):
    """The line is not a valid protocol message (framing or fields)."""


def encode(message: dict[str, Any]) -> bytes:
    """One message as an NDJSON line (compact separators, sorted keys)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True, allow_nan=False) + "\n"
    ).encode("utf-8")


def _check_type(op: str, name: str, value: Any, tag: str) -> None:
    types = FIELD_TYPES[tag]
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            f"{op}: field {name!r} must be {' or '.join(t.__name__ for t in types)}"
        )


def decode_line(raw: bytes, ops: tuple[str, ...] = OPS) -> dict[str, Any]:
    """Parse and structurally validate one request line against ``ops``.

    Returns the message dict (with ``op`` guaranteed present and known,
    required fields present with the right JSON types).  Raises
    :class:`ProtocolError` otherwise — the server answers ``MALFORMED``
    and keeps the connection alive (framing is line-based, so one bad
    line does not poison the stream).  ``ops`` defaults to the public
    vocabulary; the follower's control listener passes
    :data:`FOLLOWER_OPS`.
    """
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    op = message.get("op")
    if not isinstance(op, str) or op not in ops:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(ops)})")
    spec = REGISTRY[op]
    for name, tag in spec.required:
        if name not in message:
            raise ProtocolError(f"{op}: missing required field {name!r}")
        _check_type(op, name, message[name], tag)
    for name, tag in spec.optional:
        if name in message and message[name] is not None:
            _check_type(op, name, message[name], tag)
    return message


def validate_payload(op: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Strictly validate an ``op`` body built from an untrusted source.

    The HTTP gateway derives its request validation from the registry
    through this function — there is deliberately no second schema.  It
    is stricter than :func:`decode_line`: *unknown fields are rejected*
    (an HTTP client sending ``{"ridd": 7}`` gets a 400, not a silently
    ignored typo).  Returns the message dict with ``op`` filled in.
    Raises :class:`ProtocolError` on any structural problem.
    """
    spec = REGISTRY.get(op)
    if spec is None or spec.role != "public":
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    allowed = spec.field_names | {"seq"}
    for name in payload:
        if name == "op":
            if payload[name] != op:
                raise ProtocolError(f"{op}: body 'op' field disagrees with endpoint")
            continue
        if name not in allowed:
            raise ProtocolError(
                f"{op}: unknown field {name!r} "
                f"(known fields: {', '.join(sorted(allowed - {'seq'})) or 'none'})"
            )
    for name, tag in spec.required:
        if name not in payload:
            raise ProtocolError(f"{op}: missing required field {name!r}")
        _check_type(op, name, payload[name], tag)
    for name, tag in spec.optional:
        if name in payload and payload[name] is not None:
            _check_type(op, name, payload[name], tag)
    return {**payload, "op": op}


def missing_required(op: str, message: dict[str, Any]) -> list[str]:
    """Required fields of ``op`` absent from ``message`` (unknown op: empty).

    The shard actor uses this for its light-touch validation of the
    trusted internal link: field *presence* is checked (a missing field
    is a coordinator bug worth a loud ``ok: false``), field types are
    not (the coordinator constructs them; RA205 checks the literals).
    """
    spec = REGISTRY.get(op)
    if spec is None:
        return []
    return [name for name, _ in spec.required if name not in message]


def request_from_payload(message: dict[str, Any]) -> Request:
    """Build the domain :class:`Request` from a validated ``reserve`` message.

    ``qr`` defaults to ``sr`` (an immediate request); domain-invalid
    combinations (``qr > sr``, non-positive duration, infeasible
    deadline, …) surface as :class:`~repro.errors.MalformedRequestError`.
    """
    sr = float(message["sr"])
    qr = float(message.get("qr", sr) if message.get("qr") is not None else sr)
    deadline = message.get("deadline")
    try:
        return Request(
            qr=qr,
            sr=sr,
            lr=float(message["lr"]),
            nr=int(message["nr"]),
            rid=int(message["rid"]),
            deadline=None if deadline is None else float(deadline),
        )
    except ValueError as exc:
        raise MalformedRequestError(str(exc)) from exc
