"""Wire protocol: newline-delimited JSON over TCP.

Each message is one JSON object on one line (UTF-8, ``\\n`` terminated).
Requests carry an ``op`` plus op-specific fields; responses echo the
``op`` (and ``rid``/``seq`` when present) with either the op's result or
a typed error object reusing :class:`~repro.errors.ErrorCode`::

    -> {"op": "reserve", "rid": 7, "qr": 0.0, "sr": 0.0, "lr": 3600, "nr": 4}
    <- {"ok": true, "op": "reserve", "rid": 7, "start": 0.0, "end": 3600.0,
        "servers": [0, 1, 2, 3], "attempts": 1, "delay": 0.0}
    -> {"op": "reserve", "rid": 8, "sr": 0.0, "lr": -1, "nr": 4}
    <- {"ok": false, "op": "reserve", "rid": 8,
        "error": {"code": "MALFORMED", "exit_code": 2, "message": "..."}}

Responses on one connection come back in request order, so pipelining
clients may correlate FIFO; ``rid`` (reserve/cancel) and the optional
pass-through ``seq`` field support out-of-band bookkeeping.

Validation here is *structural* (field presence and types).  Domain
validation — ``l_r > 0``, ``s_r >= q_r``, feasible deadlines — happens in
:class:`~repro.core.types.Request`, whose ``ValueError`` the server maps
to the same ``MALFORMED`` error code.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.types import Request
from ..errors import MalformedRequestError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "SHARD_MAX_LINE_BYTES",
    "SHARD_OPS",
    "ProtocolError",
    "decode_line",
    "encode",
    "request_from_payload",
]

#: bumped on any incompatible wire change; ``status`` reports it
PROTOCOL_VERSION = 1

#: hard cap on one NDJSON line; longer lines are a framing attack/bug
MAX_LINE_BYTES = 1 << 20

#: cap on one internal coordinator <-> shard line.  Shard payloads scale
#: with calendar content (a shard_load/shard_export carries a whole
#: calendar slice; a shard_ladder answer carries candidates for every
#: rung of the retry ladder), so the public 1 MiB cap is far too small —
#: a busy 10k-reservation calendar legitimately ships multi-MiB lines.
SHARD_MAX_LINE_BYTES = 64 << 20

#: every operation the server understands
OPS = ("reserve", "probe", "cancel", "status", "snapshot", "shutdown")

#: coordinator -> shard operations on the internal shard link (same NDJSON
#: framing; trusted, so shards validate only the op name — a malformed
#: internal message is a coordinator bug, answered with ``ok: false``)
SHARD_OPS = frozenset(
    {
        "shard_load",
        "shard_ladder",
        "shard_commit",
        "shard_abort",
        "shard_release",
        "shard_range",
        "shard_export",
        "shard_status",
        "shard_shutdown",
    }
)

#: required fields per op (beyond "op"), with the accepted types
_NUMBER = (int, float)
_REQUIRED: dict[str, tuple[tuple[str, tuple[type, ...]], ...]] = {
    "reserve": (("rid", (int,)), ("sr", _NUMBER), ("lr", _NUMBER), ("nr", (int,))),
    "probe": (("ta", _NUMBER), ("tb", _NUMBER)),
    "cancel": (("rid", (int,)),),
    "status": (),
    "snapshot": (),
    "shutdown": (),
}

_OPTIONAL: dict[str, tuple[tuple[str, tuple[type, ...]], ...]] = {
    "reserve": (("qr", _NUMBER), ("deadline", _NUMBER)),
    "probe": (("limit", (int,)),),
    "snapshot": (("path", (str,)),),
}


class ProtocolError(MalformedRequestError):
    """The line is not a valid protocol message (framing or fields)."""


def encode(message: dict[str, Any]) -> bytes:
    """One message as an NDJSON line (compact separators, sorted keys)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True, allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_line(raw: bytes) -> dict[str, Any]:
    """Parse and structurally validate one request line.

    Returns the message dict (with ``op`` guaranteed present and known,
    required fields present with the right JSON types).  Raises
    :class:`ProtocolError` otherwise — the server answers ``MALFORMED``
    and keeps the connection alive (framing is line-based, so one bad
    line does not poison the stream).
    """
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    for name, types in _REQUIRED[op]:
        if name not in message:
            raise ProtocolError(f"{op}: missing required field {name!r}")
        if not isinstance(message[name], types) or isinstance(message[name], bool):
            raise ProtocolError(
                f"{op}: field {name!r} must be {' or '.join(t.__name__ for t in types)}"
            )
    for name, types in _OPTIONAL.get(op, ()):
        if name in message and message[name] is not None:
            if not isinstance(message[name], types) or isinstance(message[name], bool):
                raise ProtocolError(
                    f"{op}: field {name!r} must be {' or '.join(t.__name__ for t in types)}"
                )
    return message


def request_from_payload(message: dict[str, Any]) -> Request:
    """Build the domain :class:`Request` from a validated ``reserve`` message.

    ``qr`` defaults to ``sr`` (an immediate request); domain-invalid
    combinations (``qr > sr``, non-positive duration, infeasible
    deadline, …) surface as :class:`~repro.errors.MalformedRequestError`.
    """
    sr = float(message["sr"])
    qr = float(message.get("qr", sr) if message.get("qr") is not None else sr)
    deadline = message.get("deadline")
    try:
        return Request(
            qr=qr,
            sr=sr,
            lr=float(message["lr"]),
            nr=int(message["nr"]),
            rid=int(message["rid"]),
            deadline=None if deadline is None else float(deadline),
        )
    except ValueError as exc:
        raise MalformedRequestError(str(exc)) from exc
