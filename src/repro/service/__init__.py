"""`repro serve` — an online co-allocation server, and its load client.

The paper's algorithm is explicitly *online*: requests arrive one at a
time and must be answered in ``O((log N)^2)``.  This package wraps the
co-allocator in the deployment shape that claim implies — a standing
reservation daemon speaking newline-delimited JSON over TCP:

* :mod:`~repro.service.protocol` — the wire format (``reserve`` /
  ``probe`` / ``cancel`` / ``status`` / ``snapshot`` / ``shutdown``);
* :mod:`~repro.service.server` — the asyncio server; a **single-writer
  actor loop** owns the calendar, everything else only passes messages;
* :mod:`~repro.service.admission` — bounded admission queue with
  load-shedding backpressure (typed ``BUSY`` + ``retry_after``);
* :mod:`~repro.service.batching` — micro-batching of queued requests
  between event-loop ticks;
* :mod:`~repro.service.snapshot` — versioned, checksummed calendar
  snapshots so a restarted server resumes its reservations;
* :mod:`~repro.service.metrics` — per-request latency/queue/shed
  telemetry surfaced via ``status`` and periodic log lines;
* :mod:`~repro.service.loadgen` — `repro loadgen`, an open-loop
  trace-replay client with a shadow ledger that re-verifies every
  accepted reservation (no double-booking, ``start >= s_r``).

See ``docs/service.md`` for the protocol spec and operational knobs.
"""

from .admission import AdmissionController
from .metrics import ServiceMetrics
from .protocol import PROTOCOL_VERSION, ProtocolError, decode_line, encode
from .server import ReservationService, ServiceConfig
from .snapshot import SNAPSHOT_VERSION, SnapshotError, read_snapshot, write_snapshot

__all__ = [
    "AdmissionController",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReservationService",
    "SNAPSHOT_VERSION",
    "ServiceConfig",
    "ServiceMetrics",
    "SnapshotError",
    "decode_line",
    "encode",
    "read_snapshot",
    "write_snapshot",
]
