"""Atomic cross-site co-allocation (the DUROC problem, Section 1).

The paper situates itself against multi-site grid co-allocation (DUROC,
Czajkowski et al.): a job needs servers on *several administrative
sites at once*, and acquiring them sequentially "can be computationally
expensive and incurs delays... and may lead to deadlocks".  This module
codes the atomic protocol on top of the per-site schedulers:

1. **Probe** — a temporal range search at every candidate site for the
   same window (read-only, no locks: sites stay available to others);
2. **Plan** — pick a distribution of the requested servers over sites
   (fewest-sites-first, or an explicit per-site request);
3. **Commit** — commit the chosen idle periods site by site; a commit
   can fail if a local request raced in after the probe — in which case
   every already-committed site is **rolled back** and the broker
   retries the whole window on the Δt ladder.

The protocol is deadlock-free by construction: the broker never holds a
partial allocation while waiting for another site (it either completes
within the attempt or releases everything), which is exactly the hazard
sequential cross-site acquisition creates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.types import Allocation, IdlePeriod
from ..facade import CoAllocationScheduler

__all__ = ["Site", "CrossSiteAllocation", "MultiSiteBroker", "CommitRace"]


class CommitRace(RuntimeError):
    """A site's resources were taken between probe and commit."""


@dataclass(frozen=True, slots=True)
class Site:
    """One administrative domain: a name and its local scheduler."""

    name: str
    scheduler: CoAllocationScheduler

    @property
    def n_servers(self) -> int:
        return self.scheduler.n_servers


@dataclass(frozen=True, slots=True)
class CrossSiteAllocation:
    """An atomic allocation spanning several sites."""

    rid: int
    start: float
    end: float
    parts: dict[str, Allocation]  # site name -> local allocation

    @property
    def total_servers(self) -> int:
        return sum(a.nr for a in self.parts.values())

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self.parts)


class MultiSiteBroker:
    """Co-allocates one request across independent sites, atomically.

    Parameters
    ----------
    sites:
        The participating sites; each keeps serving its local users
        through its own scheduler while the broker works.
    delta_t, r_max:
        The broker's own retry ladder for the *whole* cross-site attempt
        (each site additionally has its own, unused here: the broker
        needs exact windows, so it probes rather than delegates).
    """

    def __init__(self, sites: list[Site], delta_t: float = 900.0, r_max: int = 48) -> None:
        if not sites:
            raise ValueError("broker needs at least one site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")
        if delta_t <= 0 or r_max < 1:
            raise ValueError("need delta_t > 0 and r_max >= 1")
        self.sites = {s.name: s for s in sites}
        self.delta_t = float(delta_t)
        self.r_max = r_max
        self._rids = itertools.count(1)
        self._active: dict[int, CrossSiteAllocation] = {}

    @property
    def now(self) -> float:
        return max(s.scheduler.now for s in self.sites.values())

    def advance(self, to_time: float) -> None:
        """Advance every site's clock (they share global time)."""
        for site in self.sites.values():
            if to_time > site.scheduler.now:
                site.scheduler.advance(to_time)

    @property
    def total_servers(self) -> int:
        return sum(s.n_servers for s in self.sites.values())

    # ------------------------------------------------------------------

    def probe(self, start: float, end: float) -> dict[str, list[IdlePeriod]]:
        """Phase 1: free resources per site over the window (no locks)."""
        return {
            name: site.scheduler.range_search(start, end)
            for name, site in self.sites.items()
        }

    @staticmethod
    def plan(
        availability: dict[str, list[IdlePeriod]],
        n_total: int,
        min_per_site: int = 1,
    ) -> dict[str, int] | None:
        """Phase 2: distribute ``n_total`` servers, fewest sites first.

        Sites are used in decreasing availability so the allocation
        touches as few administrative domains as possible (each extra
        site adds coordination cost); a site is only included if it can
        contribute at least ``min_per_site``.  Returns ``None`` when the
        total free capacity is insufficient.
        """
        if n_total <= 0:
            raise ValueError(f"need a positive server count, got {n_total}")
        if min_per_site < 1:
            raise ValueError(f"min_per_site must be at least 1, got {min_per_site}")
        ranked = sorted(availability.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        remaining = n_total
        shares: dict[str, int] = {}
        for name, free in ranked:
            if remaining == 0:
                break
            capacity = len(free)
            if capacity < min_per_site:
                continue  # this site cannot meaningfully participate
            take = min(capacity, remaining)
            if take < min_per_site:
                # the tail is below the per-site minimum: borrow the
                # deficit from the largest committed share so both sites
                # stay at or above the minimum
                deficit = min_per_site - take
                donor = max(shares, key=shares.__getitem__, default=None)
                if donor is None or shares[donor] - deficit < min_per_site:
                    continue
                shares[donor] -= deficit
                remaining += deficit
                take = min_per_site
            shares[name] = take
            remaining -= take
        return shares if remaining == 0 else None

    def _commit(
        self,
        shares: dict[str, int],
        availability: dict[str, list[IdlePeriod]],
        start: float,
        end: float,
        rid: int,
    ) -> CrossSiteAllocation:
        """Phase 3: all-or-nothing commit with rollback on a race."""
        committed: dict[str, Allocation] = {}
        try:
            for name, count in shares.items():
                chosen = availability[name][:count]
                committed[name] = self.sites[name].scheduler.commit(
                    chosen, start, end, rid=rid
                )
        except ValueError as exc:
            # a local job raced us on this site: undo everything
            for name, allocation in committed.items():
                self.sites[name].scheduler.cancel(allocation.rid)
            raise CommitRace(str(exc)) from exc
        return CrossSiteAllocation(rid=rid, start=start, end=end, parts=committed)

    def allocate(
        self,
        n_servers: int,
        duration: float,
        earliest_start: float | None = None,
        min_per_site: int = 1,
    ) -> CrossSiteAllocation | None:
        """Atomically allocate ``n_servers`` across sites for ``duration``.

        Probes, plans and commits; on insufficient capacity or a commit
        race the whole attempt moves ``Δt`` later, up to ``r_max``
        attempts.  Returns ``None`` when every attempt fails.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        base = max(earliest_start if earliest_start is not None else self.now, self.now)
        rid = next(self._rids)
        for k in range(self.r_max):
            start = base + k * self.delta_t
            end = start + duration
            if not all(
                s.scheduler.calendar.in_horizon(start) for s in self.sites.values()
            ):
                return None
            availability = self.probe(start, end)
            shares = self.plan(availability, n_servers, min_per_site=min_per_site)
            if shares is None:
                continue
            try:
                allocation = self._commit(shares, availability, start, end, rid)
            except CommitRace:
                continue  # someone raced in; retry the ladder
            self._active[rid] = allocation
            return allocation
        return None

    def release(self, rid: int) -> None:
        """Tear down a cross-site allocation on every site."""
        allocation = self._active.pop(rid, None)
        if allocation is None:
            raise KeyError(f"no active cross-site allocation with rid={rid}")
        for name, part in allocation.parts.items():
            self.sites[name].scheduler.cancel(part.rid)
