"""Gang allocation for MapReduce-style jobs.

The paper motivates co-allocation with MapReduce: the middleware "needs
to allocate compute nodes to handle multiple map and reduce instances"
— a gang of nodes for the map wave, then a (usually smaller) gang for
the reduce wave that can only start when every map finishes.

:class:`MapReduceScheduler` plans both waves atomically: the map wave is
co-allocated first, the reduce wave is *advance-reserved* to start at the
map wave's completion (the shuffle barrier), and if either wave cannot be
placed the whole job is declined — no half-planned jobs holding nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.types import Allocation, Request
from ..facade import CoAllocationScheduler

__all__ = ["MapReducePlan", "MapReduceScheduler"]


@dataclass(frozen=True, slots=True)
class MapReducePlan:
    """Committed two-wave plan for one MapReduce job."""

    job_id: int
    map_allocation: Allocation
    reduce_allocation: Allocation

    @property
    def start(self) -> float:
        return self.map_allocation.start

    @property
    def shuffle_time(self) -> float:
        """The map→reduce barrier: maps end, reducers start."""
        return self.map_allocation.end

    @property
    def end(self) -> float:
        return self.reduce_allocation.end

    @property
    def makespan(self) -> float:
        return self.end - self.start


class MapReduceScheduler:
    """Plans map and reduce waves on a shared node pool.

    Parameters
    ----------
    n_nodes:
        Cluster size.
    slots_per_node:
        Map/reduce task slots per node; a wave of ``k`` tasks needs
        ``ceil(k / slots_per_node)`` nodes.
    tau, q_slots:
        Calendar parameters (defaults: 5-minute slots, 24-hour horizon —
        MapReduce jobs are shorter-lived than HPC reservations).
    """

    def __init__(
        self,
        n_nodes: int,
        slots_per_node: int = 2,
        tau: float = 300.0,
        q_slots: int = 288,
    ) -> None:
        if slots_per_node <= 0:
            raise ValueError(f"need at least one slot per node, got {slots_per_node}")
        self.slots_per_node = slots_per_node
        self.scheduler = CoAllocationScheduler(n_servers=n_nodes, tau=tau, q_slots=q_slots)
        self._ids = itertools.count(1)
        self._plans: dict[int, MapReducePlan] = {}

    @property
    def now(self) -> float:
        return self.scheduler.now

    def advance(self, to_time: float) -> None:
        self.scheduler.advance(to_time)

    def nodes_for(self, tasks: int) -> int:
        """Nodes needed to host ``tasks`` parallel task instances."""
        if tasks <= 0:
            raise ValueError(f"task count must be positive, got {tasks}")
        return -(-tasks // self.slots_per_node)  # ceil division

    def submit(
        self,
        n_map_tasks: int,
        map_duration: float,
        n_reduce_tasks: int,
        reduce_duration: float,
        deadline: float | None = None,
    ) -> MapReducePlan | None:
        """Plan a job; returns ``None`` when the gang cannot be placed.

        Atomicity: if the reduce wave cannot be reserved at the shuffle
        barrier, the already-committed map wave is rolled back.
        """
        job_id = next(self._ids)
        map_nodes = self.nodes_for(n_map_tasks)
        reduce_nodes = self.nodes_for(n_reduce_tasks)
        map_rid = job_id * 2
        reduce_rid = job_id * 2 + 1
        map_deadline = None
        if deadline is not None:
            map_deadline = deadline - reduce_duration
            if map_deadline < self.now + map_duration:
                return None  # cannot possibly finish in time
        map_alloc = self.scheduler.schedule(
            Request(
                qr=self.now,
                sr=self.now,
                lr=map_duration,
                nr=map_nodes,
                rid=map_rid,
                deadline=map_deadline,
            )
        )
        if map_alloc is None:
            return None
        reduce_alloc = self.scheduler.schedule(
            Request(
                qr=self.now,
                sr=map_alloc.end,  # the shuffle barrier
                lr=reduce_duration,
                nr=reduce_nodes,
                rid=reduce_rid,
                deadline=deadline,
            )
        )
        if reduce_alloc is None:
            self.scheduler.cancel(map_rid)  # atomic: all or nothing
            return None
        plan = MapReducePlan(
            job_id=job_id, map_allocation=map_alloc, reduce_allocation=reduce_alloc
        )
        self._plans[job_id] = plan
        return plan

    def cancel(self, job_id: int) -> None:
        """Withdraw a planned job, releasing both waves."""
        plan = self._plans.pop(job_id, None)
        if plan is None:
            raise KeyError(f"no planned job with id={job_id}")
        for rid in (plan.map_allocation.rid, plan.reduce_allocation.rid):
            self.scheduler.cancel(rid)

    def cluster_utilization(self, ta: float, tb: float) -> float:
        return self.scheduler.utilization(ta, tb)
