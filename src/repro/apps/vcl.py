"""Virtual Computing Laboratory front-end (Section 3.1).

The VCL serves two request classes over one machine pool:

* **desktop reservations** — advance reservations ("exclusive use of
  multiple resources over a specific time window based on class
  schedules"), granted or answered with alternative times;
* **HPC requests** — on-demand best-effort batches of machines.

This module is the resource-manager workflow the paper describes: run
the co-allocation algorithm, return authentication material on success,
or "suggest alternative times at which the resources are available" on
refusal.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from ..core.types import Allocation, Request
from ..facade import CoAllocationScheduler

__all__ = ["VCLManager", "VCLReservation", "ReservationDenied"]


@dataclass(frozen=True, slots=True)
class VCLReservation:
    """A granted reservation plus the access material sent to the user."""

    rid: int
    machines: tuple[int, ...]
    start: float
    end: float
    access_token: str

    @property
    def count(self) -> int:
        return len(self.machines)


class ReservationDenied(Exception):
    """Raised when no machines are available; carries alternative times."""

    def __init__(self, message: str, alternatives: list[float]) -> None:
        super().__init__(message)
        self.alternatives = alternatives


class VCLManager:
    """Reservation manager for a VCL-style machine pool.

    Parameters
    ----------
    n_machines:
        Pool size.
    tau:
        Scheduling granularity (default 15 minutes — class periods align
        to it).
    q_slots:
        Horizon; the default covers one week of advance booking.
    setup_time:
        Image-deployment overhead prepended to every reservation: the
        machines are held from ``start - setup_time`` so they are ready
        at ``start``.
    """

    def __init__(
        self,
        n_machines: int,
        tau: float = 900.0,
        q_slots: int = 7 * 96,
        setup_time: float = 0.0,
    ) -> None:
        if setup_time < 0:
            raise ValueError(f"setup time cannot be negative, got {setup_time}")
        self.setup_time = setup_time
        self.scheduler = CoAllocationScheduler(n_servers=n_machines, tau=tau, q_slots=q_slots)
        self._rids = itertools.count(1)

    @property
    def now(self) -> float:
        return self.scheduler.now

    def advance(self, to_time: float) -> None:
        self.scheduler.advance(to_time)

    # ------------------------------------------------------------------

    def _token(self, allocation: Allocation) -> str:
        payload = f"{allocation.rid}:{allocation.start}:{allocation.servers}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def reserve_desktops(
        self, count: int, start: float, duration: float
    ) -> VCLReservation:
        """Advance-reserve ``count`` desktops for a class at ``start``.

        The reservation is *rigid*: either the machines are free at
        exactly ``start`` (class hours don't move) or the request is
        denied with alternative times.
        """
        effective_start = start - self.setup_time
        if effective_start < self.now:
            raise ValueError(
                f"reservation at {start} (setup from {effective_start}) is in the past"
            )
        rid = next(self._rids)
        request = Request(
            qr=self.now,
            sr=effective_start,
            lr=duration + self.setup_time,
            nr=count,
            rid=rid,
        )
        feasible = self.scheduler.calendar.find_feasible(
            effective_start, effective_start + request.lr, count
        )
        if feasible is None:
            alternatives = self.scheduler.suggest_alternatives(request)
            raise ReservationDenied(
                f"{count} machines not available at {start}",
                [t + self.setup_time for t in alternatives],
            )
        allocation = self.scheduler.commit(
            feasible, effective_start, effective_start + request.lr, rid=rid
        )
        return VCLReservation(
            rid=rid,
            machines=allocation.servers,
            start=start,
            end=start + duration,
            access_token=self._token(allocation),
        )

    def request_hpc(self, count: int, duration: float) -> VCLReservation:
        """On-demand HPC batch: start as soon as possible (Δt ladder)."""
        rid = next(self._rids)
        request = Request(qr=self.now, sr=self.now, lr=duration, nr=count, rid=rid)
        allocation = self.scheduler.schedule(request)
        if allocation is None:
            alternatives = self.scheduler.suggest_alternatives(request)
            raise ReservationDenied(f"{count} machines not available", alternatives)
        return VCLReservation(
            rid=rid,
            machines=allocation.servers,
            start=allocation.start,
            end=allocation.end,
            access_token=self._token(allocation),
        )

    def cancel(self, reservation: VCLReservation) -> None:
        """Cancel a reservation, returning its machines to the pool."""
        self.scheduler.cancel(reservation.rid)

    def pool_utilization(self, ta: float, tb: float) -> float:
        """Committed fraction of the pool over a window."""
        return self.scheduler.utilization(ta, tb)
