"""Workflow (DAG) scheduling on co-allocated resources.

The paper's introduction motivates co-allocation with scientific
workflows (LIGO, SCEC, LEAD): pipelines of stages with "strong dependency
on completion times", each stage needing several servers at once.  This
module plans a whole DAG atomically on top of the core scheduler:

* stages are topologically ordered (cycles rejected);
* each stage is advance-reserved with ``s_r`` = the latest completion
  of its dependencies — the synchronization the paper calls crucial;
* if any stage cannot be placed, every already-committed stage is rolled
  back: a workflow never holds resources it cannot use.

Because stages are committed as advance reservations, the submitter gets
the full schedule — start and end of every stage — at submission time,
the predictability property deadline-driven workflows need.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..core.types import Allocation, Request
from ..facade import CoAllocationScheduler

__all__ = ["Stage", "StagePlan", "WorkflowPlan", "WorkflowScheduler", "CycleError"]


class CycleError(ValueError):
    """The stage graph is not a DAG."""


@dataclass(frozen=True, slots=True)
class Stage:
    """One workflow stage: ``nr`` servers for ``lr`` time units.

    ``depends_on`` names stages that must complete before this one
    starts (the shuffle/synchronization barriers of the pipeline).
    """

    name: str
    nr: int
    lr: float
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage needs a non-empty name")
        if self.nr <= 0:
            raise ValueError(f"stage {self.name}: needs at least one server")
        if self.lr <= 0:
            raise ValueError(f"stage {self.name}: duration must be positive")
        if self.name in self.depends_on:
            raise CycleError(f"stage {self.name} depends on itself")


@dataclass(frozen=True, slots=True)
class StagePlan:
    """A committed stage: which servers, when."""

    stage: Stage
    allocation: Allocation

    @property
    def start(self) -> float:
        return self.allocation.start

    @property
    def end(self) -> float:
        return self.allocation.end


@dataclass(frozen=True, slots=True)
class WorkflowPlan:
    """The committed schedule of a whole workflow."""

    workflow_id: int
    stages: dict[str, StagePlan] = field(default_factory=dict)

    @property
    def start(self) -> float:
        return min(p.start for p in self.stages.values())

    @property
    def end(self) -> float:
        return max(p.end for p in self.stages.values())

    @property
    def makespan(self) -> float:
        return self.end - self.start

    def critical_path(self) -> list[str]:
        """Stage names on the longest dependency chain (by completion)."""
        # walk back from the stage finishing last through its latest dep
        last = max(self.stages.values(), key=lambda p: p.end)
        path = [last.stage.name]
        current = last
        while current.stage.depends_on:
            current = max(
                (self.stages[d] for d in current.stage.depends_on), key=lambda p: p.end
            )
            path.append(current.stage.name)
        path.reverse()
        return path


def topological_order(stages: list[Stage]) -> list[Stage]:
    """Kahn's algorithm; raises :class:`CycleError` on cycles, ``KeyError``
    on dependencies naming unknown stages."""
    by_name = {s.name: s for s in stages}
    if len(by_name) != len(stages):
        raise ValueError("duplicate stage names")
    for s in stages:
        for dep in s.depends_on:
            if dep not in by_name:
                raise KeyError(f"stage {s.name} depends on unknown stage {dep!r}")
    indegree = {s.name: len(s.depends_on) for s in stages}
    dependants: dict[str, list[str]] = {s.name: [] for s in stages}
    for s in stages:
        for dep in s.depends_on:
            dependants[dep].append(s.name)
    # a min-heap yields the lexicographically smallest ready stage each
    # round — the same deterministic order as the old sorted-list front
    # pop, without the O(N) shift and the re-sort per iteration
    ready = [name for name, deg in indegree.items() if deg == 0]
    heapq.heapify(ready)
    order: list[Stage] = []
    while ready:
        name = heapq.heappop(ready)
        order.append(by_name[name])
        for child in dependants[name]:
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(ready, child)
    if len(order) != len(stages):
        cyclic = sorted(name for name, deg in indegree.items() if deg > 0)
        raise CycleError(f"stage graph has a cycle among {cyclic}")
    return order


class WorkflowScheduler:
    """Plans whole DAGs of co-allocation requests, atomically."""

    def __init__(
        self,
        n_servers: int,
        tau: float = 900.0,
        q_slots: int = 288,
        delta_t: float | None = None,
        r_max: int | None = None,
    ) -> None:
        self.scheduler = CoAllocationScheduler(
            n_servers=n_servers, tau=tau, q_slots=q_slots, delta_t=delta_t, r_max=r_max
        )
        self._ids = itertools.count(1)
        self._rids = itertools.count(1)
        self._plans: dict[int, WorkflowPlan] = {}

    @property
    def now(self) -> float:
        return self.scheduler.now

    def advance(self, to_time: float) -> None:
        self.scheduler.advance(to_time)

    def submit(
        self,
        stages: list[Stage],
        earliest_start: float | None = None,
        deadline: float | None = None,
    ) -> WorkflowPlan | None:
        """Plan every stage; returns ``None`` (with full rollback) when any
        stage cannot be placed or the deadline cannot be met."""
        if not stages:
            raise ValueError("workflow needs at least one stage")
        order = topological_order(stages)
        base = max(earliest_start if earliest_start is not None else self.now, self.now)
        workflow_id = next(self._ids)
        committed: dict[str, StagePlan] = {}
        try:
            for stage in order:
                sr = base
                for dep in stage.depends_on:
                    sr = max(sr, committed[dep].end)
                rid = next(self._rids)
                allocation = self.scheduler.schedule(
                    Request(
                        qr=self.now,
                        sr=sr,
                        lr=stage.lr,
                        nr=stage.nr,
                        rid=rid,
                        deadline=deadline,
                    )
                )
                if allocation is None:
                    raise _Unplaceable(stage.name)
                committed[stage.name] = StagePlan(stage=stage, allocation=allocation)
        except (_Unplaceable, ValueError):
            # ValueError: Request validation (e.g. deadline already missed)
            for plan in committed.values():
                self.scheduler.cancel(plan.allocation.rid)
            return None
        plan = WorkflowPlan(workflow_id=workflow_id, stages=committed)
        self._plans[workflow_id] = plan
        return plan

    def cancel(self, workflow_id: int) -> None:
        """Withdraw a committed workflow, releasing every stage."""
        plan = self._plans.pop(workflow_id, None)
        if plan is None:
            raise KeyError(f"no committed workflow with id={workflow_id}")
        for stage_plan in plan.stages.values():
            self.scheduler.cancel(stage_plan.allocation.rid)

    def utilization(self, ta: float, tb: float) -> float:
        return self.scheduler.utilization(ta, tb)


class _Unplaceable(Exception):
    """Internal: a stage could not be scheduled; triggers rollback."""
