"""Lambda scheduling for optical grids (Section 3.2).

A path computation element (PCE) must allocate the *same wavelength on
every link of a path* for the same time window — the co-allocation
problem in its purest form.  This module models a WDM network as a
:mod:`networkx` graph where each ``(link, wavelength)`` pair is one
resource in an availability calendar, and implements lightpath admission
on top of the core range-search/commit API:

1. enumerate candidate paths (k-shortest);
2. run one *range search* over the requested window — a single query
   returning every free ``(link, λ)`` resource, exactly the paper's
   "users may run customized routing algorithms to select among the
   available paths and wavelengths";
3. pick the first (path, λ) whose links are all available (first-fit on
   wavelength, shortest-path first — the classic RWA heuristic);
4. commit those resources atomically.

Start-time flexibility within ``[window_start, window_end]`` is handled
with the same ``Δt`` ladder as the core scheduler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

from ..core.calendar import AvailabilityCalendar
from ..core.coalloc import OnlineCoAllocator
from ..core.opcount import OpCounter
from ..core.types import IdlePeriod

__all__ = ["Lightpath", "LambdaGridScheduler"]


@dataclass(frozen=True, slots=True)
class Lightpath:
    """An admitted lightpath: a wavelength held on every link of a path."""

    rid: int
    path: tuple[str, ...]  # node sequence
    wavelength: int
    start: float
    end: float

    @property
    def links(self) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.path, self.path[1:]))


class LambdaGridScheduler:
    """PCE-style wavelength co-allocation over a WDM topology.

    Parameters
    ----------
    graph:
        Undirected network topology (nodes are any hashables; edges are
        fibre links).
    n_wavelengths:
        Wavelengths per link (no converters: wavelength continuity holds
        end to end).
    tau, q_slots, delta_t, r_max:
        Calendar/scheduler parameters, as in the core.
    k_paths:
        Candidate paths considered per request.
    """

    def __init__(
        self,
        graph: nx.Graph,
        n_wavelengths: int,
        tau: float = 900.0,
        q_slots: int = 96,
        delta_t: float | None = None,
        r_max: int | None = None,
        k_paths: int = 3,
    ) -> None:
        if n_wavelengths <= 0:
            raise ValueError(f"need at least one wavelength, got {n_wavelengths}")
        if graph.number_of_edges() == 0:
            raise ValueError("topology has no links")
        self.graph = graph
        self.n_wavelengths = n_wavelengths
        self.k_paths = k_paths
        # canonical undirected edge order -> resource index block
        self._edge_index = {
            self._canon(u, v): i for i, (u, v) in enumerate(graph.edges())
        }
        n_resources = len(self._edge_index) * n_wavelengths
        self.counter = OpCounter()
        self.calendar = AvailabilityCalendar(
            n_servers=n_resources, tau=tau, q_slots=q_slots, counter=self.counter
        )
        self.allocator = OnlineCoAllocator(
            self.calendar,
            delta_t=delta_t if delta_t is not None else tau,
            r_max=r_max if r_max is not None else max(1, q_slots // 2),
            counter=self.counter,
        )
        self._rids = itertools.count(1)
        self._active: dict[int, Lightpath] = {}

    @staticmethod
    def _canon(u, v) -> tuple:
        return (u, v) if repr(u) <= repr(v) else (v, u)

    def resource_id(self, u, v, wavelength: int) -> int:
        """Calendar server index of wavelength ``λ`` on link ``(u, v)``."""
        if not 0 <= wavelength < self.n_wavelengths:
            raise ValueError(f"wavelength {wavelength} out of range")
        try:
            edge = self._edge_index[self._canon(u, v)]
        except KeyError:
            raise KeyError(f"no link between {u!r} and {v!r}") from None
        return edge * self.n_wavelengths + wavelength

    # ------------------------------------------------------------------

    def candidate_paths(self, src, dst) -> list[tuple]:
        """Up to ``k_paths`` shortest simple paths between two nodes."""
        gen = nx.shortest_simple_paths(self.graph, src, dst)
        return [tuple(p) for p in itertools.islice(gen, self.k_paths)]

    def request_lightpath(
        self,
        src,
        dst,
        duration: float,
        window_start: float,
        window_end: float | None = None,
    ) -> Lightpath | None:
        """Admit a lightpath of ``duration`` starting within the window.

        Returns ``None`` when no (path, wavelength, start) combination is
        available — the atomic all-links-or-nothing semantics of
        wavelength co-allocation.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        window_end = window_end if window_end is not None else window_start
        if window_end < window_start:
            raise ValueError("window end precedes window start")
        paths = self.candidate_paths(src, dst)
        t = max(window_start, self.calendar.now)
        step = self.allocator.delta_t
        while t <= window_end:
            if not self.calendar.in_horizon(t):
                return None
            free = self._free_resources(t, t + duration)
            admitted = self._try_admit(paths, free, t, duration)
            if admitted is not None:
                return admitted
            t += step
        return None

    def _free_resources(self, start: float, end: float) -> dict[int, IdlePeriod]:
        """One range search: every free (link, λ) resource over the window."""
        return {p.server: p for p in self.calendar.range_search(start, end)}

    def _try_admit(
        self, paths: list[tuple], free: dict[int, IdlePeriod], start: float, duration: float
    ) -> Lightpath | None:
        for path in paths:
            links = list(zip(path, path[1:]))
            for wavelength in range(self.n_wavelengths):
                rids = [self.resource_id(u, v, wavelength) for u, v in links]
                if all(r in free for r in rids):
                    rid = next(self._rids)
                    periods = [free[r] for r in rids]
                    self.allocator.commit(periods, start, start + duration, rid=rid)
                    lp = Lightpath(
                        rid=rid,
                        path=path,
                        wavelength=wavelength,
                        start=start,
                        end=start + duration,
                    )
                    self._active[rid] = lp
                    return lp
        return None

    def release_lightpath(self, rid: int) -> None:
        """Tear down a lightpath, freeing its wavelength on every link."""
        lp = self._active.pop(rid, None)
        if lp is None:
            raise KeyError(f"no active lightpath with rid={rid}")
        for u, v in lp.links:
            resource = self.resource_id(u, v, lp.wavelength)
            lo = max(lp.start, self.calendar.now)
            if lo < lp.end:
                self.calendar.release(resource, lo, lp.end)

    def advance(self, to_time: float) -> None:
        """Advance the PCE clock."""
        self.calendar.advance(to_time)

    def link_utilization(self, u, v, ta: float, tb: float) -> float:
        """Fraction of wavelength-time committed on one link over a window."""
        if not ta < tb:
            raise ValueError(f"window [{ta}, {tb}) is empty")
        idle = 0.0
        for wavelength in range(self.n_wavelengths):
            for p in self.calendar.idle_periods(self.resource_id(u, v, wavelength)):
                lo, hi = max(p.st, ta), min(p.et, tb)
                if lo < hi:
                    idle += hi - lo
        return 1.0 - idle / ((tb - ta) * self.n_wavelengths)
