"""Applications of the co-allocation core (Section 3 + Section 6).

* :class:`~repro.apps.vcl.VCLManager` — Virtual Computing Laboratory
  reservation front-end (desktops + HPC, alternative-time suggestions);
* :class:`~repro.apps.lambda_grid.LambdaGridScheduler` — PCE-style
  path + wavelength co-allocation on a WDM network;
* :class:`~repro.apps.mapreduce.MapReduceScheduler` — gang allocation of
  map and reduce waves with an atomic shuffle barrier;
* :class:`~repro.apps.workflow.WorkflowScheduler` — DAGs of co-allocation
  requests committed atomically via advance reservations;
* :class:`~repro.apps.multisite.MultiSiteBroker` — atomic probe/plan/
  commit co-allocation across administrative sites (the DUROC problem).
"""

from .lambda_grid import LambdaGridScheduler, Lightpath
from .multisite import CommitRace, CrossSiteAllocation, MultiSiteBroker, Site
from .mapreduce import MapReducePlan, MapReduceScheduler
from .vcl import ReservationDenied, VCLManager, VCLReservation
from .workflow import Stage, StagePlan, WorkflowPlan, WorkflowScheduler

__all__ = [
    "LambdaGridScheduler",
    "Lightpath",
    "CommitRace",
    "CrossSiteAllocation",
    "MapReducePlan",
    "MapReduceScheduler",
    "MultiSiteBroker",
    "Site",
    "ReservationDenied",
    "Stage",
    "StagePlan",
    "VCLManager",
    "VCLReservation",
    "WorkflowPlan",
    "WorkflowScheduler",
]
