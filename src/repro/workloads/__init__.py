"""Workloads: SWF parsing, statistical models, and the calibrated
synthetic stand-ins for the paper's CTC / KTH / HPC2N traces."""

from .archive import TAU, WORKLOADS, WorkloadSpec, generate_workload, workload_table
from .models import DAY, ArrivalProcess, EstimateAccuracy, LognormalMixture, PowerOfTwoSizes
from .reservations import MAX_LEAD, with_advance_reservations
from .swf import SWFJob, read_swf, swf_to_requests, write_swf

__all__ = [
    "DAY",
    "MAX_LEAD",
    "TAU",
    "WORKLOADS",
    "ArrivalProcess",
    "EstimateAccuracy",
    "LognormalMixture",
    "PowerOfTwoSizes",
    "SWFJob",
    "WorkloadSpec",
    "generate_workload",
    "read_swf",
    "swf_to_requests",
    "with_advance_reservations",
    "workload_table",
]
