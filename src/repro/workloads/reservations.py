"""Advance-reservation workload transformation (Section 5.2).

The Parallel Workload Archive has no advance-reservation traces, so the
paper generates them: a fraction ``ρ`` of jobs is picked at random and
given a requested start time ``s_r`` zero to three hours in the future
(following Smith/Foster/Taylor's model).  ``ρ = 0`` leaves the workload
untouched; ``ρ = 1`` makes every job an advance reservation.
"""

from __future__ import annotations

import numpy as np

from ..core.types import Request

__all__ = ["with_advance_reservations", "MAX_LEAD"]

#: the paper draws requested start times within zero to three hours ahead
MAX_LEAD = 3.0 * 3600.0


def with_advance_reservations(
    requests: list[Request],
    rho: float,
    seed: int = 0,
    max_lead: float = MAX_LEAD,
) -> list[Request]:
    """Return a copy of the workload where a ``rho`` fraction are ARs.

    Chosen jobs keep their submission time ``q_r`` but request
    ``s_r = q_r + U(0, max_lead)``.  Selection and lead times are
    reproducible from ``seed``.
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"reservation fraction must lie in [0, 1], got {rho}")
    if max_lead <= 0:
        raise ValueError(f"maximum lead time must be positive, got {max_lead}")
    if rho == 0.0 or not requests:
        return list(requests)
    rng = np.random.default_rng(seed)
    n_pick = int(round(rho * len(requests)))
    picked = set(rng.choice(len(requests), size=n_pick, replace=False).tolist())
    out: list[Request] = []
    for idx, req in enumerate(requests):
        if idx in picked:
            lead = float(rng.uniform(0.0, max_lead))
            out.append(
                Request(
                    qr=req.qr,
                    sr=req.qr + lead,
                    lr=req.lr,
                    nr=req.nr,
                    rid=req.rid,
                    deadline=req.deadline,
                )
            )
        else:
            out.append(req)
    return out
