"""Calibrated synthetic stand-ins for the paper's three archive traces.

The evaluation drives simulations with three Parallel Workload Archive
logs (Table 1):

========  ==========  ========  ====================
system    processors  jobs      avg. estimated l_r
========  ==========  ========  ====================
CTC SP2   512         39,734    5.82 h
KTH SP2   128         28,481    2.46 h
HPC2N     240         202,825   4.72 h
========  ==========  ========  ====================

The archive cannot be bundled, so each system gets a generator calibrated
to its published aggregates *and* the duration shape visible in
Figure 4(b): KTH is dominated by sub-2-hour jobs (the high-fragmentation
workload), CTC has at most 14 % of jobs below 2 hours, HPC2N sits in
between.  Spatial sizes follow the SP2 power-of-two bias, bounded by each
machine's processor count.  Arrival rates are derived from a target
offered load, so contention (and therefore queueing) is comparable to the
original logs.

``generate_workload("KTH", n_jobs=5000, seed=1)`` is the entry point used
throughout the experiments; real logs can replace it via
:func:`repro.workloads.swf.swf_to_requests`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.types import Request
from .models import ArrivalProcess, EstimateAccuracy, LognormalMixture, PowerOfTwoSizes

__all__ = ["WorkloadSpec", "WORKLOADS", "generate_workload", "workload_table"]


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Everything needed to synthesize one system's workload."""

    name: str
    n_servers: int
    n_jobs: int  # job count of the original log (full-scale replay)
    durations: LognormalMixture
    sizes: PowerOfTwoSizes
    offered_load: float  # target fraction of capacity demanded
    cycle_amplitude: float = 0.5

    def arrival_rate(self) -> float:
        """Jobs/second giving the target offered load on ``n_servers``."""
        work_per_job = self.durations.mean() * self.sizes.mean()
        return self.offered_load * self.n_servers / work_per_job


#: τ = 15 min — the paper's slot length and minimum temporal request size
TAU = 900.0

_HOUR = 3600.0

WORKLOADS: dict[str, WorkloadSpec] = {
    # CTC SP2: long jobs dominate; <= 14% under 2 h; mean 5.82 h.
    "CTC": WorkloadSpec(
        name="CTC",
        n_servers=512,
        n_jobs=39734,
        durations=LognormalMixture(
            components=(
                (0.10, 0.75 * _HOUR, 0.9),
                (0.90, 6.40 * _HOUR, 0.6),
            ),
            min_value=TAU,
            max_value=44.0 * _HOUR,
        ),
        sizes=PowerOfTwoSizes(max_size=400, p_serial=0.22, p_power=0.62, geo_decay=0.72),
        offered_load=0.95,
    ),
    # KTH SP2: most jobs shorter than 2 h (Figure 4(b)); mean 2.46 h.
    "KTH": WorkloadSpec(
        name="KTH",
        n_servers=128,
        n_jobs=28481,
        durations=LognormalMixture(
            components=(
                (0.60, 0.55 * _HOUR, 1.0),
                (0.40, 5.35 * _HOUR, 0.75),
            ),
            min_value=TAU,
            max_value=44.0 * _HOUR,
        ),
        sizes=PowerOfTwoSizes(max_size=128, p_serial=0.28, p_power=0.60, geo_decay=0.70),
        offered_load=0.95,
    ),
    # HPC2N: intermediate mix; mean 4.72 h; many more jobs than the others.
    "HPC2N": WorkloadSpec(
        name="HPC2N",
        n_servers=240,
        n_jobs=202825,
        durations=LognormalMixture(
            components=(
                (0.38, 0.80 * _HOUR, 0.95),
                (0.62, 7.12 * _HOUR, 0.80),
            ),
            min_value=TAU,
            max_value=44.0 * _HOUR,
        ),
        sizes=PowerOfTwoSizes(max_size=240, p_serial=0.25, p_power=0.60, geo_decay=0.72),
        offered_load=0.92,
    ),
}


def generate_workload(
    system: str | WorkloadSpec,
    n_jobs: int | None = None,
    seed: int = 0,
    offered_load: float | None = None,
    accuracy: EstimateAccuracy | None = None,
) -> list[Request]:
    """Synthesize a request stream for one of the three systems.

    Parameters
    ----------
    system:
        ``"CTC"``, ``"KTH"``, ``"HPC2N"`` or a custom spec.
    n_jobs:
        Number of jobs; defaults to the original log's size (Table 1) —
        experiments usually pass a scaled-down count.
    seed:
        Seed for the numpy generator; same seed, same workload.
    offered_load:
        Optional override of the spec's target load (used by load sweeps).
    accuracy:
        Optional :class:`~repro.workloads.models.EstimateAccuracy`; when
        given, each request carries an ``actual_lr`` below its estimate
        (the paper's model keeps actual == estimate, so the default is
        None).  The arrival rate is rescaled by the mean accuracy factor
        so the *actual* offered load still matches the spec.
    """
    spec = WORKLOADS[system] if isinstance(system, str) else system
    if offered_load is not None:
        spec = replace(spec, offered_load=offered_load)
    count = n_jobs if n_jobs is not None else spec.n_jobs
    if count <= 0:
        raise ValueError(f"job count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    rate = spec.arrival_rate()
    if accuracy is not None:
        rate /= accuracy.mean_fraction()
    arrivals = ArrivalProcess(rate, spec.cycle_amplitude).sample(rng, count)
    durations = spec.durations.sample(rng, count)
    sizes = spec.sizes.sample(rng, count)
    if accuracy is None:
        actuals = [None] * count
    else:
        actuals = (durations * accuracy.sample(rng, count)).tolist()
    return [
        Request(qr=float(q), sr=float(q), lr=float(l), nr=int(n), rid=i, actual_lr=a)
        for i, (q, l, n, a) in enumerate(zip(arrivals, durations, sizes, actuals))
    ]


def workload_table(n_jobs: int | None = None, seed: int = 0) -> list[tuple[str, int, int, float]]:
    """Rows of Table 1: (workload, processors, jobs, avg estimated l_r in hours).

    With ``n_jobs`` given, the average is measured on a generated sample
    of that size; otherwise the spec's analytic mean is reported against
    the original log's job count.
    """
    rows = []
    for name, spec in WORKLOADS.items():
        if n_jobs is None:
            avg = spec.durations.mean() / _HOUR
            count = spec.n_jobs
        else:
            requests = generate_workload(name, n_jobs=n_jobs, seed=seed)
            avg = float(np.mean([r.lr for r in requests])) / _HOUR
            count = n_jobs
        rows.append((name, spec.n_servers, count, avg))
    return rows
