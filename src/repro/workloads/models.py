"""Statistical building blocks for synthetic workload generation.

The Parallel Workload Archive traces the paper uses are not shippable, so
the generators in :mod:`repro.workloads.archive` are assembled from the
distribution families the workload-modeling literature (Feitelson et al.)
fits to those logs:

* **durations** — mixtures of lognormals (a short-job mode plus a
  long-running mode), clamped to ``[min, max]``;
* **spatial sizes** — power-of-two dominated, with a serial-job atom and
  a thin non-power tail;
* **arrivals** — Poisson, optionally modulated by the daily activity
  cycle (thinning).

Every sampler takes a ``numpy.random.Generator`` so workload generation
is reproducible from a single seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "EstimateAccuracy",
    "LognormalMixture",
    "PowerOfTwoSizes",
    "ArrivalProcess",
    "DAY",
]

#: seconds per day, for the arrival cycle
DAY = 86400.0


@dataclass(frozen=True, slots=True)
class LognormalMixture:
    """Mixture of lognormal components for job durations.

    Each component is ``(weight, mean, sigma)`` where ``mean`` is the
    component's *arithmetic* mean (the underlying normal's ``mu`` is
    derived as ``ln(mean) - sigma^2 / 2``).  Samples are clamped to
    ``[min_value, max_value]``.
    """

    components: tuple[tuple[float, float, float], ...]
    min_value: float = 900.0
    max_value: float = 44.0 * 3600.0

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("mixture needs at least one component")
        total = sum(w for w, _, _ in self.components)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"component weights must sum to 1, got {total}")
        for w, mean, sigma in self.components:
            if w < 0 or mean <= 0 or sigma <= 0:
                raise ValueError(f"bad component (w={w}, mean={mean}, sigma={sigma})")
        if not 0 < self.min_value < self.max_value:
            raise ValueError(
                f"need 0 < min ({self.min_value}) < max ({self.max_value})"
            )

    def mean(self) -> float:
        """Arithmetic mean of the (unclamped) mixture."""
        return sum(w * mean for w, mean, _ in self.components)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` durations."""
        weights = np.array([w for w, _, _ in self.components])
        which = rng.choice(len(self.components), size=size, p=weights / weights.sum())
        out = np.empty(size)
        for idx, (_, mean, sigma) in enumerate(self.components):
            mask = which == idx
            n = int(mask.sum())
            if n:
                mu = math.log(mean) - sigma * sigma / 2.0
                out[mask] = rng.lognormal(mu, sigma, size=n)
        return np.clip(out, self.min_value, self.max_value)


@dataclass(frozen=True, slots=True)
class PowerOfTwoSizes:
    """Spatial-size sampler biased to powers of two (SP2-log style).

    * with probability ``p_serial`` the job is serial (size 1);
    * with probability ``p_power`` the size is ``2^k``, ``k`` geometric-ish
      over ``1 .. log2(max_size)`` (decay ``geo_decay`` per step);
    * otherwise the size is uniform in ``[2, max_size]`` (the non-power
      residue real logs exhibit).
    """

    max_size: int
    p_serial: float = 0.25
    p_power: float = 0.6
    geo_decay: float = 0.75

    def __post_init__(self) -> None:
        if self.max_size < 2:
            raise ValueError(f"max_size must be at least 2, got {self.max_size}")
        if not 0 <= self.p_serial <= 1 or not 0 <= self.p_power <= 1:
            raise ValueError("probabilities must lie in [0, 1]")
        if self.p_serial + self.p_power > 1.0 + 1e-9:
            raise ValueError("p_serial + p_power must not exceed 1")
        if not 0 < self.geo_decay < 1:
            raise ValueError(f"geo_decay must lie in (0, 1), got {self.geo_decay}")

    def mean(self, samples: int = 20000, seed: int = 7) -> float:
        """Empirical mean (used by generators to calibrate arrival rates)."""
        rng = np.random.default_rng(seed)
        return float(self.sample(rng, samples).mean())

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        max_exp = int(math.log2(self.max_size))
        u = rng.random(size)
        out = np.empty(size, dtype=np.int64)
        serial = u < self.p_serial
        power = (~serial) & (u < self.p_serial + self.p_power)
        other = ~(serial | power)
        out[serial] = 1
        if power.any():
            weights = self.geo_decay ** np.arange(max_exp)
            exps = rng.choice(np.arange(1, max_exp + 1), size=int(power.sum()), p=weights / weights.sum())
            out[power] = 2**exps
        if other.any():
            out[other] = rng.integers(2, self.max_size + 1, size=int(other.sum()))
        return np.minimum(out, self.max_size)


@dataclass(frozen=True, slots=True)
class EstimateAccuracy:
    """Model of user runtime-estimate quality.

    Production logs show actual runtimes are a roughly uniform fraction
    of the user estimate, with a spike at the estimate itself (jobs that
    run to their limit and are killed, plus habitual exact estimators) —
    Feitelson's classic observation.  Draws the factor
    ``actual / estimate``:

    * with probability ``p_exact`` the job runs its full estimate;
    * otherwise the factor is uniform on ``[min_fraction, 1]``.
    """

    p_exact: float = 0.15
    min_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_exact <= 1.0:
            raise ValueError(f"p_exact must lie in [0, 1], got {self.p_exact}")
        if not 0.0 < self.min_fraction <= 1.0:
            raise ValueError(f"min_fraction must lie in (0, 1], got {self.min_fraction}")

    def mean_fraction(self) -> float:
        """Expected actual/estimate ratio."""
        return self.p_exact + (1.0 - self.p_exact) * (1.0 + self.min_fraction) / 2.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` actual/estimate factors in ``(0, 1]``."""
        factors = rng.uniform(self.min_fraction, 1.0, size=size)
        exact = rng.random(size) < self.p_exact
        factors[exact] = 1.0
        return factors


@dataclass(frozen=True, slots=True)
class ArrivalProcess:
    """Poisson arrivals, optionally modulated by a daily cycle.

    ``rate`` is the long-run average arrival rate (jobs/second).  With
    ``cycle_amplitude > 0`` the instantaneous rate follows
    ``rate * (1 + a * sin(2π t / DAY))`` via thinning, reproducing the
    day/night pattern of production logs; ``a`` must stay below 1.
    """

    rate: float
    cycle_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if not 0 <= self.cycle_amplitude < 1:
            raise ValueError(
                f"cycle amplitude must lie in [0, 1), got {self.cycle_amplitude}"
            )

    def sample(self, rng: np.random.Generator, n: int, start: float = 0.0) -> np.ndarray:
        """Generate ``n`` arrival times (non-decreasing, starting after ``start``)."""
        if self.cycle_amplitude == 0.0:
            gaps = rng.exponential(1.0 / self.rate, size=n)
            return start + np.cumsum(gaps)
        # thinning against the peak rate
        peak = self.rate * (1.0 + self.cycle_amplitude)
        times = np.empty(n)
        t = start
        for i in range(n):
            while True:
                t += rng.exponential(1.0 / peak)
                accept = (1.0 + self.cycle_amplitude * math.sin(2.0 * math.pi * t / DAY)) / (
                    1.0 + self.cycle_amplitude
                )
                if rng.random() <= accept:
                    break
            times[i] = t
        return times
