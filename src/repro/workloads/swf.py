"""Standard Workload Format (SWF) reader/writer.

The Parallel Workload Archive — the source of the paper's CTC, KTH and
HPC2N traces — distributes logs in SWF: one job per line, 18
whitespace-separated fields, ``;`` comment lines carrying header metadata.
This module parses and emits that format so real archive logs can drive
the experiments directly, and so the synthetic generators can persist
their output in the ecosystem's lingua franca.

Field reference (1-indexed, per the archive's swf.html):

==  =======================  ==================================================
 1  job_number               unique, usually 1-based
 2  submit_time              seconds from the log start
 3  wait_time                seconds in queue (the trace scheduler's verdict)
 4  run_time                 actual runtime, seconds
 5  allocated_processors     processors actually given
 6  average_cpu_time         per-processor CPU seconds (-1 if unknown)
 7  used_memory              KB per processor (-1 if unknown)
 8  requested_processors     what the user asked for
 9  requested_time           user's runtime estimate, seconds
10  requested_memory         KB per processor (-1 if unknown)
11  status                   1 completed, 0 failed, 5 cancelled, -1 unknown
12  user_id / 13 group_id / 14 executable / 15 queue / 16 partition
17  preceding_job / 18 think_time
==  =======================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..core.types import Request

__all__ = [
    "SWFJob",
    "read_swf",
    "write_swf",
    "swf_to_requests",
    "iter_swf_jobs",
    "stream_swf_requests",
]


@dataclass(frozen=True, slots=True)
class SWFJob:
    """One SWF record; unknown numeric fields hold -1 (the SWF convention)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_processors: int
    average_cpu_time: float = -1.0
    used_memory: float = -1.0
    requested_processors: int = -1
    requested_time: float = -1.0
    requested_memory: float = -1.0
    status: int = 1
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: float = -1.0

    def processors(self) -> int:
        """Best available processor count: requested, else allocated."""
        if self.requested_processors > 0:
            return self.requested_processors
        return self.allocated_processors

    def estimated_runtime(self) -> float:
        """Best available duration estimate: requested time, else run time.

        The paper schedules on the *estimated* duration ``l_r`` (a priori
        knowledge of temporal size, Section 2).
        """
        if self.requested_time > 0:
            return self.requested_time
        return self.run_time


_FIELDS = [f.name for f in fields(SWFJob)]
_INT_FIELDS = {
    "job_number",
    "allocated_processors",
    "requested_processors",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
}


def _parse_line(line: str, lineno: int) -> SWFJob:
    parts = line.split()
    if len(parts) != 18:
        raise ValueError(f"SWF line {lineno}: expected 18 fields, got {len(parts)}")
    kwargs = {}
    for name, token in zip(_FIELDS, parts):
        try:
            kwargs[name] = int(token) if name in _INT_FIELDS else float(token)
        except ValueError as exc:
            raise ValueError(f"SWF line {lineno}: bad value {token!r} for {name}") from exc
    return SWFJob(**kwargs)


def read_swf(source: str | Path | TextIO) -> tuple[list[SWFJob], dict[str, str]]:
    """Parse an SWF file (or file-like) into jobs plus header metadata.

    Header comment lines of the form ``; Key: value`` populate the
    metadata dict; other comments are skipped.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_swf(fh)
    jobs: list[SWFJob] = []
    meta: dict[str, str] = {}
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip("; ").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                if key.strip():
                    meta[key.strip()] = value.strip()
            continue
        jobs.append(_parse_line(line, lineno))
    return jobs, meta


def write_swf(
    jobs: Iterable[SWFJob],
    target: str | Path | TextIO,
    metadata: dict[str, str] | None = None,
) -> None:
    """Emit jobs in SWF, with optional ``; Key: value`` header lines."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_swf(jobs, fh, metadata)
            return
    if metadata:
        for key, value in metadata.items():
            target.write(f"; {key}: {value}\n")
    for job in jobs:
        cells = []
        for name in _FIELDS:
            value = getattr(job, name)
            if name in _INT_FIELDS:
                cells.append(str(int(value)))
            elif value == int(value):
                cells.append(str(int(value)))  # archive style: integral seconds
            else:
                cells.append(repr(value))  # shortest exact representation
        target.write(" ".join(cells) + "\n")


def swf_to_requests(jobs: Iterable[SWFJob], use_estimates: bool = True) -> list[Request]:
    """Extract the paper's ``(q_r, s_r, l_r, n_r)`` tuples from SWF records.

    ``s_r = q_r`` (traces contain no advance reservations — Section 5.2
    synthesizes those separately); ``l_r`` is the runtime estimate when
    ``use_estimates`` (the paper's model) or the actual runtime otherwise.
    Jobs with no usable duration or processor count are skipped, matching
    the usual archive-cleaning step.
    """
    requests: list[Request] = []
    for job in jobs:
        nr = job.processors()
        lr = job.estimated_runtime() if use_estimates else job.run_time
        if nr <= 0 or lr <= 0:
            continue
        requests.append(
            Request(qr=job.submit_time, sr=job.submit_time, lr=lr, nr=nr, rid=job.job_number)
        )
    return requests


def iter_swf_jobs(source: str | Path | TextIO) -> Iterator[SWFJob]:
    """Stream SWF records one at a time without materializing the log.

    The streaming counterpart of :func:`read_swf` for request sources
    that feed a live consumer (the ``repro loadgen`` replay client):
    archive logs run to millions of jobs, and an open-loop sender only
    ever needs the next one.  Header/comment lines are skipped.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            yield from iter_swf_jobs(fh)
        return
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        yield _parse_line(line, lineno)


def stream_swf_requests(
    source: str | Path | TextIO, use_estimates: bool = True
) -> Iterator[Request]:
    """Stream the paper's ``(q_r, s_r, l_r, n_r)`` tuples from an SWF log.

    Lazy counterpart of :func:`swf_to_requests` with identical cleaning
    (jobs without a usable duration or processor count are skipped, and
    ``s_r = q_r`` — archive traces contain no advance reservations).
    """
    for job in iter_swf_jobs(source):
        nr = job.processors()
        lr = job.estimated_runtime() if use_estimates else job.run_time
        if nr <= 0 or lr <= 0:
            continue
        yield Request(qr=job.submit_time, sr=job.submit_time, lr=lr, nr=nr, rid=job.job_number)
