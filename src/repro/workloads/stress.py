"""Synthetic heavy-traffic workloads for hot-path benchmarking.

Unlike :mod:`repro.workloads.archive` (which recreates the statistical
shape of specific Parallel Workload Archive logs), this generator aims at
*stress*: a Poisson stream sized against system capacity so the calendar
stays busy, a duration mixture that fragments idle periods, and a
controllable advance-reservation fraction ``rho`` that exercises the
horizon-rollover and pending-bucket machinery.

The stream is fully determined by ``seed`` — the benchmark harness relies
on that to compare scheduling outcomes bit-for-bit across code changes.
"""

from __future__ import annotations

import random

from ..core.types import Request

__all__ = ["stress_workload"]

#: spatial-size palette and weights: mostly small jobs, a heavy-ish tail of
#: wide jobs so Phase-2 regularly needs many feasible periods at once
_SIZES = (1, 2, 4, 8, 16, 32, 64)
_SIZE_WEIGHTS = (30, 20, 15, 12, 10, 8, 5)


def stress_workload(
    n_requests: int,
    n_servers: int,
    rho: float = 0.3,
    seed: int = 7,
    tau: float = 900.0,
    load: float = 0.9,
    max_lead: float = 86400.0,
) -> list[Request]:
    """Generate ``n_requests`` co-allocation requests stressing ``n_servers``.

    Parameters
    ----------
    rho:
        Fraction of requests submitted as advance reservations
        (``s_r > q_r``), with lead times uniform in ``[2*tau, max_lead]``.
    load:
        Offered load relative to capacity: the Poisson arrival rate is
        chosen so that ``rate * E[l_r * n_r] = load * n_servers``.
    tau:
        Slot length; durations are drawn as multiples of ``tau/3`` in a
        short/long mixture (70% in ``[tau, 8*tau]``, 30% in
        ``[8*tau, 96*tau]``) so remnants fragment the calendar.
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"advance-reservation fraction must be in [0, 1], got {rho}")
    rng = random.Random(seed)
    sizes = [s for s in _SIZES if s <= n_servers]
    weights = list(_SIZE_WEIGHTS[: len(sizes)])

    # expected request area, for sizing the arrival rate against capacity
    mean_nr = sum(s * w for s, w in zip(sizes, weights)) / sum(weights)
    mean_lr = 0.7 * (tau + 8 * tau) / 2 + 0.3 * (8 * tau + 96 * tau) / 2
    interarrival = (mean_lr * mean_nr) / (load * n_servers)

    grain = tau / 3.0
    requests: list[Request] = []
    t = 0.0
    for rid in range(n_requests):
        t += rng.expovariate(1.0 / interarrival)
        if rng.random() < 0.7:
            lr = rng.uniform(tau, 8 * tau)
        else:
            lr = rng.uniform(8 * tau, 96 * tau)
        lr = max(grain, round(lr / grain) * grain)
        nr = rng.choices(sizes, weights)[0]
        lead = rng.uniform(2 * tau, max_lead) if rng.random() < rho else 0.0
        requests.append(Request(qr=t, sr=t + lead, lr=lr, nr=nr, rid=rid))
    return requests
