"""Deterministic fault plans for the TCP reservation service.

Each plan replays one generated stream against a real ``repro serve``
subprocess over a single strictly request/response connection (one op in
flight at a time, so the decision order is known), injects one fault
class, and then holds the service to three simultaneous standards:

* the client-side :class:`~repro.service.loadgen.ShadowLedger` records
  every accepted reservation and must finish violation-free;
* every verdict the service ever produced must match the
  :class:`~repro.verify.oracle.ReferenceScheduler` replaying the same
  logical op order in-process;
* the final snapshot's per-server idle periods and the service's
  ``accepted_checksum`` must equal the oracle's.

Plans
-----

``kill-restart``
    ``snapshot`` after op *s*, SIGKILL after op *k* > *s*, restart from
    the snapshot, resend ops *s+1..k* (they were decided after the
    snapshot, so the restored server re-decides them — the verdicts must
    be identical), then finish the stream.
``duplicate``
    Every n-th reserve is sent twice back-to-back; the second response
    must carry the recorded verdict with ``replayed: true`` (the
    rid-keyed exactly-once decision log).
``reorder``
    The op list is deterministically shuffled within fixed-size windows
    before sending — an at-least-once client's retry storm.  The oracle
    replays the *same* shuffled order, so verdicts must still agree.
``kill-shard`` (sharded service only)
    ``snapshot`` after op *s*, then after op *k* > *s* SIGKILL one
    calendar-shard subprocess (pid taken from ``status``) and poke the
    service with a probe.  The coordinator's next scatter hits the dead
    shard, the service answers ``INTERNAL`` and crash-stops (exit
    code 1) *without* overwriting the snapshot.  A full coordinated
    restart from that snapshot must then re-decide ops *s+1..k*
    identically and finish the stream with the same accepted checksum
    as the uninterrupted oracle.
``front-door`` (explicit ``--plan front-door``)
    The whole stream is replayed through a real ``repro gateway``
    subprocess as HTTP/JSON instead of raw NDJSON — the gateway passes
    backend bodies through verbatim, so the identical oracle/ledger/
    checksum standards apply to the HTTP surface with zero adaptation.
``scale-events`` (explicit ``--plan scale-events``)
    The stream's pool mutations (``add_servers``/``drain``/``remove``,
    generated with ``--scale-events``) run through the live service.
    Every mutation carries a deterministic ``aid`` and is sent *twice*
    back-to-back — the duplicate must answer the recorded verdict with
    ``replayed: true`` (the aid-keyed exactly-once admin table).  The
    service is snapshotted after op *s* and SIGKILLed **mid-drain**: the
    kill lands right after the first ``drain`` past the snapshot, the
    pool membership is captured (``pool_status``), and the restart from
    the snapshot must re-decide ops *s+1..k* identically *and* restore
    byte-equal pool membership.  The final snapshot's pool must match
    the oracle's, on top of the usual ledger/verdict/checksum standards.
``kill-promote`` (explicit ``--plan kill-promote``, unsharded only)
    The primary runs with ``--log-dir`` and a ``repro follow``
    subprocess tails its decision log.  After op *k* the primary is
    SIGKILLed — **no snapshot was ever taken** — and the follower is
    promoted (``promote`` on its control port).  Ops possibly lost past
    the follower's replication cursor are resent (the promoted service
    re-decides or replays them; verdicts must match the pre-kill ones),
    then the stream finishes against the promoted service, which must
    end with the same accepted checksum as the uninterrupted oracle.

Everything is driven by ``(stream, plan)``; no wall-clock dependence
(the service clock is virtual), no randomness outside the plan seed.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, IO

from ..service.loadgen import ShadowLedger
from ..service.protocol import encode
from ..service.server import accepted_checksum
from ..service.snapshot import read_snapshot
from .genstream import Stream
from .oracle import ReferenceScheduler

__all__ = ["ChaosPlan", "default_plans", "run_chaos"]

_READY = re.compile(r"listening on [0-9.]+:(\d+)")
_RPC_TIMEOUT = 30.0


@dataclass
class ChaosPlan:
    """One deterministic fault schedule."""

    kind: str  # kill-restart | duplicate | reorder | kill-shard | front-door | kill-promote
    snapshot_at: int | None = None  # kill-*: snapshot after this op index
    kill_at: int | None = None  # kill-*: SIGKILL after this op index
    duplicate_every: int = 5  # duplicate: resend every n-th reserve
    reorder_window: int = 4  # reorder: shuffle window size
    seed: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "snapshot_at": self.snapshot_at,
            "kill_at": self.kill_at,
            "duplicate_every": self.duplicate_every,
            "reorder_window": self.reorder_window,
            "seed": self.seed,
        }


def default_plans(kind: str | None = None, shards: int = 0) -> list[ChaosPlan]:
    plans = [
        ChaosPlan(kind="kill-restart"),
        ChaosPlan(kind="duplicate"),
        ChaosPlan(kind="reorder"),
    ]
    if shards > 1:
        plans.append(ChaosPlan(kind="kill-shard"))
    if kind is None or kind == "all":
        return plans
    if kind == "kill-shard" and shards <= 1:
        raise ValueError("kill-shard plan needs a sharded service (--shards > 1)")
    if kind in ("front-door", "kill-promote", "scale-events"):
        # explicit-only plans: they spawn extra subprocesses (gateway /
        # follower) or need a specially generated stream (scale events),
        # so "all" does not imply them
        if kind == "kill-promote" and shards > 1:
            raise ValueError(
                "kill-promote plan needs the unsharded service "
                "(the follower replays a single calendar)"
            )
        return [ChaosPlan(kind=kind)]
    matched = [p for p in plans if p.kind == kind]
    if not matched:
        raise ValueError(f"unknown chaos plan {kind!r}")
    return matched


# ----------------------------------------------------------------------
# service subprocess plumbing
# ----------------------------------------------------------------------


def _src_root() -> str:
    # .../src/repro/verify/chaos.py -> .../src
    return str(Path(__file__).resolve().parents[2])


def _spawn_ready(cmd: list[str]) -> tuple[subprocess.Popen, int]:
    """Launch a repro subcommand and parse the port off its ready line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root() + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True
    )
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"{' '.join(cmd[3:5])} exited early (rc={proc.poll()})")
        match = _READY.search(line)
        if match:
            return proc, int(match.group(1))


def _start_server(
    config: dict[str, Any],
    snapshot_path: str,
    shards: int = 0,
    extra: list[str] | None = None,
) -> tuple[subprocess.Popen, int]:
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--servers",
        str(config["n_servers"]),
        "--tau",
        str(config["tau"]),
        "--q-slots",
        str(config["q_slots"]),
        "--snapshot-path",
        snapshot_path,
    ]
    if config.get("delta_t") is not None:
        cmd += ["--delta-t", str(config["delta_t"])]
    if config.get("r_max") is not None:
        cmd += ["--r-max", str(config["r_max"])]
    if shards > 1:
        cmd += ["--shards", str(shards)]
    if extra:
        cmd += extra
    return _spawn_ready(cmd)


def _start_follower(
    primary_port: int, snapshot_path: str, work: str
) -> tuple[subprocess.Popen, int]:
    """A ``repro follow`` subprocess tailing the primary's decision log."""
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "follow",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--primary-host",
        "127.0.0.1",
        "--primary-port",
        str(primary_port),
        "--poll-interval",
        "0.05",
        "--snapshot-path",
        snapshot_path,
        "--log-dir",
        str(Path(work) / "follower-log"),
    ]
    return _spawn_ready(cmd)


def _start_gateway(backend_port: int) -> tuple[subprocess.Popen, int]:
    """A ``repro gateway`` subprocess fronting the service over HTTP.

    The edge rate limit is set far above any replay rate: this plan
    tests decision identity through the HTTP surface, not the limiter
    (the limiter has its own unit tests).
    """
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "gateway",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--backend-host",
        "127.0.0.1",
        "--backend-port",
        str(backend_port),
        "--rate",
        "1000000",
        "--burst",
        "1000000",
    ]
    return _spawn_ready(cmd)


class _Client:
    """Blocking one-op-at-a-time NDJSON client."""

    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=_RPC_TIMEOUT)
        self.file: IO[bytes] = self.sock.makefile("rwb")

    def rpc(self, message: dict[str, Any]) -> dict[str, Any]:
        self.file.write(encode(message))
        self.file.flush()
        raw = self.file.readline()
        if not raw:
            raise ConnectionError(f"no response to {message.get('op')}")
        return json.loads(raw)

    def close(self) -> None:
        try:
            self.file.close()
            self.sock.close()
        except OSError:
            pass


class _HttpClient:
    """Blocking one-op-at-a-time HTTP client for the gateway front door.

    Same ``rpc(message) -> body`` surface as :class:`_Client`: the
    gateway passes backend JSON bodies through verbatim, so callers
    cannot tell the two transports apart.
    """

    def __init__(self, port: int) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=_RPC_TIMEOUT)

    def rpc(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message["op"]
        if op == "pool_status":
            self.conn.request("GET", "/v1/admin/pool")
            response = self.conn.getresponse()
            return json.loads(response.read().decode("utf-8"))
        if op in _ADMIN_KINDS:
            path = "/v1/admin/scale"
            payload = {k: v for k, v in message.items() if k != "op"}
            payload["action"] = op
        else:
            path = f"/v1/{op}"
            payload = message
        body = json.dumps(payload).encode("utf-8")
        self.conn.request(
            "POST",
            path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = self.conn.getresponse()
        return json.loads(response.read().decode("utf-8"))

    def close(self) -> None:
        self.conn.close()


def _wait_follower_hwm(ctl: _Client, min_hwm: int, timeout: float = 10.0) -> int:
    """Poll ``follower_status`` until the cursor reaches ``min_hwm``.

    Best-effort with a deadline: the invariant under test holds for any
    cursor (lost records are resent), catching up just makes the run
    exercise real replication instead of an empty promote.
    """
    deadline = time.monotonic() + timeout
    while True:
        status = ctl.rpc({"op": "follower_status"})
        hwm = int(status["hwm"])
        if hwm >= min_hwm or time.monotonic() > deadline:
            return hwm
        time.sleep(0.05)


# ----------------------------------------------------------------------
# op <-> wire mapping and verdict normalization
# ----------------------------------------------------------------------


_ADMIN_KINDS = ("add_servers", "drain", "remove")


def _wire(op: dict[str, Any], index: int | None = None) -> dict[str, Any]:
    kind = op["kind"]
    if kind in _ADMIN_KINDS:
        # a deterministic aid per op position: the back-to-back duplicate
        # must hit the aid-keyed exactly-once table, and a post-restart
        # resend reuses the same identity
        message = {"op": kind, "qr": op["qr"], "aid": f"chaos-{kind}-{index}"}
        if kind == "add_servers":
            message["count"] = op["count"]
        else:
            message["server"] = op["server"]
        return message
    if kind == "pool_status":
        return {"op": "pool_status"}
    if kind == "reserve":
        message = {
            "op": "reserve",
            "rid": op["rid"],
            "qr": op["qr"],
            "sr": op["sr"],
            "lr": op["lr"],
            "nr": op["nr"],
        }
        if op.get("deadline") is not None:
            message["deadline"] = op["deadline"]
        return message
    if kind == "probe":
        # a limit far above any plausible period count: the comparison
        # against the oracle needs the full result, not a page
        return {"op": "probe", "ta": op["ta"], "tb": op["tb"], "limit": 1_000_000}
    if kind == "cancel":
        return {"op": "cancel", "rid": op["rid"]}
    raise ValueError(f"op kind {kind!r} has no wire form")


def _normalize(op: dict[str, Any], response: dict[str, Any]) -> dict[str, Any]:
    kind = op["kind"]
    if kind == "reserve":
        if response.get("ok"):
            return {
                "ok": True,
                "start": response["start"],
                "end": response["end"],
                "servers": list(response["servers"]),  # already sorted by the service
                "attempts": response["attempts"],
                "delay": response["delay"],
            }
        error = response.get("error") or {}
        return {
            "ok": False,
            "reason": error.get("reason"),
            "attempts": error.get("attempts"),
        }
    if kind == "probe":
        return {"count": response["count"], "periods": response["periods"]}
    if kind == "cancel":
        return {"ok": bool(response.get("ok"))}
    if kind in _ADMIN_KINDS:
        if response.get("ok"):
            keep = {
                "add_servers": ("servers", "n_servers"),
                "drain": ("server", "status", "changed", "drained"),
                "remove": ("server", "status", "changed"),
            }[kind]
            return {"ok": True, **{k: response[k] for k in keep}}
        error = response.get("error") or {}
        return {"ok": False, "code": error.get("code")}
    if kind == "pool_status":
        return {
            k: response[k]
            for k in ("active", "draining", "removed", "total", "servers",
                      "drain_progress")
        }
    raise ValueError(f"op kind {kind!r} has no verdict form")


def _oracle_verdict(oracle: ReferenceScheduler, op: dict[str, Any]) -> dict[str, Any]:
    kind = op["kind"]
    if kind == "reserve":
        oracle.advance(max(oracle.now, float(op["qr"])))
        result = oracle.schedule(
            rid=int(op["rid"]),
            sr=float(op["sr"]),
            lr=float(op["lr"]),
            nr=int(op["nr"]),
            deadline=op.get("deadline"),
        )
        if result["ok"]:
            return {
                "ok": True,
                "start": result["start"],
                "end": result["end"],
                "servers": sorted(result["servers"]),
                "attempts": result["attempts"],
                "delay": result["delay"],
            }
        return {"ok": False, "reason": result["reason"], "attempts": result["attempts"]}
    if kind == "probe":
        periods = oracle.probe(float(op["ta"]), float(op["tb"]))
        return {
            "count": len(periods),
            "periods": [
                [server, st, None if et == float("inf") else et]
                for server, st, et in periods
            ],
        }
    if kind == "cancel":
        return oracle.cancel(int(op["rid"]))
    if kind in _ADMIN_KINDS:
        # mirror of the service's decide_admin: advance to the submission
        # time, then mutate
        oracle.advance(max(oracle.now, float(op["qr"])))
        if kind == "add_servers":
            return oracle.add_servers(int(op["count"]))
        if kind == "drain":
            return oracle.drain(int(op["server"]))
        return oracle.remove(int(op["server"]))
    if kind == "pool_status":
        # read-only: the service answers at its current clock, no advance
        return dict(oracle.pool_status())
    raise ValueError(f"op kind {kind!r} has no oracle form")


def _jsonable(value: Any) -> Any:
    return json.loads(json.dumps(value, allow_nan=False))


def _kill_one_shard(client: _Client, proc: subprocess.Popen, kill_at: int) -> bool:
    """SIGKILL one calendar-shard worker and confirm the crash-stop.

    Returns True when the service behaved as specified: the poke op that
    forces the next scatter is answered ``INTERNAL`` (or the connection
    drops mid-answer), and the service process itself exits nonzero
    without being signalled by us.
    """
    status = client.rpc({"op": "status"})
    pids = [int(p) for p in status["shards"]["pids"]]
    os.kill(pids[kill_at % len(pids)], signal.SIGKILL)
    answered_internal = False
    try:
        # any scatter works; probe is read-only so the replay window stays
        # exactly snapshot_at+1..kill_at
        poke = client.rpc({"op": "probe", "ta": 0.0, "tb": 1.0, "limit": 1})
        error = poke.get("error") or {}
        answered_internal = not poke.get("ok") and error.get("code") == "INTERNAL"
    except (ConnectionError, OSError, json.JSONDecodeError):
        answered_internal = True  # died mid-answer: still a crash-stop
    client.close()
    proc.wait(timeout=30)
    return answered_internal and proc.returncode not in (0, None)


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------


def run_chaos(
    stream: Stream, plan: ChaosPlan, work_dir: str | None = None, shards: int = 0
) -> dict[str, Any]:
    """Execute one (stream, plan) pair; returns the JSON-ready report.

    ``report["passed"]`` is the overall verdict: no ledger violations, no
    verdict divergence from the oracle, identical replayed verdicts
    across the kill/restart, ``replayed`` flags on duplicates, equal
    final state and checksums.

    ``shards`` > 1 runs the service with ``--shards K``; the oracle side
    is untouched, so every plan doubles as a sharded/single-calendar
    equivalence check.  The ``kill-shard`` plan requires it.
    """
    if plan.kind == "kill-shard" and shards <= 1:
        raise ValueError("kill-shard plan needs a sharded service (shards > 1)")
    if plan.kind == "kill-promote" and shards > 1:
        raise ValueError(
            "kill-promote plan needs the unsharded service "
            "(the follower replays a single calendar)"
        )
    ops = [op for op in stream.ops if op["kind"] != "restore"]
    if plan.kind == "reorder":
        rng = random.Random(f"repro-chaos:{plan.seed}")
        ops = list(ops)
        window = max(2, plan.reorder_window)
        for base in range(0, len(ops), window):
            block = ops[base : base + window]
            rng.shuffle(block)
            ops[base : base + window] = block
    snapshot_at = kill_at = None
    if plan.kind in ("kill-restart", "kill-shard", "scale-events"):
        snapshot_at = plan.snapshot_at if plan.snapshot_at is not None else len(ops) // 3
        if plan.kill_at is not None:
            kill_at = plan.kill_at
        elif plan.kind == "scale-events":
            # SIGKILL *mid-drain*: right after the first drain verdict past
            # the snapshot, while the pool still carries the draining state
            kill_at = next(
                (
                    i
                    for i, op in enumerate(ops)
                    if i > snapshot_at and op["kind"] == "drain"
                ),
                (2 * len(ops)) // 3,
            )
        else:
            kill_at = (2 * len(ops)) // 3
        if not 0 <= snapshot_at < kill_at < len(ops):
            raise ValueError(
                f"{plan.kind} plan needs 0 <= snapshot_at < kill_at < {len(ops)}, "
                f"got snapshot_at={snapshot_at} kill_at={kill_at}"
            )
    elif plan.kind == "kill-promote":
        kill_at = plan.kill_at if plan.kill_at is not None else (2 * len(ops)) // 3
        if not 0 <= kill_at < len(ops):
            raise ValueError(
                f"kill-promote plan needs 0 <= kill_at < {len(ops)}, got {kill_at}"
            )

    owns_dir = work_dir is None
    work = work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    snapshot_path = str(Path(work) / "chaos-snapshot.json")
    ledger = ShadowLedger()
    verdicts: list[dict[str, Any]] = []
    replay_mismatches: list[dict[str, Any]] = []
    duplicate_checks = 0
    duplicate_mismatches: list[dict[str, Any]] = []
    restarts = 0
    reserve_count = 0
    scale_ops = 0
    pool_restore_mismatch: dict[str, Any] | None = None
    shard_kills = 0
    crash_stop_ok = True  # kill-shard: INTERNAL answer + nonzero exit observed
    follower_proc = gateway_proc = None
    promote_info: dict[str, Any] | None = None
    # kill-promote: log_index[h-1] = index of the op that wrote decision-log
    # record h (fresh reserves and every cancel append one record; probes
    # and rid replays do not), so a promote at cursor h tells us exactly
    # which ops may have been lost and must be resent
    log_index: list[int] = []
    logged_rids: set[int] = set()

    extra = ["--log-dir", str(Path(work) / "primary-log")] if plan.kind == "kill-promote" else None
    proc, port = _start_server(stream.config, snapshot_path, shards, extra=extra)
    if plan.kind == "kill-promote":
        follower_proc, follower_ctl_port = _start_follower(port, snapshot_path, work)
    client: Any
    if plan.kind == "front-door":
        gateway_proc, gateway_port = _start_gateway(port)
        client = _HttpClient(gateway_port)
    else:
        client = _Client(port)
    try:
        for index, op in enumerate(ops):
            verdict = _normalize(op, client.rpc(_wire(op, index)))
            verdicts.append(verdict)
            if op["kind"] in _ADMIN_KINDS or op["kind"] == "pool_status":
                scale_ops += 1
            if plan.kind == "scale-events" and op["kind"] in _ADMIN_KINDS:
                # every pool mutation is sent twice: the duplicate carries
                # the same aid and must answer the recorded verdict
                duplicate_checks += 1
                dup_response = client.rpc(_wire(op, index))
                dup = _normalize(op, dup_response)
                if _jsonable(dup) != _jsonable(verdict) or not dup_response.get(
                    "replayed"
                ):
                    duplicate_mismatches.append(
                        {"index": index, "first": verdict, "duplicate": dup,
                         "replayed": dup_response.get("replayed")}
                    )
            if op["kind"] == "cancel" and verdict["ok"]:
                # an acknowledged cancel frees the window: later accepts
                # may legitimately reuse it without double-booking
                ledger.release(int(op["rid"]))
            if op["kind"] == "reserve":
                reserve_count += 1
                if verdict["ok"]:
                    ledger.record(
                        int(op["rid"]),
                        float(op["sr"]),
                        float(verdict["start"]),
                        float(verdict["end"]),
                        [int(s) for s in verdict["servers"]],
                    )
                if plan.kind == "duplicate" and reserve_count % plan.duplicate_every == 0:
                    duplicate_checks += 1
                    dup_response = client.rpc(_wire(op))
                    dup = _normalize(op, dup_response)
                    if _jsonable(dup) != _jsonable(verdict) or (
                        verdict["ok"] and not dup_response.get("replayed")
                    ):
                        duplicate_mismatches.append(
                            {"index": index, "first": verdict, "duplicate": dup,
                             "replayed": dup_response.get("replayed")}
                        )
            if plan.kind == "kill-promote":
                if (
                    op["kind"] == "cancel"
                    or op["kind"] in _ADMIN_KINDS
                    or (op["kind"] == "reserve" and int(op["rid"]) not in logged_rids)
                ):
                    if op["kind"] == "reserve":
                        logged_rids.add(int(op["rid"]))
                    log_index.append(index)
                if index == kill_at:
                    assert follower_proc is not None
                    ctl = _Client(follower_ctl_port)
                    if log_index:
                        _wait_follower_hwm(ctl, min_hwm=1)
                    client.close()
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=30)
                    promote_info = ctl.rpc({"op": "promote"})
                    ctl.close()
                    if not promote_info.get("ok"):
                        raise RuntimeError(f"promote failed: {promote_info!r}")
                    restarts += 1
                    client = _Client(int(promote_info["port"]))
                    hwm = int(promote_info["hwm"])
                    assert hwm <= len(log_index), (hwm, len(log_index))
                    # records past the follower's replication cursor died
                    # with the primary (there is NO snapshot in this plan);
                    # resend the ops behind them — already-replicated rids
                    # answer the recorded verdict, lost decisions are
                    # re-decided and must match the pre-kill ones bit for bit
                    resend_from = log_index[hwm - 1] + 1 if hwm else 0
                    for j in range(resend_from, kill_at + 1):
                        replayed = _normalize(ops[j], client.rpc(_wire(ops[j], j)))
                        if _jsonable(replayed) != _jsonable(verdicts[j]):
                            replay_mismatches.append(
                                {"index": j, "before_kill": verdicts[j],
                                 "after_promote": replayed}
                            )
            if plan.kind in ("kill-restart", "kill-shard", "scale-events"):
                if index == snapshot_at:
                    client.rpc({"op": "snapshot"})
                if index == kill_at:
                    pool_before = None
                    if plan.kind == "scale-events":
                        pool_before = _normalize(
                            {"kind": "pool_status"},
                            client.rpc({"op": "pool_status"}),
                        )
                    if plan.kind == "kill-shard":
                        if not _kill_one_shard(client, proc, kill_at):
                            crash_stop_ok = False
                        shard_kills += 1
                    else:
                        client.close()
                        proc.send_signal(signal.SIGKILL)
                        proc.wait(timeout=30)
                    proc, port = _start_server(stream.config, snapshot_path, shards)
                    restarts += 1
                    client = _Client(port)
                    # ops decided after the snapshot died with the process;
                    # the restored server must re-decide them identically
                    assert snapshot_at is not None and kill_at is not None
                    for j in range(snapshot_at + 1, kill_at + 1):
                        replayed = _normalize(ops[j], client.rpc(_wire(ops[j], j)))
                        if _jsonable(replayed) != _jsonable(verdicts[j]):
                            replay_mismatches.append(
                                {"index": j, "before_kill": verdicts[j],
                                 "after_restart": replayed}
                            )
                    if plan.kind == "scale-events":
                        # the restart + replay must land on the exact pool
                        # membership (and drain progress) the kill interrupted
                        pool_after = _normalize(
                            {"kind": "pool_status"},
                            client.rpc({"op": "pool_status"}),
                        )
                        if _jsonable(pool_after) != _jsonable(pool_before):
                            pool_restore_mismatch = {
                                "index": index,
                                "before_kill": pool_before,
                                "after_restart": pool_after,
                            }
        # the end-of-run status/shutdown exchange is a TCP control-plane
        # conversation: the gateway deliberately exposes no shutdown
        end_client = _Client(port) if plan.kind == "front-door" else client
        status = end_client.rpc({"op": "status"})
        shutdown = end_client.rpc({"op": "shutdown"})
        end_client.close()
        if end_client is not client:
            client.close()
        if plan.kind == "kill-promote":
            # the follower process exits once its promoted service stops
            assert follower_proc is not None
            follower_proc.wait(timeout=30)
        else:
            proc.wait(timeout=30)
    finally:
        for child in (proc, follower_proc, gateway_proc):
            if child is not None and child.poll() is None:
                child.kill()
                child.wait(timeout=30)

    # oracle replay over the same logical order, and checksum mirror
    oracle = ReferenceScheduler(**stream.config)
    verdict_divergences: list[dict[str, Any]] = []
    decided: dict[int, dict[str, Any]] = {}
    for index, op in enumerate(ops):
        expected = _oracle_verdict(oracle, op)
        if op["kind"] == "reserve":
            rid = int(op["rid"])
            if rid not in decided:
                decided[rid] = dict(expected)
        if _jsonable(expected) != _jsonable(verdicts[index]):
            verdict_divergences.append(
                {"index": index, "op": op, "service": verdicts[index],
                 "oracle": expected}
            )
    oracle_checksum = accepted_checksum(decided)

    final_state = read_snapshot(snapshot_path)
    final_periods = [
        [[float(st), None if et is None else float(et)] for st, et, _uid in periods]
        for periods in final_state["scheduler"]["calendar"]["periods"]
    ]
    oracle_periods = [
        [[st, et] for st, et in periods] for periods in oracle.export_intervals()
    ]
    state_equal = final_periods == oracle_periods
    final_pool = final_state["scheduler"]["calendar"].get("pool")
    pool_equal = final_pool == oracle.pool_status()["servers"]

    checksums = {
        "service_status": status.get("accepted_checksum"),
        "service_shutdown": shutdown.get("accepted_checksum"),
        "ledger": ledger.checksum(),
        "oracle": oracle_checksum,
    }
    passed = (
        not ledger.violations
        and not verdict_divergences
        and not replay_mismatches
        and not duplicate_mismatches
        and pool_restore_mismatch is None
        and state_equal
        and pool_equal
        and crash_stop_ok
        and len(set(checksums.values())) == 1
    )
    report = {
        "plan": plan.to_dict(),
        "profile": stream.profile,
        "seed": stream.seed,
        "shards": shards,
        "ops": len(ops),
        "reserves": reserve_count,
        "scale_ops": scale_ops,
        "accepted": len(ledger.entries),
        "restarts": restarts,
        "promote": promote_info,
        "shard_kills": shard_kills,
        "crash_stop_ok": crash_stop_ok,
        "duplicate_checks": duplicate_checks,
        "ledger_violations": ledger.violations,
        "verdict_divergences": verdict_divergences[:20],
        "verdict_divergences_total": len(verdict_divergences),
        "replay_mismatches": replay_mismatches[:20],
        "duplicate_mismatches": duplicate_mismatches[:20],
        "pool_restore_mismatch": pool_restore_mismatch,
        "checksums": checksums,
        "state_equal": state_equal,
        "pool_equal": pool_equal,
        "passed": passed,
    }
    if owns_dir:
        shutil.rmtree(work, ignore_errors=True)
    return report
