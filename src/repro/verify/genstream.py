"""Seeded request-stream generator for the differential fuzzer.

A *stream* is a scheduler configuration plus an ordered list of
operations (plain dicts, JSON-ready):

* ``{"kind": "reserve", "rid", "qr", "sr", "lr", "nr"[, "deadline"]}``
* ``{"kind": "probe", "ta", "tb"}``
* ``{"kind": "cancel", "rid"}``
* ``{"kind": "restore"}`` — snapshot the production scheduler through
  the real JSON round-trip and rebuild it (the oracle is untouched; a
  behavioral difference after restore is a restart-identity bug).
* scale events (opt-in via ``generate_stream(..., scale_events=True)``):
  ``{"kind": "add_servers", "count", "qr"}``, ``{"kind": "drain",
  "server", "qr"}``, ``{"kind": "remove", "server", "qr"}`` and
  ``{"kind": "pool_status", "qr"}`` — runtime pool mutations interleaved
  with the request traffic.  Drains and removes deliberately target
  servers in *any* lifecycle state so the refusal verdicts (``MALFORMED``
  out-of-range, ``CONFLICT`` illegal transition) are differentially
  checked alongside the successes.

Profiles shape the workload: system size, slot length τ (integral or
fractional), reservation mix ρ (advance-reservation pressure), cancel
and probe rates, deadline frequency, and *alignment* — the probability
that times are exact ``k·τ`` float products, which manufactures the
equal-end-key ties and slot-boundary values the slot trees find hardest.

Generation is a pure function of ``(profile, seed, ops)``: the same
triple always yields the same stream, so every fuzz run is replayable
from its report alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Profile", "PROFILES", "Stream", "generate_stream"]


@dataclass(frozen=True)
class Profile:
    """Knobs for one workload shape (see ``PROFILES``)."""

    name: str
    n_servers: int
    tau: float
    q_slots: int
    delta_t: float | None = None
    r_max: int | None = None
    #: op-kind mix (reserve weight is the remainder to 1.0)
    p_probe: float = 0.12
    p_cancel: float = 0.18
    p_restore: float = 0.03
    #: inter-submission gap, in units of tau (uniform in [0, 2*gap_tau])
    gap_tau: float = 0.3
    #: advance-reservation offset sr - qr, in units of tau (0..adv_tau)
    adv_tau: float = 3.0
    #: duration range in units of tau
    lr_min_tau: float = 0.4
    lr_max_tau: float = 3.0
    #: spatial size range (may exceed n_servers to exercise rejects)
    nr_max: int = 8
    p_deadline: float = 0.15
    #: deadline slack beyond sr + lr, in units of tau (0..slack_tau)
    slack_tau: float = 2.0
    #: probability a generated time/duration snaps to an exact k*tau product
    align: float = 0.3
    #: scale-event probability when ``generate_stream(..., scale_events=True)``
    #: (the flag is the opt-in; this knob only sets the mix)
    p_scale: float = 0.04
    #: never grow the pool past scale_cap * n_servers
    scale_cap: float = 2.0
    description: str = ""


PROFILES: dict[str, Profile] = {
    "dense": Profile(
        name="dense",
        n_servers=24,
        tau=10.0,
        q_slots=16,
        p_probe=0.10,
        p_cancel=0.22,
        p_restore=0.03,
        gap_tau=0.15,
        adv_tau=4.0,
        lr_min_tau=0.5,
        lr_max_tau=3.0,
        nr_max=10,
        p_deadline=0.15,
        align=0.3,
        description="high load, frequent cancels: deep per-server timelines",
    ),
    "sparse": Profile(
        name="sparse",
        n_servers=6,
        tau=7.5,
        q_slots=10,
        p_probe=0.20,
        p_cancel=0.15,
        p_restore=0.04,
        gap_tau=1.2,
        adv_tau=7.0,
        lr_min_tau=1.0,
        lr_max_tau=5.0,
        nr_max=8,
        p_deadline=0.35,
        slack_tau=4.0,
        align=0.2,
        description="small system, horizon pressure: deadline/horizon/exhausted paths",
    ),
    "ties": Profile(
        name="ties",
        n_servers=16,
        tau=0.3,
        q_slots=24,
        p_probe=0.14,
        p_cancel=0.20,
        p_restore=0.04,
        gap_tau=0.8,
        adv_tau=6.0,
        lr_min_tau=1.0,
        lr_max_tau=4.0,
        nr_max=8,
        p_deadline=0.20,
        slack_tau=3.0,
        align=1.0,
        description="fractional tau, fully slot-aligned times: equal-end-key "
        "ties and boundary floats everywhere",
    ),
}


@dataclass
class Stream:
    """One generated (or loaded) operation stream."""

    config: dict[str, Any]
    ops: list[dict[str, Any]]
    profile: str | None = None
    seed: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)


def _aligned(rng: random.Random, profile: Profile, value_tau: float) -> float:
    """``value_tau`` (a time in units of tau) as a float time — snapped to
    an exact ``k*tau`` product with probability ``profile.align``.

    Boundary products are computed as ``k * tau`` — the same expression
    the calendar's slot arithmetic uses — so aligned streams place times
    bit-exactly on the boundaries the float-robust ``slot_of`` defends.
    """
    if rng.random() < profile.align:
        return round(value_tau) * profile.tau
    return value_tau * profile.tau


def _scale_event(
    rng: random.Random,
    profile: Profile,
    statuses: list[str],
    qr: float,
) -> dict[str, Any]:
    """One pool mutation against a locally tracked status model.

    ``statuses`` mirrors the pool optimistically (a ``remove`` is marked
    applied even though the real one may refuse with ``CONFLICT`` when
    the server is not yet drained) — mispredictions only shift the
    generation bias, never validity: refusals are verdicts the differ
    checks like any other result.  The active count *is* exact (add and
    drain are deterministic, and removed-vs-draining are both
    non-active), so the ≥1-active floor holds.
    """
    total = len(statuses)
    active = sum(1 for status in statuses if status == "active")
    cap = int(profile.scale_cap * profile.n_servers)
    roll = rng.random()
    if roll < 0.35 and total < cap:
        if rng.random() < 0.08:  # exercise the MALFORMED refusal
            return {"kind": "add_servers", "count": rng.choice((0, -1)), "qr": qr}
        count = rng.randint(1, min(3, cap - total))
        statuses.extend(["active"] * count)
        return {"kind": "add_servers", "count": count, "qr": qr}
    if roll < 0.65 and active > 1:
        if rng.random() < 0.08:  # out of range
            return {"kind": "drain", "server": total + rng.randint(0, 3), "qr": qr}
        server = rng.randrange(total)
        if statuses[server] != "removed":
            statuses[server] = "draining"
        return {"kind": "drain", "server": server, "qr": qr}
    if roll < 0.90 and total:
        draining = [s for s, status in enumerate(statuses) if status == "draining"]
        if draining and rng.random() < 0.7:
            server = rng.choice(draining)
        else:
            server = rng.randrange(total)
        if statuses[server] == "draining":
            statuses[server] = "removed"  # optimistic: may still be CONFLICT
        return {"kind": "remove", "server": server, "qr": qr}
    return {"kind": "pool_status", "qr": qr}


def generate_stream(
    profile: Profile | str, seed: int, ops: int, scale_events: bool = False
) -> Stream:
    """A deterministic stream of ``ops`` operations for ``(profile, seed)``.

    ``scale_events=False`` reproduces historic streams bit-exactly (no
    extra RNG draws); ``True`` interleaves pool mutations at the
    profile's ``p_scale`` rate.
    """
    if isinstance(profile, str):
        profile = PROFILES[profile]
    rng = random.Random(f"repro-fuzz:{profile.name}:{seed}")
    out: list[dict[str, Any]] = []
    issued: list[int] = []  # rids handed out so far (cancel targets)
    next_rid = 0
    clock_tau = 0.0  # submission clock, in units of tau
    statuses = ["active"] * profile.n_servers  # local pool model

    for _ in range(ops):
        if scale_events and rng.random() < profile.p_scale:
            clock_tau += rng.uniform(0.0, 2.0 * profile.gap_tau)
            qr = _aligned(rng, profile, clock_tau)
            out.append(_scale_event(rng, profile, statuses, qr))
            continue
        roll = rng.random()
        if issued and roll < profile.p_cancel:
            out.append({"kind": "cancel", "rid": rng.choice(issued)})
            continue
        if roll < profile.p_cancel + profile.p_probe:
            ta_tau = clock_tau + rng.uniform(0.0, profile.adv_tau)
            span_tau = rng.uniform(
                max(0.1, profile.lr_min_tau * 0.5), profile.lr_max_tau
            )
            ta = _aligned(rng, profile, ta_tau)
            tb = _aligned(rng, profile, ta_tau + span_tau)
            if not ta < tb:  # alignment can collapse the window
                tb = ta + profile.tau
            out.append({"kind": "probe", "ta": ta, "tb": tb})
            continue
        if roll < profile.p_cancel + profile.p_probe + profile.p_restore:
            out.append({"kind": "restore"})
            continue
        # reserve: advance the submission clock, then build the request
        clock_tau += rng.uniform(0.0, 2.0 * profile.gap_tau)
        qr = _aligned(rng, profile, clock_tau)
        adv_tau = rng.uniform(0.0, profile.adv_tau)
        sr = _aligned(rng, profile, clock_tau + adv_tau)
        if sr < qr:  # alignment may round sr below qr
            sr = qr
        lr_tau = rng.uniform(profile.lr_min_tau, profile.lr_max_tau)
        lr = _aligned(rng, profile, lr_tau)
        if lr <= 0:
            lr = profile.tau
        op: dict[str, Any] = {
            "kind": "reserve",
            "rid": next_rid,
            "qr": qr,
            "sr": sr,
            "lr": lr,
            "nr": rng.randint(1, profile.nr_max),
        }
        if rng.random() < profile.p_deadline:
            slack = _aligned(rng, profile, rng.uniform(0.0, profile.slack_tau))
            op["deadline"] = sr + lr + max(0.0, slack)
        issued.append(next_rid)
        next_rid += 1
        out.append(op)

    config = {
        "n_servers": profile.n_servers,
        "tau": profile.tau,
        "q_slots": profile.q_slots,
        "delta_t": profile.delta_t,
        "r_max": profile.r_max,
    }
    meta = {"scale_events": True} if scale_events else {}
    return Stream(config=config, ops=out, profile=profile.name, seed=seed, meta=meta)
