"""Lock-step differential executor, shrinker, and repro emitter.

:func:`run_stream` feeds one operation stream to both the production
:class:`~repro.facade.CoAllocationScheduler` and the
:class:`~repro.verify.oracle.ReferenceScheduler`, comparing per
operation:

* the full normalized decision (accept/reject, start, end, chosen
  servers *in selection order*, attempt count, failure reason);
* probe results (ordered ``(server, st, et)`` triples);
* cancel verdicts (found / not found);
* scale-event verdicts (``add_servers``/``drain``/``remove``/
  ``pool_status`` — successes field-by-field, refusals by error code);
* the complete per-server idle-period state plus the pool's lifecycle
  statuses (every ``state_stride`` ops and always after the last one).

On the first mismatch it returns a :class:`Divergence` carrying both
sides' views.  :func:`shrink_stream` then delta-debugs the trace to a
1-minimal repro (prefix truncation + ddmin + a final one-at-a-time
pass), and :func:`emit_pytest` renders it as a ready-to-paste failing
test.

:func:`inject_bug` deliberately breaks the production Phase-2 selection
(class-level patch of ``TwoDimTree.phase2``) so the detector and the
shrinker can prove, in CI, that they would catch a real regression.
"""

from __future__ import annotations

import json
import math
import pprint
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..core.slot_tree import TwoDimTree
from ..core.types import INF, Request
from ..errors import MalformedRequestError, NotFoundError, ReproError
from ..facade import CoAllocationScheduler
from ..service.coordinator import ShardedScheduler
from .genstream import Stream
from .oracle import ReferenceScheduler

__all__ = [
    "Divergence",
    "FuzzResult",
    "INJECTIONS",
    "dump_trace",
    "emit_pytest",
    "inject_bug",
    "load_trace",
    "run_stream",
    "shrink_stream",
    "stream_to_trace",
    "trace_from_dict",
]

TRACE_FORMAT = "repro.verify.trace"
TRACE_VERSION = 1


@dataclass
class Divergence:
    """First point where production and oracle disagree."""

    index: int
    op: dict[str, Any]
    kind: str  # "result" | "state" | "exception"
    production: Any
    oracle: Any

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "op": self.op,
            "kind": self.kind,
            "production": self.production,
            "oracle": self.oracle,
        }

    def describe(self) -> str:
        return (
            f"divergence at op {self.index} ({self.kind}): {self.op!r}\n"
            f"  production: {self.production!r}\n"
            f"  oracle:     {self.oracle!r}"
        )


@dataclass
class FuzzResult:
    """Outcome of one differential run."""

    ops_run: int
    accepted: int = 0
    rejected: int = 0
    cancelled: int = 0
    cancel_missed: int = 0
    probes: int = 0
    restores: int = 0
    scale_ops: int = 0
    divergence: Divergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops_run": self.ops_run,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "cancel_missed": self.cancel_missed,
            "probes": self.probes,
            "restores": self.restores,
            "scale_ops": self.scale_ops,
            "ok": self.ok,
            "divergence": self.divergence.to_dict() if self.divergence else None,
        }


# ----------------------------------------------------------------------
# normalized op application (production / oracle)
# ----------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Representable under JSON (inf endings become ``None`` upstream)."""
    return json.loads(json.dumps(value, allow_nan=False))


def _apply_production(
    scheduler: Any, op: dict[str, Any]
) -> tuple[dict[str, Any], Any]:
    """Apply one op to the production side (single-calendar or sharded)."""
    kind = op["kind"]
    if kind == "reserve":
        try:
            request = Request(
                qr=float(op["qr"]),
                sr=float(op["sr"]),
                lr=float(op["lr"]),
                nr=int(op["nr"]),
                rid=int(op["rid"]),
                deadline=op.get("deadline"),
            )
        except (MalformedRequestError, ValueError) as exc:
            return {"ok": False, "reason": "malformed", "error": str(exc)}, scheduler
        # the service's virtual clock: advance from the submission time
        scheduler.advance(max(scheduler.now, request.qr))
        outcome = scheduler.schedule_detailed(request)
        if outcome.allocation is None:
            return {
                "ok": False,
                "attempts": outcome.attempts,
                "reason": outcome.reason,
            }, scheduler
        allocation = outcome.allocation
        return {
            "ok": True,
            "start": allocation.start,
            "end": allocation.end,
            "servers": list(allocation.servers),
            "attempts": allocation.attempts,
            "delay": allocation.delay,
            "reason": None,
        }, scheduler
    if kind == "probe":
        periods = scheduler.range_search(float(op["ta"]), float(op["tb"]))
        return {
            "periods": [
                [p.server, p.st, None if p.et == INF else p.et] for p in periods
            ],
            "count": len(periods),
        }, scheduler
    if kind == "cancel":
        try:
            scheduler.cancel(int(op["rid"]))
        except NotFoundError:
            return {"ok": False}, scheduler
        return {"ok": True}, scheduler
    if kind == "restore":
        # the real persistence path: canonical JSON out, parsed back in —
        # catches float serialization drift, not just in-memory identity
        blob = json.dumps(scheduler.export_state(), sort_keys=True, allow_nan=False)
        if isinstance(scheduler, ShardedScheduler):
            return {"ok": True, "restored": True}, ShardedScheduler.from_state(
                json.loads(blob), shards=scheduler.shards
            )
        return {"ok": True, "restored": True}, CoAllocationScheduler.from_state(
            json.loads(blob)
        )
    if kind in ("add_servers", "drain", "remove", "pool_status"):
        # admin ops carry a submission time like reserves do
        scheduler.advance(max(scheduler.now, float(op["qr"])))
        try:
            if kind == "add_servers":
                new_ids = scheduler.add_servers(int(op["count"]))
                return {
                    "ok": True,
                    "servers": list(new_ids),
                    "n_servers": scheduler.n_servers,
                }, scheduler
            if kind == "drain":
                return {"ok": True, **scheduler.drain(int(op["server"]))}, scheduler
            if kind == "remove":
                return {"ok": True, **scheduler.remove(int(op["server"]))}, scheduler
            return dict(scheduler.pool_status()), scheduler
        except ReproError as exc:
            # refusal verdicts compare by code: the message strings are a
            # production implementation detail the oracle does not mirror
            return {"ok": False, "code": exc.payload()["code"]}, scheduler
    raise ValueError(f"unknown op kind {kind!r}")


def _apply_oracle(oracle: ReferenceScheduler, op: dict[str, Any]) -> dict[str, Any]:
    kind = op["kind"]
    if kind == "reserve":
        try:
            Request(
                qr=float(op["qr"]),
                sr=float(op["sr"]),
                lr=float(op["lr"]),
                nr=int(op["nr"]),
                rid=int(op["rid"]),
                deadline=op.get("deadline"),
            )
        except (MalformedRequestError, ValueError) as exc:
            return {"ok": False, "reason": "malformed", "error": str(exc)}
        oracle.advance(max(oracle.now, float(op["qr"])))
        result = oracle.schedule(
            rid=int(op["rid"]),
            sr=float(op["sr"]),
            lr=float(op["lr"]),
            nr=int(op["nr"]),
            deadline=op.get("deadline"),
        )
        if result["ok"]:
            return {
                "ok": True,
                "start": result["start"],
                "end": result["end"],
                "servers": result["servers"],
                "attempts": result["attempts"],
                "delay": result["delay"],
                "reason": None,
            }
        return {"ok": False, "attempts": result["attempts"], "reason": result["reason"]}
    if kind == "probe":
        periods = oracle.probe(float(op["ta"]), float(op["tb"]))
        return {
            "periods": [
                [server, st, None if et == INF else et] for server, st, et in periods
            ],
            "count": len(periods),
        }
    if kind == "cancel":
        return oracle.cancel(int(op["rid"]))
    if kind == "restore":
        return {"ok": True, "restored": True}  # the oracle has no snapshot path
    if kind in ("add_servers", "drain", "remove", "pool_status"):
        oracle.advance(max(oracle.now, float(op["qr"])))
        if kind == "add_servers":
            return oracle.add_servers(int(op["count"]))
        if kind == "drain":
            return oracle.drain(int(op["server"]))
        if kind == "remove":
            return oracle.remove(int(op["server"]))
        return dict(oracle.pool_status())
    raise ValueError(f"unknown op kind {kind!r}")


def _production_state(scheduler: Any) -> list[list[list[Any]]]:
    return [
        [[p.st, None if p.et == INF else p.et] for p in scheduler.calendar.idle_periods(s)]
        for s in range(scheduler.n_servers)
    ]


def _oracle_state(oracle: ReferenceScheduler) -> list[list[list[Any]]]:
    return [
        [[st, et] for st, et in periods] for periods in oracle.export_intervals()
    ]


# ----------------------------------------------------------------------
# the lock-step run
# ----------------------------------------------------------------------


def run_stream(
    stream: Stream,
    inject: str | None = None,
    state_stride: int = 1,
    shards: int = 0,
) -> FuzzResult:
    """Execute one stream on both implementations, lock-step.

    ``state_stride`` compares the full per-server idle state every k ops
    (1 = every op; the final op is always state-checked).  ``shards > 0``
    runs the K-sharded scatter/merge scheduler as the production side —
    the cross-shard coordinator differentially gated against the same
    oracle that gates the single calendar.
    """
    result = FuzzResult(ops_run=0)
    with inject_bug(inject):
        production: Any = (
            ShardedScheduler(**stream.config, shards=shards)
            if shards > 0
            else CoAllocationScheduler(**stream.config)
        )
        oracle = ReferenceScheduler(**stream.config)
        for index, op in enumerate(stream.ops):
            try:
                prod_result, production = _apply_production(production, op)
            except Exception as exc:
                result.divergence = Divergence(
                    index, op, "exception", f"{type(exc).__name__}: {exc}", None
                )
                return result
            try:
                oracle_result = _apply_oracle(oracle, op)
            except Exception as exc:
                result.divergence = Divergence(
                    index, op, "exception", None, f"{type(exc).__name__}: {exc}"
                )
                return result
            result.ops_run += 1
            _tally(result, op, prod_result)
            if _jsonable(prod_result) != _jsonable(oracle_result):
                result.divergence = Divergence(
                    index, op, "result", _jsonable(prod_result), _jsonable(oracle_result)
                )
                return result
            last = index == len(stream.ops) - 1
            if last or index % state_stride == 0:
                prod_state = _production_state(production)
                oracle_state = _oracle_state(oracle)
                prod_pool = list(production.pool_status()["servers"])
                oracle_pool = list(oracle.pool_status()["servers"])
                if (
                    prod_state != oracle_state
                    or production.now != oracle.now
                    or prod_pool != oracle_pool
                ):
                    result.divergence = Divergence(
                        index,
                        op,
                        "state",
                        {"now": production.now, "periods": prod_state, "pool": prod_pool},
                        {"now": oracle.now, "periods": oracle_state, "pool": oracle_pool},
                    )
                    return result
    return result


def _tally(result: FuzzResult, op: dict[str, Any], prod_result: dict[str, Any]) -> None:
    kind = op["kind"]
    if kind == "reserve":
        if prod_result.get("ok"):
            result.accepted += 1
        else:
            result.rejected += 1
    elif kind == "cancel":
        if prod_result.get("ok"):
            result.cancelled += 1
        else:
            result.cancel_missed += 1
    elif kind == "probe":
        result.probes += 1
    elif kind == "restore":
        result.restores += 1
    elif kind in ("add_servers", "drain", "remove", "pool_status"):
        result.scale_ops += 1


# ----------------------------------------------------------------------
# deliberate production bugs (detector/shrinker self-test)
# ----------------------------------------------------------------------

#: selection orders a deliberately broken Phase 2 uses instead of the
#: canonical (et, uid) ascending merge
INJECTIONS: dict[str, Callable[[Any], tuple[float, float]]] = {
    # same earliest-ending preference, uid ties broken the *wrong* way
    "reverse-tiebreak": lambda p: (p.et, -p.uid),
    # worst-fit: latest-ending feasible periods win
    "latest-ending": lambda p: (-p.et, p.uid),
}


@contextmanager
def inject_bug(kind: str | None) -> Iterator[None]:
    """Temporarily replace ``TwoDimTree.phase2`` with a broken selection.

    The patch recovers the *full* feasible set through the original
    implementation (``need=inf``), re-sorts it with the injected order,
    and slices — so feasibility stays correct and only the canonical
    selection rule is violated, exactly the bug class PR 4 fixed.
    """
    if kind is None:
        yield
        return
    try:
        order = INJECTIONS[kind]
    except KeyError:
        raise ValueError(
            f"unknown injection {kind!r} (expected one of {', '.join(INJECTIONS)})"
        ) from None
    original = TwoDimTree.phase2

    def patched(self, marks, er, need, partial=False):  # type: ignore[no-untyped-def]
        full = original(self, marks, er, math.inf, True) or []
        full = sorted(full, key=order)
        if need == math.inf:
            return full
        need_int = int(need)
        if len(full) < need_int and not partial:
            return None
        return full[:need_int]

    TwoDimTree.phase2 = patched  # type: ignore[method-assign]
    try:
        yield
    finally:
        TwoDimTree.phase2 = original  # type: ignore[method-assign]


# ----------------------------------------------------------------------
# shrinking (ddmin over the op list)
# ----------------------------------------------------------------------


@dataclass
class ShrinkResult:
    stream: Stream
    divergence: Divergence
    evaluations: int = 0
    original_ops: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "minimized_ops": len(self.stream.ops),
            "original_ops": self.original_ops,
            "evaluations": self.evaluations,
            "divergence": self.divergence.to_dict(),
            "trace": stream_to_trace(self.stream),
        }


def shrink_stream(
    stream: Stream,
    inject: str | None = None,
    max_evaluations: int = 3000,
    shards: int = 0,
) -> ShrinkResult | None:
    """Delta-debug a diverging stream to a 1-minimal op subsequence.

    Returns ``None`` when the stream does not diverge at all.  The
    returned stream still diverges, and removing any single remaining op
    makes the divergence disappear (1-minimality), within the evaluation
    budget.
    """
    evaluations = 0

    def probe(ops: list[dict[str, Any]]) -> Divergence | None:
        nonlocal evaluations
        evaluations += 1
        candidate = Stream(
            config=stream.config, ops=ops, profile=stream.profile, seed=stream.seed
        )
        return run_stream(candidate, inject=inject, shards=shards).divergence

    divergence = probe(stream.ops)
    if divergence is None:
        return None
    # everything after the divergence point is noise
    ops = stream.ops[: divergence.index + 1]
    original_ops = len(stream.ops)

    # ddmin: remove complements of ever-finer chunkings
    granularity = 2
    while len(ops) >= 2 and evaluations < max_evaluations:
        chunk = max(1, math.ceil(len(ops) / granularity))
        reduced = False
        for start in range(0, len(ops), chunk):
            candidate = ops[:start] + ops[start + chunk :]
            if not candidate:
                continue
            found = probe(candidate)
            if found is not None:
                ops = candidate[: found.index + 1]
                divergence = found
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if evaluations >= max_evaluations:
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(len(ops), granularity * 2)

    # final pass: 1-minimality (drop single ops until none can go)
    changed = True
    while changed and evaluations < max_evaluations:
        changed = False
        for i in range(len(ops) - 1, -1, -1):
            if len(ops) == 1:
                break
            candidate = ops[:i] + ops[i + 1 :]
            found = probe(candidate)
            if found is not None:
                ops = candidate[: found.index + 1]
                divergence = found
                changed = True
                break
            if evaluations >= max_evaluations:
                break

    minimized = Stream(
        config=stream.config, ops=ops, profile=stream.profile, seed=stream.seed
    )
    return ShrinkResult(
        stream=minimized,
        divergence=divergence,
        evaluations=evaluations,
        original_ops=original_ops,
    )


# ----------------------------------------------------------------------
# trace (de)serialization and the failing-test emitter
# ----------------------------------------------------------------------


def stream_to_trace(stream: Stream) -> dict[str, Any]:
    """The stream as the versioned, JSON-ready trace format."""
    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "profile": stream.profile,
        "seed": stream.seed,
        "config": dict(stream.config),
        "ops": list(stream.ops),
        **({"meta": stream.meta} if stream.meta else {}),
    }


def trace_from_dict(data: dict[str, Any]) -> Stream:
    if data.get("format") != TRACE_FORMAT:
        raise ValueError(f"not a {TRACE_FORMAT} document: format={data.get('format')!r}")
    if data.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {data.get('version')!r} "
            f"(this build reads version {TRACE_VERSION})"
        )
    return Stream(
        config=dict(data["config"]),
        ops=list(data["ops"]),
        profile=data.get("profile"),
        seed=data.get("seed"),
        meta=dict(data.get("meta", {})),
    )


def dump_trace(stream: Stream, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stream_to_trace(stream), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> Stream:
    with open(path, "r", encoding="utf-8") as fh:
        return trace_from_dict(json.load(fh))


def emit_pytest(shrunk: ShrinkResult, name: str = "minimized_fuzz_repro") -> str:
    """A self-contained failing pytest for a minimized divergence."""
    # pformat, not json.dumps: the trace is pasted as a Python literal,
    # where JSON's null/true/false spellings would be NameErrors
    trace_json = pprint.pformat(
        stream_to_trace(shrunk.stream), indent=1, width=78, sort_dicts=True
    )
    summary = shrunk.divergence.describe().replace("\\", "\\\\").replace('"', '\\"')
    return f'''"""Auto-generated by `repro fuzz --shrink`.

Observed: {summary}

Paste into tests/ (or commit the trace into tests/verify/corpus/ — see
docs/testing.md) and fix the production side until it passes.
"""

from repro.verify.differ import run_stream, trace_from_dict

TRACE = {trace_json}


def test_{name}():
    result = run_stream(trace_from_dict(TRACE))
    assert result.divergence is None, result.divergence.describe()
'''
