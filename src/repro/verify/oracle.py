"""An obviously-correct reference co-allocator (the differential oracle).

:class:`ReferenceScheduler` re-implements the *observable* semantics of
:class:`repro.facade.CoAllocationScheduler` — reserve with the Δt/R_max
retry loop, probe (temporal range search), cancel, clock advance with
horizon rollover — over nothing but per-server sorted lists of plain
``(st, et, uid)`` tuples.  Every query is a linear scan; every update is
a list splice.  O(N · periods) per operation, no trees, no incremental
indexes, no caching: small enough to audit by eye, which is the whole
point.

Semantics mirrored from the production implementation
-----------------------------------------------------

* **Feasibility** (Section 2): a period is feasible for ``[sr, er)``
  when ``st <= sr and et >= er``.  The production Phase-1 candidate
  count over the slot tree of ``slot_of(sr)`` plus the tail index is
  observationally equivalent to this scan: any feasible bounded period
  necessarily overlaps ``slot_of(sr)`` (it contains ``sr``), so it lives
  in exactly that tree, and the early Phase-1 rejection fires only when
  the final feasible count is short anyway.
* **Canonical selection** (PR 4's restart guarantee): the globally
  earliest-ending feasible bounded periods win, ties broken by uid
  ascending; when fewer than ``nr`` exist, the remainder is topped up
  from the *latest-starting* unbounded trailing periods.
* **uid parity**: the oracle numbers its periods from its own counter in
  the same logical creation order as production (constructor in server
  order; allocation remnants left-then-right per chosen period in
  selection order; one merged period per release).  Relative uid order —
  all the tie-breaks ever consult — therefore matches production's, even
  though the absolute values differ.
* **Retry loop**: start candidates ``max(sr, now) + k·Δt``; a candidate
  past ``deadline - lr`` exits with reason ``deadline``, one outside the
  active horizon with ``horizon``, and ``R_max`` failures with
  ``exhausted`` — with the same float expressions, in the same order.
* **Clock/rollover**: ``slot_of`` uses the identical floor-plus-
  correction arithmetic; per-server history is trimmed (periods with
  ``et <= horizon_start``) only when the horizon actually rolled.
* **Cancel**: releases ``[max(start, now), end)`` per reservation in
  selection order; a release merges with the period ending exactly at
  its start and the one starting exactly at its end.
* **Elastic pool**: ``add_servers``/``drain``/``remove`` mirror the
  production lifecycle — positional ids are stable forever, a draining
  server drops out of every feasibility scan while its committed
  reservations (and cancellations of them) are honored, and removal is
  only legal once drained.  The oracle keeps the same one-way status
  list and returns the same canonical verdicts, including the same
  malformed/conflict error classification.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Any

__all__ = ["OraclePeriod", "ReferenceScheduler"]

INF = math.inf

#: index positions inside a period triple (clearer than bare numbers)
ST, ET, UID = 0, 1, 2

#: an idle period as stored by the oracle: ``(st, et, uid)``
OraclePeriod = tuple[float, float, int]


class ReferenceScheduler:
    """Reference co-allocator over per-server sorted idle lists.

    Constructor parameters mirror
    :class:`~repro.facade.CoAllocationScheduler`.
    """

    def __init__(
        self,
        n_servers: int,
        tau: float,
        q_slots: int,
        delta_t: float | None = None,
        r_max: int | None = None,
        start_time: float = 0.0,
    ) -> None:
        if n_servers <= 0 or tau <= 0 or q_slots <= 0:
            raise ValueError("n_servers, tau and q_slots must be positive")
        self.n_servers = n_servers
        self.tau = float(tau)
        self.q_slots = q_slots
        self.delta_t = float(delta_t) if delta_t is not None else self.tau
        self.r_max = r_max if r_max is not None else max(1, q_slots // 2)
        self.now = float(start_time)
        self._base_slot = self.slot_of(self.now)
        self._next_uid = 0
        # one sorted (by st) list of (st, et, uid) triples per server
        self._periods: list[list[OraclePeriod]] = []
        for server in range(n_servers):
            self._periods.append([(self.now, INF, self._take_uid())])
        # rid -> committed reservations [(server, start, end)] in selection order
        self._allocations: dict[int, list[tuple[int, float, float]]] = {}
        # elastic pool: per-server lifecycle, active -> draining -> removed
        self._status: list[str] = ["active"] * n_servers

    def _take_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    # ------------------------------------------------------------------
    # geometry / clock (same float arithmetic as the production calendar)
    # ------------------------------------------------------------------

    def slot_of(self, t: float) -> int:
        tau = self.tau
        q = int(t // tau)
        while t < q * tau:
            q -= 1
        while t >= (q + 1) * tau:
            q += 1
        return q

    def in_horizon(self, t: float) -> bool:
        return self._base_slot <= self.slot_of(t) < self._base_slot + self.q_slots

    @property
    def horizon_start(self) -> float:
        return self._base_slot * self.tau

    def advance(self, to_time: float) -> None:
        if to_time < self.now:
            raise ValueError(f"cannot move time backwards ({to_time} < {self.now})")
        self.now = to_time
        current = self.slot_of(to_time)
        if current > self._base_slot:
            self._base_slot = current
            cutoff = self.horizon_start
            for periods in self._periods:
                n = 0
                for p in periods:
                    if p[ET] > cutoff:
                        break
                    n += 1
                if n:
                    del periods[:n]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _feasible_sets(
        self, sr: float, er: float
    ) -> tuple[list[tuple[float, int, int]], list[tuple[float, int, int]]]:
        """Feasible periods for ``[sr, er)``, split bounded/unbounded.

        Bounded come back as ``(et, uid, server)`` sorted ascending (the
        canonical earliest-ending-first order); unbounded as
        ``(st, uid, server)`` sorted ascending.
        """
        bounded: list[tuple[float, int, int]] = []
        unbounded: list[tuple[float, int, int]] = []
        for server, periods in enumerate(self._periods):
            if self._status[server] != "active":
                continue  # draining/removed servers admit no new periods
            for st, et, uid in periods:
                if st > sr:
                    break  # sorted by st: nothing later is a candidate
                if et == INF:
                    unbounded.append((st, uid, server))
                elif et >= er:
                    bounded.append((et, uid, server))
        bounded.sort()
        unbounded.sort()
        return bounded, unbounded

    def _lookup(self, server: int, uid: int) -> OraclePeriod:
        for p in self._periods[server]:
            if p[UID] == uid:
                return p
        raise KeyError(f"oracle period uid={uid} not on server {server}")

    def _find_feasible(
        self, sr: float, er: float, nr: int
    ) -> list[tuple[int, OraclePeriod]] | None:
        """Mirror of ``AvailabilityCalendar.find_feasible``: the chosen
        ``(server, period)`` pairs in canonical selection order, or
        ``None``."""
        q = self.slot_of(sr)
        if not self._base_slot <= q < self._base_slot + self.q_slots:
            return None
        bounded, unbounded = self._feasible_sets(sr, er)
        chosen = [
            (server, self._lookup(server, uid)) for _, uid, server in bounded[:nr]
        ]
        if len(chosen) >= nr:
            return chosen
        need = nr - len(chosen)
        if len(unbounded) < need:
            return None
        # latest-starting trailing periods first (production reverses the
        # tail slice it takes from the end of the (st, uid)-sorted index)
        tail = unbounded[-need:]
        tail.reverse()
        chosen.extend((server, self._lookup(server, uid)) for _, uid, server in tail)
        return chosen

    def probe(self, ta: float, tb: float) -> list[tuple[int, float, float]]:
        """Mirror of ``range_search``: every idle period covering
        ``[ta, tb)`` as ``(server, st, et)``, bounded first in
        ``(et, uid)`` order, then unbounded in ``(st, uid)`` order."""
        if not ta < tb:
            raise ValueError(f"range query window [{ta}, {tb}) is empty")
        q = self.slot_of(ta)
        if not self._base_slot <= q < self._base_slot + self.q_slots:
            return []
        bounded, unbounded = self._feasible_sets(ta, tb)
        out = [
            (server, self._lookup(server, uid)[ST], et) for et, uid, server in bounded
        ]
        out.extend((server, st, INF) for st, uid, server in unbounded)
        return out

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def _insert(self, server: int, st: float, et: float) -> None:
        periods = self._periods[server]
        triple = (st, et, self._take_uid())
        starts = [p[ST] for p in periods]
        periods.insert(bisect_right(starts, st), triple)

    def _remove(self, server: int, period: OraclePeriod) -> None:
        self._periods[server].remove(period)

    def _carve(
        self, chosen: list[tuple[int, OraclePeriod]], start: float, end: float
    ) -> None:
        """Mirror of ``allocate``: drop each chosen period, add the left
        remnant then the right remnant (uid creation order matters)."""
        for server, period in chosen:
            st, et, _ = period
            if not (st <= start and et >= end):
                raise ValueError(
                    f"oracle period {period} cannot host [{start}, {end}) "
                    f"on server {server}"
                )
            self._remove(server, period)
            if st < start:
                self._insert(server, st, start)
            if end < et:
                self._insert(server, end, et)

    def _release(self, server: int, start: float, end: float) -> None:
        """Mirror of ``release``: merge with the period starting exactly
        at ``end`` and the one ending exactly at ``start``."""
        if not start < end:
            raise ValueError(f"release window [{start}, {end}) is empty")
        periods = self._periods[server]
        lo, hi = start, end
        starts = [p[ST] for p in periods]
        idx = bisect_left(starts, end)
        if idx < len(starts) and starts[idx] == end:
            hi = periods[idx][ET]
            del periods[idx]
            del starts[idx]
        idx = bisect_left(starts, start) - 1
        if idx >= 0 and periods[idx][ET] == start:
            lo = periods[idx][ST]
            del periods[idx]
            del starts[idx]
        for p in periods:
            if p[ST] < hi and p[ET] > lo:
                raise ValueError(
                    f"oracle release of [{start}, {end}) on server {server} "
                    f"overlaps idle period {p}"
                )
        self._insert(server, lo, hi)

    # ------------------------------------------------------------------
    # the public operations the differ drives
    # ------------------------------------------------------------------

    def schedule(
        self,
        rid: int,
        sr: float,
        lr: float,
        nr: int,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        """Mirror of ``schedule_detailed`` (the caller advances the clock).

        Returns the normalized decision dict the differ compares:
        ``{"ok", "start", "end", "servers", "attempts", "reason"}`` with
        ``servers`` in selection order.
        """
        base = max(sr, self.now)
        latest = INF if deadline is None else deadline - lr
        for k in range(self.r_max):
            start = base + k * self.delta_t
            if start > latest:
                return {"ok": False, "attempts": k, "reason": "deadline"}
            if not self.in_horizon(start):
                return {"ok": False, "attempts": k, "reason": "horizon"}
            end = start + lr
            chosen = self._find_feasible(start, end, nr)
            if chosen is not None:
                self._carve(chosen, start, end)
                self._allocations[rid] = [
                    (server, start, end) for server, _ in chosen
                ]
                return {
                    "ok": True,
                    "start": start,
                    "end": end,
                    "servers": [server for server, _ in chosen],
                    "attempts": k + 1,
                    "delay": start - sr,
                    "reason": None,
                }
        return {"ok": False, "attempts": self.r_max, "reason": "exhausted"}

    def cancel(self, rid: int) -> dict[str, Any]:
        """Mirror of ``CoAllocationScheduler.cancel`` (found/not-found)."""
        reservations = self._allocations.pop(rid, None)
        if reservations is None:
            return {"ok": False}
        for server, start, end in reservations:
            lo = max(start, self.now)
            if lo < end:
                self._release(server, lo, end)
        return {"ok": True}

    # ------------------------------------------------------------------
    # elastic pool (mirror of the production facade's verdicts)
    # ------------------------------------------------------------------

    def is_drained(self, server: int) -> bool:
        if self._status[server] == "removed":
            return True
        trailing = self._periods[server][-1]
        assert trailing[ET] == INF, f"oracle server {server} lost its trailing period"
        return trailing[ST] <= self.now

    def add_servers(self, count: int) -> dict[str, Any]:
        if count <= 0:
            return {"ok": False, "code": "MALFORMED"}
        new_ids = list(range(self.n_servers, self.n_servers + count))
        for server in new_ids:
            self._periods.append([(self.now, INF, self._take_uid())])
            self._status.append("active")
            self.n_servers += 1
        return {"ok": True, "servers": new_ids, "n_servers": self.n_servers}

    def drain(self, server: int) -> dict[str, Any]:
        if not 0 <= server < self.n_servers:
            return {"ok": False, "code": "MALFORMED"}
        if self._status[server] == "removed":
            return {"ok": False, "code": "CONFLICT"}
        changed = self._status[server] == "active"
        self._status[server] = "draining"
        return {
            "ok": True,
            "server": server,
            "status": "draining",
            "changed": changed,
            "drained": self.is_drained(server),
        }

    def remove(self, server: int) -> dict[str, Any]:
        if not 0 <= server < self.n_servers:
            return {"ok": False, "code": "MALFORMED"}
        if self._status[server] == "removed":
            return {"ok": True, "server": server, "status": "removed", "changed": False}
        if self._status[server] == "active" or not self.is_drained(server):
            return {"ok": False, "code": "CONFLICT"}
        self._periods[server].clear()
        self._status[server] = "removed"
        return {"ok": True, "server": server, "status": "removed", "changed": True}

    def pool_status(self) -> dict[str, Any]:
        counts = {"active": 0, "draining": 0, "removed": 0}
        for status in self._status:
            counts[status] += 1
        return {
            **counts,
            "total": self.n_servers,
            "servers": list(self._status),
            "drain_progress": [
                {"server": s, "drained": self.is_drained(s)}
                for s in range(self.n_servers)
                if self._status[s] == "draining"
            ],
        }

    # ------------------------------------------------------------------
    # state export (what the differ compares against production)
    # ------------------------------------------------------------------

    def export_intervals(self) -> list[list[tuple[float, float | None]]]:
        """Per-server ``(st, et)`` lists, ``inf`` endings as ``None`` —
        directly comparable with the production calendar's
        ``idle_periods`` (uids are excluded: they differ by design)."""
        return [
            [(p[ST], None if p[ET] == INF else p[ET]) for p in periods]
            for periods in self._periods
        ]

    def active_rids(self) -> list[int]:
        return sorted(self._allocations)
