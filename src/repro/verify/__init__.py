"""Differential verification of the co-allocation core (``repro fuzz``).

The package pits the production slot-tree scheduler against an
obviously-correct reference implementation over randomized request
streams, and the TCP reservation service against deterministic fault
plans:

* :mod:`repro.verify.oracle` — the O(N·Q) reference co-allocator over
  plain per-server sorted idle lists;
* :mod:`repro.verify.genstream` — seeded request-stream generator with
  load profiles;
* :mod:`repro.verify.differ` — the lock-step differential executor,
  delta-debugging shrinker, and failing-test emitter;
* :mod:`repro.verify.chaos` — deterministic fault plans (kill/restart,
  duplicate and reordered sends) for the reservation service.

See ``docs/testing.md`` for how to run and extend the fuzzer, and
``tests/verify/corpus/`` for the regression corpus of minimized traces.
"""

from .differ import Divergence, FuzzResult, run_stream  # noqa: F401
from .genstream import PROFILES, generate_stream  # noqa: F401
from .oracle import ReferenceScheduler  # noqa: F401
