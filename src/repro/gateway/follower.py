"""Warm-standby follower: tails the decision log, promotable to primary.

State-machine replication on the cheap, bought entirely with properties
the service already proves elsewhere:

* the primary's decision log (:mod:`repro.service.declog`) carries every
  write decision as ``(message, verdict)``;
* the scheduler is deterministic, so replaying ``message`` through the
  *same* decision functions (:func:`~repro.service.declog.decide_reserve`
  / :func:`~repro.service.declog.decide_cancel`) reproduces ``verdict``
  bit-for-bit — the follower asserts this on every record and
  crash-stops on divergence rather than serving a silently wrong
  calendar;
* promotion (``repro promote``) hands the replayed state to a real
  :class:`~repro.service.server.ReservationService` — the exact code
  path of a restart-from-snapshot, so failover is decision-identical by
  the same argument (and verified end-to-end by the ``kill-promote``
  chaos plan).

Replication is asynchronous: decisions acknowledged by the primary but
not yet tailed are lost on failover — and re-decided identically when
at-least-once clients resend them, because the decision table is
rid-keyed exactly-once.  The follower polls ``log_tail`` with its
cursor; a torn or garbled answer (primary died mid-reply) just drops
the connection and re-requests from the last good cursor.  A cursor
below the primary's compaction ``base`` is unrecoverable from the log
alone; the follower crash-stops with instructions to re-bootstrap from
a snapshot.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ConflictError, ReproError, error_payload
from ..facade import CoAllocationScheduler
from ..service.protocol import (
    FOLLOWER_OPS,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
)
from ..service.declog import ADMIN_KINDS, decide_admin, decide_cancel, decide_reserve
from ..service.server import ReservationService, ServiceConfig, accepted_checksum
from ..service.snapshot import read_snapshot

__all__ = [
    "Follower",
    "FollowerConfig",
    "ReplicationDivergenceError",
    "ReplicationGapError",
    "serve_follower",
]


class ReplicationDivergenceError(ReproError):
    """Replaying a logged message did not reproduce the logged verdict."""


class ReplicationGapError(ReproError):
    """The primary compacted past this follower's cursor (re-bootstrap)."""


@dataclass(slots=True)
class FollowerConfig:
    """Operational knobs for one follower (see ``docs/gateway.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # control listener (follower_status / promote)
    primary_host: str = "127.0.0.1"
    primary_port: int = 0
    follower_id: str = "follower-1"
    poll_interval: float = 0.25  # seconds between empty-tail polls
    batch_limit: int = 512  # records per log_tail request
    bootstrap_snapshot: str | None = None  # primary snapshot to start from
    snapshot_path: str | None = None  # handed to the service on promotion
    log_dir: str | None = None  # the promoted service's own decision log
    promote_port: int = 0  # default port for the promoted service


class Follower:
    """Replays the primary's decision log into a warm standby calendar."""

    def __init__(self, config: FollowerConfig) -> None:
        self.config = config
        self.scheduler: CoAllocationScheduler | None = None
        self.decided: dict[int, dict[str, Any]] = {}
        #: aid-keyed admin verdicts, replayed so promotion keeps them
        self.admin_decided: dict[str, dict[str, Any]] = {}
        #: records ``1..cursor`` are applied
        self.cursor = 0
        self.applied = {
            "reserve": 0,
            "cancel": 0,
            "add_servers": 0,
            "drain": 0,
            "remove": 0,
        }
        self.primary_up = False
        self.promoted = False
        self.failed: str | None = None  # crash-stop reason, if any
        self._conn: tuple[asyncio.StreamReader, asyncio.StreamWriter] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._tail_task: asyncio.Task | None = None
        self._service: ReservationService | None = None
        self._service_watch: asyncio.Task | None = None
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def bootstrap_from_snapshot(self, path: str | Path) -> None:
        """Adopt a primary snapshot: its state *and* its log position."""
        state = read_snapshot(path)
        self.scheduler = CoAllocationScheduler.from_state(state["scheduler"])
        self.decided = {
            int(rid): entry for rid, entry in state.get("decided", {}).items()
        }
        self.admin_decided = {
            str(aid): entry for aid, entry in state.get("admin_decided", {}).items()
        }
        self.cursor = int(state.get("log_hwm", 0))

    def bootstrap_fresh(self, status: dict[str, Any]) -> None:
        """Start from an empty calendar with the primary's geometry."""
        self.scheduler = CoAllocationScheduler(
            n_servers=int(status["n_servers"]),
            tau=float(status["tau"]),
            q_slots=int(status["q_slots"]),
            delta_t=float(status["delta_t"]),
            r_max=int(status["r_max"]),
        )
        self.decided = {}
        self.admin_decided = {}
        self.cursor = 0

    # ------------------------------------------------------------------
    # the replication core (sync, driven by the tail actor loop and tests)
    # ------------------------------------------------------------------

    def apply_record(self, record: dict[str, Any]) -> None:
        """Apply one log record, verifying hwm continuity and the verdict."""
        assert self.scheduler is not None, "follower not bootstrapped"
        hwm = int(record["hwm"])
        if hwm != self.cursor + 1:
            raise ReplicationGapError(
                f"record hwm {hwm} does not follow cursor {self.cursor}"
            )
        kind = record["kind"]
        message = record["message"]
        if kind == "reserve":
            verdict = decide_reserve(self.scheduler, message)
        elif kind == "cancel":
            verdict = decide_cancel(self.scheduler, int(message["rid"]))
        elif kind in ADMIN_KINDS:
            verdict = decide_admin(self.scheduler, kind, message)
        else:
            raise ReplicationDivergenceError(f"unknown record kind {kind!r}")
        if verdict != record["verdict"]:
            raise ReplicationDivergenceError(
                f"record {hwm} ({kind} rid={message.get('rid')}): local verdict "
                f"{verdict!r} != logged verdict {record['verdict']!r} — the "
                f"follower would serve a different calendar than the primary"
            )
        if kind == "reserve":
            self.decided[int(message["rid"])] = verdict
        elif kind in ADMIN_KINDS and message.get("aid") is not None:
            self.admin_decided[str(message["aid"])] = verdict
        self.applied[kind] += 1
        self.cursor = hwm

    def export_service_state(self) -> dict[str, Any]:
        """The replayed state in exact snapshot format (for promotion)."""
        assert self.scheduler is not None, "follower not bootstrapped"
        return {
            "scheduler": self.scheduler.export_state(),
            "decided": {str(rid): self.decided[rid] for rid in sorted(self.decided)},
            "admin_decided": {
                aid: self.admin_decided[aid] for aid in sorted(self.admin_decided)
            },
            "log_hwm": self.cursor,
        }

    # ------------------------------------------------------------------
    # tailing the primary (single-writer: only this task mutates state,
    # hence the actor naming — mirrors the service's RA201/RA009 carve-out)
    # ------------------------------------------------------------------

    async def _primary_rpc(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._conn is None:
            self._conn = await asyncio.open_connection(
                self.config.primary_host,
                self.config.primary_port,
                limit=MAX_LINE_BYTES,
            )
        reader, writer = self._conn
        try:
            writer.write(encode(message))
            await writer.drain()
            raw = await reader.readline()
        except (ConnectionError, OSError):
            self._conn = None
            raise
        if not raw:
            self._conn = None
            raise ConnectionError("primary closed the connection")
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            # a torn reply (primary died mid-line): treat as a lost
            # connection and re-request from the last good cursor
            self._conn = None
            raise ConnectionError(f"garbled reply from primary: {exc}") from exc

    async def _tail_actor_loop(self) -> None:
        """Poll ``log_tail`` and fold records into the standby calendar."""
        while not self.promoted and self.failed is None:
            try:
                response = await self._primary_rpc(
                    {
                        "op": "log_tail",
                        "cursor": self.cursor,
                        "limit": self.config.batch_limit,
                        "follower_id": self.config.follower_id,
                    }
                )
            except (ConnectionError, OSError):
                self.primary_up = False
                await asyncio.sleep(self.config.poll_interval)
                continue
            self.primary_up = True
            if not response.get("ok"):
                # log disabled or a server-side error: nothing to tail yet
                await asyncio.sleep(self.config.poll_interval)
                continue
            if int(response["base"]) > self.cursor:
                self.failed = (
                    f"primary compacted to base {response['base']} past cursor "
                    f"{self.cursor}: re-bootstrap this follower from a snapshot"
                )
                print(f"repro follow: {self.failed}", file=sys.stderr, flush=True)
                break
            records = response.get("records", [])
            try:
                for record in records:
                    self.apply_record(record)
            except ReproError as exc:
                self.failed = str(exc)
                print(f"repro follow: {self.failed}", file=sys.stderr, flush=True)
                break
            if not records:
                await asyncio.sleep(self.config.poll_interval)

    # ------------------------------------------------------------------
    # the control listener (follower_status / promote)
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "follower not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_control,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._tail_task = asyncio.create_task(
            self._tail_actor_loop(), name="repro-follower-tail"
        )

    async def stop(self) -> None:
        if self._tail_task is not None:
            self._tail_task.cancel()
            try:
                await self._tail_task
            except asyncio.CancelledError:
                pass
        if self._service is not None:
            await self._service.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn is not None:
            self._conn[1].close()
            self._conn = None
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def _watch_promoted(self, service: ReservationService) -> None:
        await service.wait_stopped()
        self._stopped.set()

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                if not raw.strip():
                    continue
                try:
                    message = decode_line(raw, ops=FOLLOWER_OPS)
                except ProtocolError as exc:
                    response: dict[str, Any] = {"ok": False, "error": error_payload(exc)}
                else:
                    handler = getattr(self, f"_ctl_{message['op']}")
                    try:
                        response = await handler(message)
                    except Exception as exc:  # answer, never kill the listener
                        response = {
                            "ok": False,
                            "op": message["op"],
                            "error": error_payload(exc),
                        }
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _ctl_follower_status(self, message: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "op": "follower_status",
            "follower_id": self.config.follower_id,
            "hwm": self.cursor,
            "applied": dict(self.applied),
            "decided": len(self.decided),
            "admin_decided": len(self.admin_decided),
            "pool": (
                self.scheduler.calendar.pool_counts()
                if self.scheduler is not None
                else None
            ),
            "primary_up": self.primary_up,
            "promoted": self.promoted,
            "failed": self.failed,
            "accepted_checksum": accepted_checksum(self.decided),
        }

    async def _ctl_promote(self, message: dict[str, Any]) -> dict[str, Any]:
        """Failover: stop tailing, serve the replayed state as a primary."""
        if self.promoted:
            raise ConflictError("already promoted")
        if self.failed is not None:
            raise ConflictError(f"follower crash-stopped: {self.failed}")
        self.promoted = True
        if self._tail_task is not None:
            self._tail_task.cancel()
            try:
                await self._tail_task
            except asyncio.CancelledError:
                pass
        if self._conn is not None:
            self._conn[1].close()
            self._conn = None
        assert self.scheduler is not None, "follower not bootstrapped"
        config = ServiceConfig(
            host=self.config.host,
            port=int(message.get("port") or self.config.promote_port),
            n_servers=self.scheduler.n_servers,
            tau=self.scheduler.calendar.tau,
            q_slots=self.scheduler.calendar.q_slots,
            snapshot_path=self.config.snapshot_path,
            log_dir=self.config.log_dir,
        )
        service = ReservationService(config, state=self.export_service_state())
        await service.start()
        self._service = service
        # once the promoted service shuts down (shutdown op), the whole
        # follower process is done — unblock serve_follower
        self._service_watch = asyncio.create_task(
            self._watch_promoted(service), name="repro-follower-service-watch"
        )
        print(
            f"repro follow: promoted, serving on {config.host}:{service.port} "
            f"(hwm={self.cursor})",
            flush=True,
        )
        return {
            "ok": True,
            "op": "promote",
            "port": service.port,
            "hwm": self.cursor,
            "applied": dict(self.applied),
            "accepted_checksum": accepted_checksum(self.decided),
        }


async def serve_follower(config: FollowerConfig, ready_line: bool = True) -> bool:
    """Boot a follower; runs until cancelled or the promoted service stops.

    Bootstraps from ``config.bootstrap_snapshot`` when given, else fresh
    from the primary's ``status`` geometry (retrying until the primary
    answers, so boot order does not matter).  Returns True when a
    promoted service crash-stopped (mirrors ``serve_forever``).
    """
    follower = Follower(config)
    if config.bootstrap_snapshot:
        follower.bootstrap_from_snapshot(config.bootstrap_snapshot)
    else:
        while follower.scheduler is None:
            try:
                status = await follower._primary_rpc({"op": "status"})
                follower.bootstrap_fresh(status)
            except (ConnectionError, OSError):
                await asyncio.sleep(config.poll_interval)
    await follower.start()
    if ready_line:
        source = (
            f"snapshot {config.bootstrap_snapshot}"
            if config.bootstrap_snapshot
            else "fresh"
        )
        print(
            f"repro follow: listening on {config.host}:{follower.port} "
            f"(primary {config.primary_host}:{config.primary_port}, "
            f"cursor={follower.cursor}, bootstrap={source})",
            flush=True,
        )
    try:
        await follower.wait_stopped()
    except asyncio.CancelledError:
        await follower.stop()
        raise
    service = follower._service
    return service.crashed if service is not None else False
