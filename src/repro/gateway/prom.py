"""Prometheus text exposition (format 0.0.4), stdlib only.

A tiny metric registry for the gateway's ``GET /metrics``: counters and
gauges with optional labels, plus a summary backed by the service's
bounded :class:`~repro.service.metrics.ReservoirWindow` so the exposed
``quantile`` series are the same nearest-rank reservoir percentiles the
TCP ``status`` op reports — one percentile implementation, two surfaces.
"""

from __future__ import annotations

from typing import Iterator

from ..service.metrics import ReservoirWindow

__all__ = ["Counter", "Gauge", "PromRegistry", "Summary"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return format(value, "g")


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text

    def header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def samples(self) -> Iterator[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """Monotone counter, optionally labelled (``inc(tenant="acme")``)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(tuple(sorted(labels.items())), 0.0)

    def samples(self) -> Iterator[str]:
        if not self._values:
            yield f"{self.name} 0"
            return
        for key in sorted(self._values):
            yield f"{self.name}{_render_labels(key)} {_format_value(self._values[key])}"


class Gauge(_Metric):
    """Set-to-current-value metric, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[tuple(sorted(labels.items()))] = float(value)

    def samples(self) -> Iterator[str]:
        if not self._values:
            yield f"{self.name} 0"
            return
        for key in sorted(self._values):
            yield f"{self.name}{_render_labels(key)} {_format_value(self._values[key])}"


class Summary(_Metric):
    """Reservoir-windowed summary: ``quantile`` series plus count and sum."""

    kind = "summary"

    def __init__(self, name: str, help_text: str, window: int = 4096) -> None:
        super().__init__(name, help_text)
        self._window = ReservoirWindow(window)

    def observe(self, seconds: float) -> None:
        self._window.observe(seconds)

    @property
    def count(self) -> int:
        return self._window.count

    def samples(self) -> Iterator[str]:
        for quantile in (0.5, 0.95, 0.99):
            millis = self._window.percentile(quantile * 100.0)
            yield (
                f'{self.name}{{quantile="{quantile:g}"}} '
                f"{_format_value(millis / 1000.0)}"
            )
        yield f"{self.name}_count {self._window.count}"
        yield f"{self.name}_sum {_format_value(self._window.total)}"


class PromRegistry:
    """Ordered metric registry; :meth:`render` is the ``/metrics`` body."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter(name, help_text))

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(Gauge(name, help_text))

    def summary(self, name: str, help_text: str, window: int = 4096) -> Summary:
        return self._register(Summary(name, help_text, window))

    def _register(self, metric: _Metric) -> "_Metric | Counter | Gauge | Summary":
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def render(self) -> str:
        lines: list[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.header())
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"
