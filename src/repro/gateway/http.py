"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of RFC 9112 for a JSON API front door: request-line +
headers + ``Content-Length`` bodies, keep-alive by default, explicit
caps on header and body sizes.  No chunked transfer coding (answered
with 411 — every stdlib and curl client sends ``Content-Length`` for
small JSON bodies), no trailers, no upgrade.

The parser is deliberately strict where it is cheap to be: an
over-long request line, too many headers, or an oversized body each get
their own status code instead of a generic 400, because the gateway's
callers are programs and precise errors shorten debugging loops.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "HttpError",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "format_retry_after",
    "http_request",
    "json_response",
    "read_request",
    "response_bytes",
]

#: cap on the request line plus all headers
MAX_HEADER_BYTES = 16 << 10

#: cap on one request body (a reserve is ~100 bytes; 64 KiB is generous)
MAX_BODY_BYTES = 64 << 10

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class HttpRequest:
    """One parsed request: method, split target, lower-cased headers, body."""

    method: str
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, Any]:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(
                400, f"body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed framing — the caller answers
    it and closes (framing errors are not recoverable mid-stream).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request head exceeds the header cap") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError(411, "chunked bodies unsupported: send Content-Length")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "Content-Length is not an integer") from exc
        if length < 0:
            raise HttpError(400, "Content-Length is negative")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "connection closed mid-body") from exc
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "a request body requires Content-Length")
    return HttpRequest(method=method, path=path, query=query, headers=headers, body=body)


def format_retry_after(retry_after: float) -> str:
    """The one rendering of a back-off hint for ``Retry-After`` headers.

    Both 429 paths — the gateway's own token-bucket limiter and a
    proxied ``BUSY`` from the admission controller — go through here,
    so the header can never disagree with the JSON body's
    ``retry_after`` beyond this single formatting rule: RFC 9110 allows
    only integer delta-seconds (or an HTTP-date), so the header is the
    estimate rounded *up* to a whole second, floored at 1 (a 0 would
    invite an immediate retry).  Clients that want the sub-second
    estimate read the JSON body's ``retry_after``, which keeps the
    precise float.
    """
    return str(max(1, math.ceil(retry_after)))


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Render one full HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: dict[str, Any],
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    return response_bytes(status, body, extra_headers=extra_headers, keep_alive=keep_alive)


async def http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
    headers: tuple[tuple[str, str], ...] = (),
) -> tuple[int, dict[str, str], dict[str, Any]]:
    """One client request/response exchange on an open keep-alive stream.

    The gateway's own test/loadgen client: returns ``(status, headers,
    json-body)``.  Raises :class:`ConnectionError` mid-exchange if the
    server goes away (callers reconnect and resend).
    """
    payload = b""
    if body is not None:
        payload = json.dumps(body, separators=(",", ":"), allow_nan=False).encode()
    head = [f"{method} {path} HTTP/1.1", "Host: repro"]
    head.extend(f"{name}: {value}" for name, value in headers)
    if body is not None:
        head.append("Content-Type: application/json")
    head.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()
    try:
        raw_head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("server closed mid-response") from exc
    lines = raw_head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    response_headers: dict[str, str] = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", "0"))
    raw_body = await reader.readexactly(length) if length else b""
    parsed: dict[str, Any] = json.loads(raw_body.decode("utf-8")) if raw_body else {}
    return status, response_headers, parsed
