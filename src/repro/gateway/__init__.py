"""The production front door: HTTP/JSON gateway + warm-standby follower.

Two subsystems that turn the TCP reservation service into a deployable
one (``docs/gateway.md``):

* :mod:`repro.gateway.app` — an asyncio HTTP/1.1 server fronting the
  actor/coordinator with JSON endpoints, bearer-token tenancy,
  per-tenant token-bucket rate limits and Prometheus ``/metrics``.
* :mod:`repro.gateway.follower` — a replication client that tails the
  primary's rid-keyed decision log to maintain a warm standby calendar,
  promotable to a serving primary with ``repro promote``.
"""

from .app import Gateway, GatewayConfig, serve_gateway
from .auth import TenantLimiter, TokenBucket, TokenTable
from .follower import Follower, FollowerConfig, serve_follower
from .prom import PromRegistry

__all__ = [
    "Follower",
    "FollowerConfig",
    "Gateway",
    "GatewayConfig",
    "PromRegistry",
    "TenantLimiter",
    "TokenBucket",
    "TokenTable",
    "serve_follower",
    "serve_gateway",
]
